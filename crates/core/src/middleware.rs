//! The Garnet middleware facade: Figure 1 assembled into one deployable
//! unit.
//!
//! [`Garnet`] speaks to the service graph only through the
//! [`RouterDriver`] surface: every external input becomes a
//! [`ServiceEvent`] handed to the driver, and the facade pumps the
//! driver to quiescence, applying the outputs that escape the service
//! graph (consumer callbacks, control plans, denials, expiries).
//! [`GarnetConfig::driver`] picks the engine — the FIFO
//! [`crate::router::Router`] (the simulation reference) or the hosted
//! [`crate::router::ThreadedRouter`] (worker pools per stage) — and
//! every public entry point behaves identically on both:
//!
//! ```text
//!   on_frame ─→ ShardedIngest ─→ Dispatching ─→ consumers ─→ actions
//!                  │                  │                         │
//!                  │                  └─(Orphaned)→ Orphanage   │
//!                  ├─(Observed)→ Location                       │
//!                  └─(AckReceived)→ Actuation                   │
//!                                                               ▼
//!        Resource Manager ←─ ActuationRequested ←───────────────┤
//!               │ (Submit)                                      │
//!        Actuation Service ─(Replicate)→ Replicator → control   │
//!               ▲                                    plans out  │
//!        Super Coordinator ←─ StateReported ←───────────────────┘
//! ```
//!
//! Consumers run *inside* the facade (mutually unaware of each other, as
//! §2 demands); their derived streams re-enter the dispatch loop as
//! `Filtered` events with a bounded depth, forming the "essentially
//! arbitrary graph of consumer processes and data streams" of §6.
//!
//! The queue is strictly FIFO and both the ingest and dispatch stages
//! merge their shards deterministically, so a facade configured with
//! any [`GarnetConfig::ingest_shards`] / [`GarnetConfig::dispatch_shards`]
//! combination produces bit-identical outputs.

use std::collections::HashMap;

use core::fmt;
use garnet_net::{
    AuthService, Capability, CapabilitySet, DispatchCacheConfig, Principal, ServiceDescriptor,
    ServiceKind, ServiceRegistry, ShardFailure, SubscriberId, Token, TopicFilter,
};
use garnet_radio::geometry::Point;
use garnet_radio::{Receiver, ReceiverId, Transmitter};
use garnet_simkit::trace::TraceSnapshot;
use garnet_simkit::{stage_key, SimTime};
use garnet_wire::{
    AckStatus, ActuationTarget, DataMessage, FrameBytes, RequestId, SensorCommand, SensorId,
    SequenceNumber, StreamId, StreamUpdateRequest,
};

use crate::actuation::{ActuationConfig, ActuationService};
use crate::archive::{ack_record, frame_record, tick_record, ArchiveConfig, ArchiveService};
use crate::consumer::{Consumer, ConsumerAction, ConsumerCtx};
use crate::coordinator::{CoordinationMode, PolicyAction, SuperCoordinator};
use crate::driver::{
    DispatchStats, DriverKind, FifoDriver, FilterStats, RouterDriver, ThreadedDriver,
};
use crate::filtering::{Delivery, FilterConfig};
use crate::location::{LocationConfig, LocationEstimate, LocationService};
use crate::orphanage::{Orphanage, OrphanageConfig};
use crate::qos::{
    ClassLedger, ClassLedgers, DeliverySchedule, FrameOffer, PriorityClass, QosConfig, QosMode,
    QosScheduler, Release,
};
use crate::replicator::{MessageReplicator, ReplicationPlan};
use crate::resource::{DenyReason, MediationPolicy, ResourceManager, SensorProfile};
use crate::router::{
    ControlGraph, OverloadConfig, OverloadTotals, Services, ShardedDispatch, ShardedIngest,
};
use crate::service::{ActuationOrigin, BatchedFrame, ServiceEvent, ServiceOutput};
use crate::stream::ShardedStreamRegistry;
use crate::telemetry::{TelemetryConfig, TelemetryService, TelemetrySnapshot};

pub use crate::service::SYSTEM_SUBSCRIBER;

/// Demand-driven quiescence (§8's "system-inferred changes to data
/// usage patterns"): streams nobody subscribes to are slowed down to
/// save sensor energy and restored when demand appears — the middleware
/// analogue of a Fjords proxy "adjusting sensor output based on user
/// demand" (§7).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuiesceConfig {
    /// How long a stream may run unclaimed before it is slowed.
    pub idle_after: garnet_simkit::SimDuration,
    /// Interval (ms) imposed on quiesced streams.
    pub slow_interval_ms: u32,
    /// Interval (ms) restored when a subscriber appears (a subsequent
    /// consumer actuation can refine it).
    pub restore_interval_ms: u32,
}

/// Facade configuration.
#[derive(Clone, Debug)]
pub struct GarnetConfig {
    /// Which execution engine hosts the service graph. Both engines
    /// produce identical deliveries, metrics and (modulo shard ids)
    /// traces; [`DriverKind::Threaded`] runs filtering and dispatch on
    /// worker pools for wall-clock parallelism.
    pub driver: DriverKind,
    /// Filtering Service tuning.
    pub filter: FilterConfig,
    /// Number of ingest shards the filtering hot path is partitioned
    /// into (by sensor id). Any value produces bit-identical outputs
    /// under the simulation driver; values above 1 let threaded drivers
    /// run filtering in parallel. 0 is treated as 1.
    pub ingest_shards: usize,
    /// Number of dispatch shards the delivery stage is partitioned into
    /// (by sensor id, same hash as the ingest shards). Any value
    /// produces bit-identical outputs under the simulation driver;
    /// values above 1 let threaded drivers run subscription matching in
    /// parallel. 0 is treated as 1.
    pub dispatch_shards: usize,
    /// Orphanage tuning.
    pub orphanage: OrphanageConfig,
    /// Location Service tuning.
    pub location: LocationConfig,
    /// Actuation Service tuning.
    pub actuation: ActuationConfig,
    /// Resource Manager conflict policy.
    pub mediation: MediationPolicy,
    /// Super Coordinator mode.
    pub coordination: CoordinationMode,
    /// Key material for the token authority.
    pub auth_key: [u8; 16],
    /// Maximum derived-stream depth (loop guard for the consumer graph).
    pub max_derived_depth: u32,
    /// Installed receiver array (for location inference).
    pub receivers: Vec<Receiver>,
    /// Installed transmitter array (for the actuation path).
    pub transmitters: Vec<Transmitter>,
    /// Demand-driven quiescence of unclaimed streams; `None` disables.
    pub quiesce: Option<QuiesceConfig>,
    /// Bounded-queue admission control for the frame intake; `None`
    /// keeps the legacy unbounded queue (admission never sheds).
    pub overload: Option<OverloadConfig>,
    /// Priority-classed QoS scheduling (see [`crate::qos`]). With the
    /// default [`QosMode::Scheduled`] and an [`GarnetConfig::overload`]
    /// config present, admission control moves from the engine's queue
    /// to a facade-boundary [`QosScheduler`]: same policy, same ledger,
    /// same survivors — but engine-independent, so overloaded runs are
    /// bit-identical across `{Fifo, Threaded}` × shard × batch layouts.
    /// [`QosMode::Legacy`] (or `GARNET_TEST_QOS=legacy`) preserves the
    /// pre-QoS in-engine path bit for bit.
    pub qos: QosConfig,
    /// Flight-recorder ring capacity in records. Only meaningful when
    /// the `trace` cargo feature is compiled in; without it the tracer
    /// is a zero-sized no-op regardless of this value.
    pub trace_capacity: usize,
    /// Whether frame bursts move through the engines on the batched
    /// hot path (batch pumping on the FIFO router, run-merged edge
    /// submission on the threaded graph). `false` forces the legacy
    /// frame-at-a-time path. Both settings are bit-identical in every
    /// observable — this knob exists so CI can prove it, via the
    /// `GARNET_TEST_BATCH` env toggle the default honours.
    pub batch_ingest: bool,
    /// Durable frame/control-event archive (see [`crate::archive`]);
    /// `None` disables the tap entirely.
    pub archive: Option<ArchiveConfig>,
    /// Per-dispatch-shard match-set memoisation (see
    /// [`garnet_net::MatchCache`]). On by default; the cache changes
    /// dispatch cost, never output order, which the
    /// `GARNET_TEST_MATCH_CACHE` env toggle (honoured by the default)
    /// lets CI prove by rerunning the determinism suites uncached.
    pub dispatch_cache: DispatchCacheConfig,
    /// Telemetry plane: latency spans, windowed snapshot export, health
    /// scoring and the optional rotating JSONL sink `garnetctl` reads
    /// (see [`crate::telemetry`]).
    pub telemetry: TelemetryConfig,
}

impl Default for GarnetConfig {
    fn default() -> Self {
        GarnetConfig {
            driver: DriverKind::default(),
            filter: FilterConfig::default(),
            ingest_shards: 1,
            dispatch_shards: 1,
            orphanage: OrphanageConfig::default(),
            location: LocationConfig::default(),
            actuation: ActuationConfig::default(),
            mediation: MediationPolicy::MergeMax,
            coordination: CoordinationMode::Predictive { min_confidence: 0.6 },
            auth_key: *b"garnet-master-k!",
            max_derived_depth: 16,
            receivers: Vec::new(),
            transmitters: Vec::new(),
            quiesce: None,
            overload: None,
            qos: QosConfig::default(),
            trace_capacity: garnet_simkit::trace::TraceConfig::default().capacity,
            batch_ingest: default_batch_ingest(),
            archive: None,
            dispatch_cache: DispatchCacheConfig::default(),
            telemetry: TelemetryConfig::default(),
        }
    }
}

/// `true` (the batched hot path), unless the `GARNET_TEST_BATCH`
/// environment variable says `perframe`/`off`/`0` — the hook CI uses to
/// rerun default-config test suites on the legacy frame-at-a-time path
/// without editing them (the twin of `GARNET_TEST_DRIVER`).
fn default_batch_ingest() -> bool {
    match std::env::var("GARNET_TEST_BATCH") {
        Ok(v) => !(v == "0" || v.eq_ignore_ascii_case("perframe") || v.eq_ignore_ascii_case("off")),
        Err(_) => true,
    }
}

/// Errors from facade operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum GarnetError {
    /// The presented token does not grant the needed capability (or is
    /// expired/forged).
    NotAuthorized {
        /// The capability that was required.
        needed: Capability,
    },
    /// No consumer is registered under this id.
    UnknownConsumer(SubscriberId),
    /// The 24-bit virtual sensor space for derived streams is exhausted.
    VirtualSensorSpaceExhausted,
    /// An `Api` actuation chain drained without reaching a terminal
    /// `Planned` or `Denied` outcome — the request was lost inside the
    /// event graph instead of being resolved.
    ActuationUnresolved,
    /// `Garnet::shutdown` could not drain the archive's pending appends
    /// within [`ArchiveConfig::flush_timeout`]. The engines are still
    /// retired cleanly; only the archive tail is in doubt (the
    /// [`crate::archive::ArchiveLedger`] says how much).
    ArchiveFlushTimeout,
}

impl fmt::Display for GarnetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GarnetError::NotAuthorized { needed } => {
                write!(f, "token does not grant {needed:?}")
            }
            GarnetError::UnknownConsumer(id) => write!(f, "no consumer registered as {id}"),
            GarnetError::VirtualSensorSpaceExhausted => {
                write!(f, "no virtual sensor ids remain for derived streams")
            }
            GarnetError::ActuationUnresolved => {
                write!(f, "actuation request drained without a Planned or Denied outcome")
            }
            GarnetError::ArchiveFlushTimeout => {
                write!(f, "archive did not drain pending appends within the flush timeout")
            }
        }
    }
}

impl std::error::Error for GarnetError {}

/// Frame-admission accounting carried on a [`StepOutput`]: what the
/// overload policy did during the call. At quiescence the ledger is
/// exact: `offered == shed + delivered`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OverloadStats {
    /// Frames accepted into admission during this call.
    pub offered: u64,
    /// Frames dropped by the overload policy before filtering
    /// (includes the coalesced subset).
    pub shed: u64,
    /// The subset of `shed` dropped in favour of a newer same-stream
    /// sequence.
    pub coalesced: u64,
    /// Frames popped off the queue and routed into filtering.
    pub delivered: u64,
    /// High-water mark of the frame queue since the facade started
    /// (merged by maximum, so it stays a high-water mark).
    pub peak_queue_depth: u64,
    /// Shard restarts performed by the supervision policy during this
    /// call. Always zero under the FIFO engine (nothing panics,
    /// nothing restarts); the threaded engine reports its supervision
    /// restarts here.
    pub shard_restarts: u64,
}

impl OverloadStats {
    fn absorb(&mut self, other: OverloadStats) {
        self.offered += other.offered;
        self.shed += other.shed;
        self.coalesced += other.coalesced;
        self.delivered += other.delivered;
        self.peak_queue_depth = self.peak_queue_depth.max(other.peak_queue_depth);
        self.shard_restarts += other.shard_restarts;
    }
}

/// Effects the caller must carry out after a facade call: control
/// messages to transmit, and requests that exhausted their retries —
/// plus the overload and failure accounting for the call.
#[derive(Debug, Default)]
pub struct StepOutput {
    /// Replication plans to broadcast through the transmitter array.
    pub control: Vec<ReplicationPlan>,
    /// Requests abandoned after all retries.
    pub expired_requests: Vec<StreamUpdateRequest>,
    /// Frame-admission accounting for this call (zero when the queue is
    /// unbounded or the call took no frames).
    pub overload: OverloadStats,
    /// Worker failures surfaced by a threaded driver during this step
    /// (always empty under the simulation driver, which has no
    /// threads to lose).
    pub shard_failures: Vec<ShardFailure>,
}

impl StepOutput {
    /// Appends another output's effects, then restores the canonical
    /// order: ascending request id (stable, so equal-id entries — e.g.
    /// an original and its retransmission — keep their relative order).
    ///
    /// Request ids are allocated in grant order by the single Actuation
    /// Service, so this is chronological order — and it makes the merge
    /// **order-independent**: merging shard or partial outputs in any
    /// order yields the same final sequence, which is what lets sharded
    /// drivers combine per-shard effects without re-introducing
    /// nondeterminism. Overload counters add (peak depth takes the
    /// maximum) and shard failures sort by `(shard, seq)` — all
    /// order-independent too.
    pub fn merge(&mut self, mut other: StepOutput) {
        self.control.append(&mut other.control);
        self.expired_requests.append(&mut other.expired_requests);
        self.control.sort_by_key(|p| p.request.request_id.as_u32());
        self.expired_requests.sort_by_key(|r| r.request_id.as_u32());
        self.overload.absorb(other.overload);
        self.shard_failures.append(&mut other.shard_failures);
        self.shard_failures.sort_by_key(|f| (f.shard, f.seq));
    }
}

/// Outcome of a consumer actuation request.
#[derive(Debug)]
pub enum ActuationOutcome {
    /// Approved; the plan is also appended to the returned
    /// [`StepOutput`]-style effects.
    Granted {
        /// Correlation id for the eventual acknowledgement.
        request_id: RequestId,
        /// The broadcast plan.
        plan: ReplicationPlan,
    },
    /// Refused by the Resource Manager.
    Denied {
        /// Why.
        reason: DenyReason,
    },
}

struct ConsumerEntry {
    consumer: Option<Box<dyn Consumer>>,
    principal: Principal,
    caps: CapabilitySet,
    priority: u8,
    virtual_sensor: SensorId,
    derived_seq: HashMap<u8, SequenceNumber>,
}

impl fmt::Debug for ConsumerEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConsumerEntry")
            .field("principal", &self.principal)
            .field("caps", &self.caps)
            .field("priority", &self.priority)
            .field("virtual_sensor", &self.virtual_sensor)
            .finish()
    }
}

/// The assembled middleware.
#[derive(Debug)]
pub struct Garnet {
    max_derived_depth: u32,
    driver: Box<dyn RouterDriver>,
    driver_kind: DriverKind,
    auth: AuthService,
    registry: ServiceRegistry,
    consumers: HashMap<SubscriberId, ConsumerEntry>,
    next_virtual_sensor: u32,
    depth_drops: u64,
    denied_actions: u64,
    quiesce: Option<QuiesceConfig>,
    quiesced: std::collections::BTreeSet<u32>,
    quiesce_actions: u64,
    restore_actions: u64,
    /// Holds the terminal outcome of an in-flight `Api` actuation chain
    /// between enqueueing it and the pump draining it.
    api_outcome: Option<ActuationOutcome>,
    /// The durable-archive tap (`GarnetConfig.archive`).
    archive: Option<ArchiveService>,
    /// Supervision restarts already attributed to a returned
    /// [`StepOutput`] — restarts happen at the engine's own pace (a
    /// wall-clock backoff after the poisoning), so each facade call
    /// reports the movement since the last one rather than a per-call
    /// snapshot that would miss restarts landing between calls.
    reported_restarts: u64,
    /// The facade-boundary QoS scheduler (`Some` when
    /// [`QosMode::Scheduled`] and an overload config are both present;
    /// the engines then run unbounded and this layer owns admission).
    qos: Option<QosScheduler>,
    /// Which mode [`GarnetConfig::qos`] selected (drain limits are
    /// refused in legacy mode so the pre-QoS path stays untouched).
    qos_mode: QosMode,
    /// Per-consumer delivery scheduling — inert until
    /// [`Garnet::set_consumer_drain_limit`] declares a consumer slow.
    delivery: DeliverySchedule,
    /// The telemetry window state machine (`GarnetConfig.telemetry`).
    telemetry: TelemetryService,
    /// Cumulative worker failures drained by [`Garnet::pump`] — the
    /// `overload.shard_failures` counter the health scorer reads for
    /// stranded-job detection.
    shard_failure_total: u64,
}

impl Garnet {
    /// Assembles the middleware from a configuration.
    pub fn new(config: GarnetConfig) -> Garnet {
        let mut registry = ServiceRegistry::new();
        let system = Principal::new("garnet-system");
        for (name, kind) in [
            ("filtering", ServiceKind::Filtering),
            ("dispatching", ServiceKind::Dispatching),
            ("orphanage", ServiceKind::Orphanage),
            ("location", ServiceKind::Location),
            ("resource-manager", ServiceKind::ResourceManager),
            ("actuation", ServiceKind::Actuation),
            ("replicator", ServiceKind::Replicator),
            ("super-coordinator", ServiceKind::SuperCoordinator),
        ] {
            registry.advertise(ServiceDescriptor {
                name: name.to_owned(),
                kind,
                endpoint: format!("garnet://{name}"),
                owner: system.clone(),
            });
        }
        let control = ControlGraph {
            orphanage: Orphanage::new(config.orphanage),
            location: LocationService::new(config.location, &config.receivers),
            resource: ResourceManager::new(config.mediation),
            actuation: ActuationService::new(config.actuation),
            replicator: MessageReplicator::new(config.transmitters),
            coordinator: SuperCoordinator::new(config.coordination),
        };
        // With the QoS scheduler active, admission control moves to the
        // facade boundary: the engines run unbounded (they only ever see
        // the frames the scheduler released), which is what makes
        // overloaded runs engine-independent.
        let qos = match (config.qos.mode, config.overload) {
            (QosMode::Scheduled, Some(overload)) => Some(QosScheduler::new(overload, &config.qos)),
            _ => None,
        };
        let engine_overload = if qos.is_some() { None } else { config.overload };
        let mut driver: Box<dyn RouterDriver> = match config.driver {
            DriverKind::Fifo => {
                let services = Services {
                    ingest: ShardedIngest::new(config.filter, config.ingest_shards),
                    dispatch: ShardedDispatch::with_cache(
                        config.dispatch_shards,
                        config.dispatch_cache,
                    ),
                    control,
                };
                Box::new(FifoDriver::new(services, engine_overload, config.batch_ingest))
            }
            DriverKind::Threaded => Box::new(ThreadedDriver::new(
                config.filter,
                config.ingest_shards,
                config.dispatch_shards,
                control,
                engine_overload,
                config.batch_ingest,
                config.dispatch_cache,
            )),
        };
        driver
            .configure_trace(garnet_simkit::trace::TraceConfig { capacity: config.trace_capacity });
        driver.set_telemetry_recording(config.telemetry.spans);
        let archive = config
            .archive
            .map(|cfg| ArchiveService::new(cfg, config.driver, config.trace_capacity));
        Garnet {
            max_derived_depth: config.max_derived_depth,
            driver,
            driver_kind: config.driver,
            auth: AuthService::new(config.auth_key),
            registry,
            consumers: HashMap::new(),
            next_virtual_sensor: SensorId::MAX.as_u32(),
            depth_drops: 0,
            denied_actions: 0,
            quiesce: config.quiesce,
            quiesced: std::collections::BTreeSet::new(),
            quiesce_actions: 0,
            restore_actions: 0,
            api_outcome: None,
            archive,
            reported_restarts: 0,
            qos,
            qos_mode: config.qos.mode,
            delivery: DeliverySchedule::new(config.qos.consumer_queue_capacity),
            telemetry: TelemetryService::new(config.telemetry),
            shard_failure_total: 0,
        }
    }

    /// The token authority (for issuing scoped tokens).
    pub fn auth(&self) -> &AuthService {
        &self.auth
    }

    /// Issues an all-capability token with a far-future expiry —
    /// convenience for examples and tests; real deployments scope
    /// capabilities per principal.
    pub fn issue_default_token(&self, principal: &str) -> Token {
        self.auth.issue(Principal::new(principal), CapabilitySet::all(), u64::MAX)
    }

    fn authorize(
        &self,
        token: &Token,
        needed: Capability,
        now: SimTime,
    ) -> Result<(), GarnetError> {
        if self.auth.verify(token, now.as_micros(), needed) {
            Ok(())
        } else {
            Err(GarnetError::NotAuthorized { needed })
        }
    }

    /// Registers a consumer process. The token's capability set is
    /// captured and governs everything the consumer later does through
    /// its [`ConsumerCtx`]. Returns the consumer's subscriber id.
    ///
    /// # Errors
    ///
    /// Authorisation failure ([`Capability::Subscribe`] is required) or
    /// virtual-sensor exhaustion.
    pub fn register_consumer(
        &mut self,
        consumer: Box<dyn Consumer>,
        token: &Token,
        priority: u8,
    ) -> Result<SubscriberId, GarnetError> {
        self.authorize(token, Capability::Subscribe, SimTime::ZERO)?;
        if self.next_virtual_sensor == 0 {
            return Err(GarnetError::VirtualSensorSpaceExhausted);
        }
        let virtual_sensor = SensorId::new(self.next_virtual_sensor)
            .map_err(|_| GarnetError::VirtualSensorSpaceExhausted)?;
        self.next_virtual_sensor -= 1;
        let id = self.driver.register_subscriber();
        self.registry.advertise(ServiceDescriptor {
            name: format!("consumer/{}", consumer.name()),
            kind: ServiceKind::Consumer,
            endpoint: format!("garnet://consumer/{id}"),
            owner: token.principal().clone(),
        });
        self.consumers.insert(
            id,
            ConsumerEntry {
                consumer: Some(consumer),
                principal: token.principal().clone(),
                caps: token.capabilities(),
                priority,
                virtual_sensor,
                derived_seq: HashMap::new(),
            },
        );
        Ok(id)
    }

    /// Removes a consumer: drops its subscriptions, releases its
    /// resource demands, withdraws its advertisement.
    pub fn deregister_consumer(&mut self, id: SubscriberId) -> Result<(), GarnetError> {
        let entry = self.consumers.remove(&id).ok_or(GarnetError::UnknownConsumer(id))?;
        self.driver.unsubscribe_all(id);
        self.driver.control_mut().resource.release_consumer(id);
        if let Some(c) = &entry.consumer {
            self.registry.withdraw(&format!("consumer/{}", c.name()));
        }
        Ok(())
    }

    /// The virtual sensor id under which a consumer's derived streams
    /// publish.
    pub fn virtual_sensor(&self, id: SubscriberId) -> Option<SensorId> {
        self.consumers.get(&id).map(|e| e.virtual_sensor)
    }

    /// Subscribes a consumer to a filter. Any orphanage backlog matching
    /// a `Stream` or `Sensor` filter is claimed and replayed to this
    /// consumer immediately; the returned [`StepOutput`] carries any
    /// effects of actions the consumer took during replay, and the count
    /// of replayed messages.
    ///
    /// # Errors
    ///
    /// Authorisation failure or unknown consumer.
    pub fn subscribe(
        &mut self,
        id: SubscriberId,
        filter: TopicFilter,
        token: &Token,
    ) -> Result<(usize, StepOutput), GarnetError> {
        self.subscribe_at(id, filter, token, SimTime::ZERO)
    }

    /// [`Garnet::subscribe`] with an explicit current time (token expiry
    /// and replay timestamps use it).
    pub fn subscribe_at(
        &mut self,
        id: SubscriberId,
        filter: TopicFilter,
        token: &Token,
        now: SimTime,
    ) -> Result<(usize, StepOutput), GarnetError> {
        self.authorize(token, Capability::Subscribe, now)?;
        if !self.consumers.contains_key(&id) {
            return Err(GarnetError::UnknownConsumer(id));
        }
        self.driver.subscribe(id, filter);

        // Claim matching orphanage backlog. Claims are synchronous
        // request/response, not dataflow, so they stay direct calls.
        let claimable: Vec<StreamId> = match filter {
            TopicFilter::Stream(s) => vec![s],
            TopicFilter::Sensor(sensor) => self
                .driver
                .control()
                .orphanage
                .unclaimed_streams()
                .into_iter()
                .filter(|s| s.sensor() == sensor)
                .collect(),
            // An All-subscription is a wiretap; dumping the whole
            // orphanage on it would rarely be intended.
            TopicFilter::All => Vec::new(),
        };
        let mut backlog: Vec<DataMessage> = Vec::new();
        let mut out = StepOutput::default();
        for s in claimable {
            backlog.extend(self.driver.control_mut().orphanage.claim(s));
            self.driver.set_claimed(s, true);
            self.restore_if_quiesced(s, now, &mut out);
        }
        let replayed = backlog.len();
        for msg in backlog {
            let delivery = Delivery { msg, first_received_at: now, delivered_at: now };
            self.deliver_to(id, &delivery, 0, now);
        }
        self.pump(now, &mut out);
        Ok((replayed, out))
    }

    /// Removes one subscription.
    pub fn unsubscribe(&mut self, id: SubscriberId, filter: TopicFilter) {
        self.driver.unsubscribe(id, filter);
        if let TopicFilter::Stream(s) = filter {
            if !self.driver.would_deliver(s) {
                self.driver.set_claimed(s, false);
            }
        }
    }

    /// Feeds one raw frame from a receiver into the pipeline.
    ///
    /// The frame passes admission control first, but since the facade
    /// pumps to quiescence after every call, a frame-at-a-time driver
    /// never fills the bounded queue — bursts only become visible to
    /// the [`crate::router::OverloadPolicy`] through
    /// [`Garnet::on_frames`].
    pub fn on_frame(
        &mut self,
        receiver: ReceiverId,
        rssi_dbm: f64,
        frame: &[u8],
        now: SimTime,
    ) -> StepOutput {
        self.on_frames(vec![(receiver, rssi_dbm, frame.to_vec())], now)
    }

    /// Feeds a burst of raw frames through admission control before a
    /// single pump — the preferred ingest entry. Batching makes the
    /// bounded queue and its overload policy observable, and the whole
    /// burst is admitted, handed to the ingest stage and filtered as
    /// one unit (one channel hand-off per shard run on the threaded
    /// engine, one decode pass per run on the FIFO engine).
    ///
    /// Frames arriving as [`FrameBytes`] handles (e.g. out of receiver
    /// buffers) enter zero-copy; `Vec<u8>` payloads are absorbed
    /// without copying.
    ///
    /// The returned [`StepOutput::overload`] is this call's ledger:
    /// with the queue drained, `offered == shed + delivered`, counting
    /// every individual frame of the batch.
    pub fn on_frames<F: Into<FrameBytes>>(
        &mut self,
        frames: Vec<(ReceiverId, f64, F)>,
        now: SimTime,
    ) -> StepOutput {
        let mut out = StepOutput::default();
        let base = self.admission_totals();
        let batch: Vec<BatchedFrame> = frames
            .into_iter()
            .map(|(receiver, rssi_dbm, frame)| BatchedFrame {
                receiver,
                rssi_dbm,
                frame: frame.into(),
            })
            .collect();
        // Archive-before-admit: the tap logs every offered frame (even
        // ones the overload policy later sheds), so a replayed log
        // re-offers the identical boundary input. `FrameBytes` clones
        // are reference-counted — no payload copy.
        if let Some(archive) = &mut self.archive {
            for f in &batch {
                archive.append(
                    &frame_record(f.receiver.as_u32(), f.rssi_dbm, f.frame.clone(), now),
                    now,
                );
            }
        }
        if self.qos.is_some() {
            // The scheduler owns admission: every frame offers into the
            // bounded Data tier (same policy, same ledger as the legacy
            // in-engine queue), and the survivors release in one batch.
            for f in batch {
                let mut pending = f;
                while let FrameOffer::Blocked(frame) =
                    self.qos.as_mut().expect("checked above").offer_frame(pending, now)
                {
                    // Tier full under Block: release the staged tier
                    // into the engine, pump it dry to make room, then
                    // re-offer — the facade-level equivalent of the
                    // FIFO router's block-drain-retry loop.
                    self.release_qos(now);
                    self.pump(now, &mut out);
                    pending = frame;
                }
            }
            self.release_qos(now);
        } else {
            // A blocked admission inside the driver drains events to
            // make room; whatever escaped the queue in the process comes
            // back here and is applied in order.
            for o in self.driver.admit_frames(batch, now) {
                self.apply(o, now, &mut out);
            }
        }
        self.pump(now, &mut out);
        self.note_overload_delta(base, &mut out);
        if let Some(s) = self.qos.as_mut() {
            // Quiescence is the one point both engines reach
            // deterministically — where the adaptive bound may retune.
            s.note_quiescent();
        }
        self.maybe_emit_telemetry(now);
        out
    }

    /// Queues a boundary event — through the QoS scheduler when active
    /// (its class ledger counts it and strict-priority release preserves
    /// Control > Actuation > Data) or straight into the engine.
    fn route_event(&mut self, ev: ServiceEvent, now: SimTime) {
        if let Some(s) = self.qos.as_mut() {
            s.offer_event(ev, now);
            self.release_qos(now);
        } else {
            self.driver.push_event(ev, now);
        }
    }

    /// Releases everything the scheduler staged, in strict priority
    /// order, into the engine.
    fn release_qos(&mut self, now: SimTime) {
        let releases = match self.qos.as_mut() {
            Some(s) => s.release(now),
            None => return,
        };
        for r in releases {
            match r {
                Release::Event(ev) => self.driver.push_event(ev, now),
                Release::Frames(frames) => {
                    // The engine is unbounded while the scheduler governs
                    // admission, so nothing can escape here.
                    let escaped = self.driver.admit_frames(frames, now);
                    debug_assert!(escaped.is_empty(), "unbounded engine blocked an admission");
                }
            }
        }
    }

    /// Monotonic admission totals from whichever layer governs
    /// admission (the QoS scheduler when active, else the engine).
    fn admission_totals(&self) -> OverloadTotals {
        match &self.qos {
            Some(s) => s.totals(),
            None => self.driver.overload_totals(),
        }
    }

    /// High-water mark of the governed frame queue.
    fn admission_peak_depth(&self) -> u64 {
        match &self.qos {
            Some(s) => s.peak_depth(),
            None => self.driver.peak_queue_depth(),
        }
    }

    /// Folds the admission-counter movement since `base` into `out`.
    fn note_overload_delta(&mut self, base: OverloadTotals, out: &mut StepOutput) {
        let t = self.admission_totals();
        out.overload.absorb(OverloadStats {
            offered: t.offered - base.offered,
            shed: t.shed - base.shed,
            coalesced: t.coalesced - base.coalesced,
            delivered: t.delivered - base.delivered,
            peak_queue_depth: self.admission_peak_depth(),
            shard_restarts: 0,
        });
        self.note_restart_delta(out);
    }

    /// Attributes supervision restarts not yet reported by any earlier
    /// call to `out`. Restarts are performed inside the engine under a
    /// wall-clock backoff, so they can land during *any* facade call —
    /// every reporting entry point folds the movement in, and the
    /// watermark guarantees each restart is counted exactly once.
    fn note_restart_delta(&mut self, out: &mut StepOutput) {
        let count = self.driver.shard_restart_count();
        out.overload.shard_restarts += count - self.reported_restarts;
        self.reported_restarts = count;
    }

    /// Ingests a standalone acknowledgement (from sensors whose data
    /// streams are disabled).
    pub fn on_standalone_ack(&mut self, request_id: RequestId, status: AckStatus, now: SimTime) {
        if let Some(archive) = &mut self.archive {
            archive.append(&ack_record(request_id, status, now), now);
        }
        self.route_event(ServiceEvent::AckReceived { request_id, status }, now);
        let mut scratch = StepOutput::default();
        self.pump(now, &mut scratch);
    }

    /// Periodic maintenance: reorder-buffer flushes and actuation
    /// retries. Call at [`Garnet::next_deadline`].
    pub fn on_tick(&mut self, now: SimTime) -> StepOutput {
        let mut out = StepOutput::default();
        if let Some(archive) = &mut self.archive {
            archive.append(&tick_record(now), now);
        }
        self.route_event(ServiceEvent::FlushReorder, now);
        self.pump(now, &mut out);
        self.route_event(ServiceEvent::ActuationTick, now);
        self.pump(now, &mut out);
        self.sweep_quiesce(now, &mut out);
        // A tick's flush reaches every shard, so it is where a poisoned
        // worker whose supervision backoff has elapsed gets rebuilt —
        // report those restarts on this call, not the next burst's.
        self.note_restart_delta(&mut out);
        self.maybe_emit_telemetry(now);
        out
    }

    /// Slows down streams that have run unclaimed past the idle window
    /// (no-op unless quiescence is configured). Derived (virtual)
    /// streams are skipped: there is no radio behind them.
    fn sweep_quiesce(&mut self, now: SimTime, out: &mut StepOutput) {
        let Some(cfg) = self.quiesce else { return };
        let due: Vec<StreamId> = self
            .driver
            .streams()
            .discover_unclaimed()
            .into_iter()
            .filter(|i| {
                !i.derived
                    && !self.quiesced.contains(&i.stream.to_raw())
                    && now.saturating_since(i.first_seen) >= cfg.idle_after
            })
            .map(|i| i.stream)
            .collect();
        for stream in due {
            self.route_event(
                ServiceEvent::ActuationRequested {
                    origin: ActuationOrigin::Quiesce,
                    requester: SYSTEM_SUBSCRIBER,
                    priority: 0, // lowest: any real consumer demand overrides
                    target: ActuationTarget::Stream(stream),
                    command: SensorCommand::SetReportInterval {
                        stream: stream.index(),
                        interval_ms: cfg.slow_interval_ms,
                    },
                },
                now,
            );
        }
        self.pump(now, out);
    }

    /// Restores a quiesced stream when demand appears; the plan to
    /// transmit lands in `out`.
    fn restore_if_quiesced(&mut self, stream: StreamId, now: SimTime, out: &mut StepOutput) {
        let Some(cfg) = self.quiesce else { return };
        if !self.quiesced.remove(&stream.to_raw()) {
            return;
        }
        // Withdraw the system's slow-rate demand so consumer demands
        // mediate freshly, then restore the working rate.
        self.driver.control_mut().resource.release_consumer(SYSTEM_SUBSCRIBER);
        self.route_event(
            ServiceEvent::ActuationRequested {
                origin: ActuationOrigin::Restore,
                requester: SYSTEM_SUBSCRIBER,
                priority: 0,
                target: ActuationTarget::Stream(stream),
                command: SensorCommand::SetReportInterval {
                    stream: stream.index(),
                    interval_ms: cfg.restore_interval_ms,
                },
            },
            now,
        );
        self.pump(now, out);
    }

    /// The earliest instant at which [`Garnet::on_tick`] has work.
    pub fn next_deadline(&self) -> Option<SimTime> {
        let quiesce_due = self.quiesce.and_then(|cfg| {
            self.driver
                .streams()
                .discover_unclaimed()
                .into_iter()
                .filter(|i| !i.derived && !self.quiesced.contains(&i.stream.to_raw()))
                .map(|i| i.first_seen.saturating_add(cfg.idle_after))
                .min()
        });
        [self.driver.next_deadline(), quiesce_due].into_iter().flatten().min()
    }

    /// A consumer (out-of-band, not during `on_data`) requests an
    /// actuation. Token must grant [`Capability::Actuate`].
    pub fn request_actuation(
        &mut self,
        id: SubscriberId,
        token: &Token,
        target: ActuationTarget,
        command: SensorCommand,
        now: SimTime,
    ) -> Result<ActuationOutcome, GarnetError> {
        self.authorize(token, Capability::Actuate, now)?;
        let priority = self.consumers.get(&id).ok_or(GarnetError::UnknownConsumer(id))?.priority;
        self.route_event(
            ServiceEvent::ActuationRequested {
                origin: ActuationOrigin::Api,
                requester: id,
                priority,
                target,
                command,
            },
            now,
        );
        let mut scratch = StepOutput::default();
        self.pump(now, &mut scratch);
        // Every current service routes an Api chain to a terminal
        // Planned or Denied; a future mis-wired service must surface as
        // a typed error on this recoverable path, not a panic.
        self.api_outcome.take().ok_or(GarnetError::ActuationUnresolved)
    }

    /// Supplies a location hint (token must grant
    /// [`Capability::ProvideHints`]).
    pub fn provide_hint(
        &mut self,
        token: &Token,
        sensor: SensorId,
        position: Point,
        confidence: f64,
        now: SimTime,
    ) -> Result<(), GarnetError> {
        self.authorize(token, Capability::ProvideHints, now)?;
        self.route_event(ServiceEvent::Hint { sensor, position, confidence }, now);
        let mut scratch = StepOutput::default();
        self.pump(now, &mut scratch);
        Ok(())
    }

    /// Reads a sensor's inferred location (token must grant
    /// [`Capability::ReadLocation`] — location is sensitive, §2).
    pub fn locate(
        &self,
        token: &Token,
        sensor: SensorId,
        now: SimTime,
    ) -> Result<Option<LocationEstimate>, GarnetError> {
        self.authorize(token, Capability::ReadLocation, now)?;
        Ok(self.driver.control().location.estimate(sensor, now))
    }

    /// A consumer reports a state change out-of-band. Coordinator policy
    /// actions execute immediately; returned effects carry the resulting
    /// control plans.
    pub fn report_state(
        &mut self,
        id: SubscriberId,
        token: &Token,
        state: u32,
        now: SimTime,
    ) -> Result<StepOutput, GarnetError> {
        self.authorize(token, Capability::Coordinate, now)?;
        if !self.consumers.contains_key(&id) {
            return Err(GarnetError::UnknownConsumer(id));
        }
        let mut out = StepOutput::default();
        self.route_event(ServiceEvent::StateReported { reporter: id, state }, now);
        self.pump(now, &mut out);
        Ok(out)
    }

    /// Registers a policy action with the Super Coordinator.
    pub fn register_coordinator_policy(&mut self, state: u32, action: PolicyAction) {
        self.driver.control_mut().coordinator.register_policy(state, action);
    }

    /// Registers a sensor's constraint profile with the Resource
    /// Manager.
    pub fn register_sensor_profile(&mut self, sensor: SensorId, profile: SensorProfile) {
        self.driver.control_mut().resource.register_profile(sensor, profile);
    }

    /// Drains the driver to quiescence, applying every escaped output.
    fn pump(&mut self, now: SimTime, out: &mut StepOutput) {
        self.pump_engine(now, out);
        // One delivery-drain pass per pump: each rate-limited consumer
        // receives up to its per-call limit from its staged queue, and
        // whatever its callbacks produced is pumped to quiescence (new
        // deliveries to limited consumers stage again for a later call).
        let due = self.delivery.drain();
        if !due.is_empty() {
            for (rid, delivery, depth) in due {
                self.deliver_to(rid, &delivery, depth, now);
            }
            self.pump_engine(now, out);
        }
        let mut failures = self.driver.take_shard_failures();
        failures.sort_by_key(|f| (f.shard, f.seq));
        self.shard_failure_total += failures.len() as u64;
        out.shard_failures.extend(failures);
        // The engine is drained: telemetry depth counts restart from
        // zero here, the one quiescence boundary both engines reach
        // deterministically (a threaded poll observing its workers
        // idle mid-burst is wall-clock, not logical, quiescence).
        self.driver.note_telemetry_quiescent();
    }

    /// The inner engine-drain loop of [`Garnet::pump`].
    fn pump_engine(&mut self, now: SimTime, out: &mut StepOutput) {
        loop {
            let outputs = self.driver.pump(now);
            if outputs.is_empty() {
                break;
            }
            for o in outputs {
                self.apply(o, now, out);
            }
        }
    }

    /// Applies one service output: runs the consumer callback for a
    /// delivery, or interprets an actuation chain's terminal according
    /// to its [`ActuationOrigin`].
    fn apply(&mut self, output: ServiceOutput, now: SimTime, out: &mut StepOutput) {
        match output {
            ServiceOutput::Emit(ev) => self.driver.push_event(ev, now),
            ServiceOutput::Deliver { recipient, delivery, depth } => {
                // Per-consumer delivery scheduling: a rate-limited
                // consumer's deliveries stage (and coalesce per
                // subscription) in its own queue; everyone else's pass
                // straight through.
                if let Some((delivery, depth)) = self.delivery.offer(recipient, delivery, depth) {
                    self.deliver_to(recipient, &delivery, depth, now);
                }
            }
            ServiceOutput::Planned { origin, plan, .. } => match origin {
                ActuationOrigin::Api => {
                    self.api_outcome = Some(ActuationOutcome::Granted {
                        request_id: plan.request.request_id,
                        plan,
                    });
                }
                ActuationOrigin::Consumer
                | ActuationOrigin::Coordinator
                | ActuationOrigin::Retry => out.control.push(plan),
                ActuationOrigin::Quiesce => {
                    if let ActuationTarget::Stream(s) = plan.request.target {
                        self.quiesced.insert(s.to_raw());
                    }
                    self.quiesce_actions += 1;
                    out.control.push(plan);
                }
                ActuationOrigin::Restore => {
                    self.restore_actions += 1;
                    out.control.push(plan);
                }
            },
            ServiceOutput::Denied { origin, reason, .. } => match origin {
                ActuationOrigin::Api => {
                    self.api_outcome = Some(ActuationOutcome::Denied { reason });
                }
                ActuationOrigin::Consumer | ActuationOrigin::Coordinator => {
                    self.denied_actions += 1;
                }
                // A losing system request (quiesce/restore) or retry is
                // not an error: consumer demand simply outranked it.
                ActuationOrigin::Quiesce | ActuationOrigin::Restore | ActuationOrigin::Retry => {}
            },
            ServiceOutput::Expired(req) => out.expired_requests.push(req),
        }
    }

    fn deliver_to(&mut self, rid: SubscriberId, delivery: &Delivery, depth: u32, now: SimTime) {
        let Some(entry) = self.consumers.get_mut(&rid) else {
            return;
        };
        let Some(mut consumer) = entry.consumer.take() else {
            return;
        };
        let mut ctx = ConsumerCtx::new(now);
        consumer.on_data(delivery, &mut ctx);
        let actions = ctx.take_actions();
        if let Some(entry) = self.consumers.get_mut(&rid) {
            entry.consumer = Some(consumer);
        }
        self.handle_actions(rid, actions, depth, now);
    }

    /// Converts a consumer's actions into router events (capability
    /// checks happen here, where the consumer's token is known).
    fn handle_actions(
        &mut self,
        rid: SubscriberId,
        actions: Vec<ConsumerAction>,
        depth: u32,
        now: SimTime,
    ) {
        if actions.is_empty() {
            return;
        }
        let (caps, priority) = match self.consumers.get(&rid) {
            Some(e) => (e.caps, e.priority),
            None => return,
        };
        for action in actions {
            match action {
                ConsumerAction::PublishDerived { index, payload } => {
                    if depth + 1 > self.max_derived_depth {
                        self.depth_drops += 1;
                        continue;
                    }
                    let Some(entry) = self.consumers.get_mut(&rid) else { continue };
                    let seq_slot = entry.derived_seq.entry(index.as_u8()).or_default();
                    let seq = *seq_slot;
                    *seq_slot = seq_slot.next();
                    let stream = StreamId::new(entry.virtual_sensor, index);
                    match DataMessage::builder(stream).seq(seq).payload(payload).build() {
                        Ok(msg) => self.route_event(
                            ServiceEvent::Filtered {
                                delivery: Delivery {
                                    msg,
                                    first_received_at: now,
                                    delivered_at: now,
                                },
                                depth: depth + 1,
                            },
                            now,
                        ),
                        Err(_) => self.denied_actions += 1, // oversize payload
                    }
                }
                ConsumerAction::RequestActuation { target, command } => {
                    if !caps.allows(Capability::Actuate) {
                        self.denied_actions += 1;
                        continue;
                    }
                    self.route_event(
                        ServiceEvent::ActuationRequested {
                            origin: ActuationOrigin::Consumer,
                            requester: rid,
                            priority,
                            target,
                            command,
                        },
                        now,
                    );
                }
                ConsumerAction::ReportState(state) => {
                    if !caps.allows(Capability::Coordinate) {
                        self.denied_actions += 1;
                        continue;
                    }
                    self.route_event(ServiceEvent::StateReported { reporter: rid, state }, now);
                }
                ConsumerAction::LocationHint { sensor, position, confidence } => {
                    if !caps.allows(Capability::ProvideHints) {
                        self.denied_actions += 1;
                        continue;
                    }
                    self.route_event(ServiceEvent::Hint { sensor, position, confidence }, now);
                }
            }
        }
    }

    /// The active execution driver (topology introspection).
    pub fn driver_kind(&self) -> DriverKind {
        self.driver_kind
    }

    /// Ingest-stage (filtering) statistics, aggregated across shards.
    pub fn filtering(&self) -> FilterStats {
        self.driver.filter_stats()
    }

    /// Dispatch-stage statistics, aggregated across shards.
    pub fn dispatching(&self) -> DispatchStats {
        self.driver.dispatch_stats()
    }

    /// The Orphanage.
    pub fn orphanage(&self) -> &Orphanage {
        &self.driver.control().orphanage
    }

    /// The Location Service.
    pub fn location(&self) -> &LocationService {
        &self.driver.control().location
    }

    /// The Resource Manager.
    pub fn resource(&self) -> &ResourceManager {
        &self.driver.control().resource
    }

    /// The Actuation Service.
    pub fn actuation(&self) -> &ActuationService {
        &self.driver.control().actuation
    }

    /// The Message Replicator.
    pub fn replicator(&self) -> &MessageReplicator {
        &self.driver.control().replicator
    }

    /// The Super Coordinator.
    pub fn coordinator(&self) -> &SuperCoordinator {
        &self.driver.control().coordinator
    }

    /// The service registry.
    pub fn registry(&self) -> &ServiceRegistry {
        &self.registry
    }

    /// The stream catalogue (sharded alongside the dispatch stage).
    pub fn streams(&self) -> &ShardedStreamRegistry {
        self.driver.streams()
    }

    /// Streams slowed by demand-driven quiescence.
    pub fn quiesce_action_count(&self) -> u64 {
        self.quiesce_actions
    }

    /// Quiesced streams restored on new demand.
    pub fn restore_action_count(&self) -> u64 {
        self.restore_actions
    }

    /// Derived publications dropped by the depth guard.
    pub fn depth_drop_count(&self) -> u64 {
        self.depth_drops
    }

    /// Consumer actions refused (capability or mediation).
    pub fn denied_action_count(&self) -> u64 {
        self.denied_actions
    }

    /// p99 of queue-depth-at-admission samples. The unbounded queue
    /// records no samples, so this is 0 unless an
    /// [`crate::router::OverloadConfig`] is set.
    pub fn queue_depth_p99(&self) -> u64 {
        match &self.qos {
            Some(s) => s.depth_p99(),
            None => self.driver.queue_depth_p99(),
        }
    }

    /// Whether the QoS scheduler governs admission (Scheduled mode with
    /// an overload config present).
    pub fn qos_active(&self) -> bool {
        self.qos.is_some()
    }

    /// The per-class scheduling ledgers, when the QoS scheduler is
    /// active. Each class holds `offered == shed + delivered` at
    /// quiescence; Control and Actuation never shed.
    pub fn qos_ledgers(&self) -> Option<&ClassLedgers> {
        self.qos.as_ref().map(QosScheduler::ledgers)
    }

    /// The current (possibly retuned) data-tier admission bound.
    pub fn qos_capacity(&self) -> Option<usize> {
        self.qos.as_ref().map(QosScheduler::capacity)
    }

    /// How many times the adaptive bound moved at quiescence.
    pub fn qos_retune_count(&self) -> u64 {
        self.qos.as_ref().map(QosScheduler::retune_count).unwrap_or(0)
    }

    /// Declares a consumer slow: at most `limit` deliveries reach it per
    /// facade call; the rest stage in its own queue, where same-stream
    /// duplicates coalesce (newest sequence wins) without touching any
    /// other consumer's delivery sequence. `None` removes the limit (the
    /// backlog flushes on the next call). Refused — a no-op — in
    /// [`QosMode::Legacy`], which preserves the pre-QoS path bit for
    /// bit.
    pub fn set_consumer_drain_limit(&mut self, id: SubscriberId, limit: Option<usize>) {
        if self.qos_mode == QosMode::Legacy {
            return;
        }
        self.delivery.set_limit(id, limit);
    }

    /// The per-consumer delivery-plane ledger (offered, shed, coalesced,
    /// delivered across all rate-limited consumers). Balanced as
    /// `offered == shed + delivered + backlog`.
    pub fn delivery_ledger(&self) -> &ClassLedger {
        self.delivery.ledger()
    }

    /// Deliveries currently staged for rate-limited consumers.
    pub fn delivery_backlog(&self) -> u64 {
        self.delivery.backlog()
    }

    /// Jobs accepted per [`garnet_net::EdgeClass`] across the engine's
    /// stage edges (all zeros under the FIFO engine, which has no
    /// channel boundaries).
    pub fn edge_class_submits(&self) -> [u64; 3] {
        self.driver.edge_class_submits()
    }

    /// Builds a metrics snapshot of every service — the operator's
    /// one-call health view. Deterministic name order; see
    /// [`garnet_simkit::MetricsRegistry::report`] for the text form.
    /// Counter names and values are independent of
    /// [`GarnetConfig::ingest_shards`] and
    /// [`GarnetConfig::dispatch_shards`].
    ///
    /// Every name follows the `stage.metric` convention and is built by
    /// [`garnet_simkit::metrics::stage_key`]: a lowercase stage
    /// (service or subsystem) and a snake_case metric within it.
    pub fn metrics(&self) -> garnet_simkit::MetricsRegistry {
        let fs = self.driver.filter_stats();
        let ds = self.driver.dispatch_stats();
        let c = self.driver.control();
        let mut m = garnet_simkit::MetricsRegistry::new();
        let filtering: &[(&str, u64)] = &[
            ("delivered", fs.delivered_count()),
            ("duplicates", fs.duplicate_count()),
            ("crc_failures", fs.crc_failure_count()),
            ("reordered", fs.reordered_count()),
            ("gaps_accepted", fs.gap_count()),
            ("restarts", fs.restart_count()),
            ("streams", fs.stream_count() as u64),
        ];
        let dispatching: &[(&str, u64)] = &[
            ("messages", ds.dispatched_count()),
            ("deliveries", ds.delivery_count()),
            ("unclaimed", ds.unclaimed_count()),
            ("subscribers", ds.subscriber_count() as u64),
        ];
        let mc = ds.match_cache();
        let dispatch: &[(&str, u64)] = &[
            ("match_cache.hits", mc.hits),
            ("match_cache.misses", mc.misses),
            ("match_cache.invalidations", mc.invalidations),
            ("match_cache.resident", mc.resident),
        ];
        let orphanage: &[(&str, u64)] = &[
            ("taken", c.orphanage.total_taken()),
            ("evicted", c.orphanage.total_evicted()),
            ("streams", c.orphanage.stream_count() as u64),
        ];
        let location: &[(&str, u64)] = &[
            ("observations", c.location.observation_count()),
            ("hints", c.location.hint_count()),
            ("tracked_sensors", c.location.tracked_sensors() as u64),
        ];
        let resource: &[(&str, u64)] =
            &[("approved", c.resource.approved_count()), ("denied", c.resource.denied_count())];
        let actuation: &[(&str, u64)] = &[
            ("submitted", c.actuation.submitted_count()),
            ("acknowledged", c.actuation.acknowledged_count()),
            ("timed_out", c.actuation.timeout_count()),
            ("retransmissions", c.actuation.retransmission_count()),
            ("in_flight", c.actuation.in_flight() as u64),
        ];
        let replicator: &[(&str, u64)] = &[
            ("targeted", c.replicator.targeted_count()),
            ("flooded", c.replicator.flooded_count()),
            ("broadcasts", c.replicator.broadcast_count()),
        ];
        let coordinator: &[(&str, u64)] = &[
            ("reports", c.coordinator.report_count()),
            ("reactive_actions", c.coordinator.reactive_action_count()),
            ("anticipatory_actions", c.coordinator.anticipatory_action_count()),
        ];
        let consumers: &[(&str, u64)] = &[
            ("registered", self.consumers.len() as u64),
            ("denied_actions", self.denied_actions),
            ("depth_drops", self.depth_drops),
        ];
        let streams: &[(&str, u64)] = &[("catalogued", self.driver.streams().len() as u64)];
        let t = self.admission_totals();
        let overload: &[(&str, u64)] = &[
            ("offered", t.offered),
            ("shed", t.shed),
            ("coalesced", t.coalesced),
            ("delivered", t.delivered),
            ("peak_queue_depth", self.admission_peak_depth()),
            ("shard_restarts", self.driver.shard_restart_count()),
            ("shard_failures", self.shard_failure_total),
        ];
        for (stage, metrics) in [
            ("filtering", filtering),
            ("dispatching", dispatching),
            ("dispatch", dispatch),
            ("orphanage", orphanage),
            ("location", location),
            ("resource", resource),
            ("actuation", actuation),
            ("replicator", replicator),
            ("coordinator", coordinator),
            ("consumers", consumers),
            ("streams", streams),
            ("overload", overload),
        ] {
            for (metric, value) in metrics {
                m.counter(&stage_key(stage, metric)).add(*value);
            }
        }
        if let Some(archive) = &self.archive {
            let l = archive.ledger();
            for (metric, value) in [
                ("offered", l.offered),
                ("archived", l.archived),
                ("dropped", l.dropped),
                ("pending", l.pending),
                ("flushes", l.flushes),
                ("flush_failures", l.flush_failures),
                ("recovered_records", archive.recovery().records),
            ] {
                m.counter(&stage_key("archive", metric)).add(value);
            }
        }
        // The QoS plane's per-class view: ledgers, waits, and the
        // delivery-plane counters. Emitted only when the scheduler is
        // active, so legacy-mode reports are byte-identical to pre-QoS
        // ones (determinism comparisons strip `qos.*` rows, the same
        // treatment the match-cache rows get).
        if let Some(s) = &self.qos {
            for class in PriorityClass::ALL {
                let l = s.ledgers().class(class);
                for (metric, value) in [
                    ("offered", l.offered),
                    ("shed", l.shed),
                    ("coalesced", l.coalesced),
                    ("delivered", l.delivered),
                ] {
                    m.counter(&stage_key("qos", &format!("{}.{metric}", class.name()))).add(value);
                }
                m.histogram(&stage_key("qos", &format!("{}.wait_us", class.name())))
                    .merge(s.wait_hist(class));
            }
            m.counter(&stage_key("qos", "retunes")).add(s.retune_count());
            let dl = self.delivery.ledger();
            for (metric, value) in [
                ("delivery.offered", dl.offered),
                ("delivery.shed", dl.shed),
                ("delivery.coalesced", dl.coalesced),
                ("delivery.delivered", dl.delivered),
                ("delivery.peak_backlog", self.delivery.peak_backlog()),
            ] {
                m.counter(&stage_key("qos", metric)).add(value);
            }
        }
        m.histogram(&stage_key("actuation", "ack_latency_us")).merge(c.actuation.ack_latency());
        // Pipeline latency spans and the merged (all-shards) admission
        // depth gauge. Only the totals ride here so the report stays
        // shard-count invariant; per-shard gauges appear in telemetry
        // snapshots, whose consumers strip them before cross-layout
        // comparison.
        self.driver.pipeline_spans().fold_into(&mut m);
        m.gauge(garnet_simkit::metrics::keys::QUEUE_DEPTH)
            .merge(self.driver.queue_depth_gauges().total());
        m
    }

    /// Builds the registry a telemetry snapshot is assembled over: the
    /// full [`Garnet::metrics`] view plus the per-ingest-shard depth
    /// gauges (`overload.queue_depth.shardN`), which are deliberately
    /// kept out of the shard-invariant report.
    fn telemetry_registry(&self) -> garnet_simkit::MetricsRegistry {
        let mut m = self.metrics();
        for (i, g) in self.driver.queue_depth_gauges().per_shard().iter().enumerate() {
            m.gauge(&garnet_simkit::metrics::keys::shard_queue_depth(i)).merge(g);
        }
        m
    }

    /// Closes the current telemetry window at `now` and returns its
    /// snapshot: counter deltas and rates, latency-quantile summaries,
    /// queue-depth watermarks, the archive ledger, supervision restarts,
    /// the match-cache hit rate, and the window's [`crate::telemetry::HealthReport`].
    /// Also appends the snapshot to the rotating JSONL sink when
    /// [`TelemetryConfig::sink_dir`] is configured.
    ///
    /// Windows are explicit: call this on whatever cadence the operator
    /// wants, or set [`TelemetryConfig::interval`] to have the facade
    /// emit automatically as ticks and frame bursts pass the deadline.
    pub fn telemetry(&mut self, now: SimTime) -> TelemetrySnapshot {
        let m = self.telemetry_registry();
        self.telemetry.emit(&m, now)
    }

    /// The most recently emitted telemetry snapshot, if any.
    pub fn last_telemetry(&self) -> Option<&TelemetrySnapshot> {
        self.telemetry.last()
    }

    /// The first telemetry-sink I/O error, if any. Sink failures never
    /// disturb the data path — they park here as a sticky diagnostic.
    pub fn telemetry_sink_error(&self) -> Option<&str> {
        self.telemetry.sink_error()
    }

    /// Emits a snapshot if the auto-emit interval has elapsed.
    fn maybe_emit_telemetry(&mut self, now: SimTime) {
        if self.telemetry.due(now) {
            let m = self.telemetry_registry();
            self.telemetry.emit(&m, now);
        }
    }

    /// The archive tap's per-record accounting, when
    /// [`GarnetConfig::archive`] is enabled. At quiescence under the
    /// FIFO engine `pending` is always 0; the threaded writer drains it
    /// at [`Garnet::flush_archive`]/[`Garnet::shutdown`].
    pub fn archive_ledger(&self) -> Option<crate::archive::ArchiveLedger> {
        self.archive.as_ref().map(ArchiveService::ledger)
    }

    /// The recovery report from opening the archive backend: surviving
    /// record counts, the truncation point (if the log had a torn or
    /// corrupt tail), and per-stream high-water marks.
    pub fn archive_recovery(&self) -> Option<&garnet_store::RecoveryReport> {
        self.archive.as_ref().map(ArchiveService::recovery)
    }

    /// Flushes the archive's pending appends within the configured
    /// bounded timeout.
    ///
    /// # Errors
    ///
    /// [`GarnetError::ArchiveFlushTimeout`] when the drain misses the
    /// deadline or the backend fails the sync; delivery is unaffected.
    pub fn flush_archive(&mut self, now: SimTime) -> Result<(), GarnetError> {
        match &mut self.archive {
            Some(archive) => {
                if archive.flush(now) {
                    Ok(())
                } else {
                    Err(GarnetError::ArchiveFlushTimeout)
                }
            }
            None => Ok(()),
        }
    }

    /// The archive tap's own flight recorder (separate from the router
    /// tracers so archive hops never perturb engine trace equivalence).
    /// Empty unless the `trace` cargo feature is compiled in.
    pub fn archive_trace_snapshot(&self) -> TraceSnapshot {
        self.archive.as_ref().map(ArchiveService::trace_snapshot).unwrap_or_default()
    }

    /// Replays recovered archive records through the normal boundary
    /// entry points, in log order: consecutive frame records stamped at
    /// the same instant re-enter as one [`Garnet::on_frames`] burst
    /// (batch size is observably irrelevant — both engines are
    /// batch-invariant), ticks as [`Garnet::on_tick`], acks as
    /// [`Garnet::on_standalone_ack`]. Replaying a log into a fresh,
    /// identically-configured facade rebuilds dispatch state
    /// bit-identically on either engine.
    pub fn replay_archive(&mut self, records: &[garnet_store::ArchiveRecord]) -> StepOutput {
        use garnet_store::ArchiveRecord;
        let mut out = StepOutput::default();
        let mut burst: Vec<(ReceiverId, f64, FrameBytes)> = Vec::new();
        let mut burst_at: u64 = 0;
        let flush_burst =
            |burst: &mut Vec<(ReceiverId, f64, FrameBytes)>, at: u64, this: &mut Self| {
                if !burst.is_empty() {
                    let output = this.on_frames(std::mem::take(burst), SimTime::from_micros(at));
                    Some(output)
                } else {
                    None
                }
            };
        for record in records {
            match record {
                ArchiveRecord::Frame { at_us, receiver, rssi_bits, frame } => {
                    if !burst.is_empty() && *at_us != burst_at {
                        if let Some(o) = flush_burst(&mut burst, burst_at, self) {
                            out.merge(o);
                        }
                    }
                    burst_at = *at_us;
                    burst.push((
                        ReceiverId::new(*receiver),
                        f64::from_bits(*rssi_bits),
                        frame.clone(),
                    ));
                }
                ArchiveRecord::Tick { at_us } => {
                    if let Some(o) = flush_burst(&mut burst, burst_at, self) {
                        out.merge(o);
                    }
                    out.merge(self.on_tick(SimTime::from_micros(*at_us)));
                }
                ArchiveRecord::Ack { at_us, request_id, status } => {
                    if let Some(o) = flush_burst(&mut burst, burst_at, self) {
                        out.merge(o);
                    }
                    self.on_standalone_ack(
                        RequestId::new(*request_id),
                        *status,
                        SimTime::from_micros(*at_us),
                    );
                }
            }
        }
        if let Some(o) = flush_burst(&mut burst, burst_at, self) {
            out.merge(o);
        }
        out
    }

    /// The flight recorder's current contents: one record per event hop
    /// the router has traced, chronological, plus per-stage hop/latency
    /// statistics. Empty unless the `trace` cargo feature is compiled
    /// in. See `DESIGN.md`'s Observability section for the schema.
    pub fn trace_snapshot(&self) -> TraceSnapshot {
        self.driver.trace_snapshot()
    }

    /// The flight recorder's contents as JSONL (one record per line, in
    /// trace order) — the dump format; diffable across runs and, modulo
    /// shard ids, across shard layouts. Empty unless the `trace` cargo
    /// feature is compiled in.
    pub fn trace_jsonl(&self) -> String {
        self.driver.trace_snapshot().to_jsonl()
    }

    /// Streams the flight recorder's buffered records into `w` as JSONL
    /// and clears the ring — the incremental alternative to
    /// [`Garnet::trace_jsonl`] for long-running deployments. Returns the
    /// number of records written. Always `Ok(0)` unless the `trace`
    /// cargo feature is compiled in.
    pub fn trace_drain_to(&mut self, w: &mut impl std::io::Write) -> std::io::Result<usize> {
        self.driver.trace_drain_to(w)
    }

    /// Shuts the middleware down: pumps to quiescence, drains and
    /// retires the archive tap (flushing pending appends within
    /// [`ArchiveConfig::flush_timeout`], returning a
    /// [`ArchiveBackend::Custom`](crate::archive::ArchiveBackend) store
    /// to its slot), then asks the driver to retire its workers
    /// (joining any pools) and applies whatever the shutdown released.
    /// After this call the facade still answers reads (statistics,
    /// traces, control-plane accessors), but new ingest is a no-op
    /// under the threaded driver.
    ///
    /// Dropping a [`Garnet`] without calling this is safe — the driver's
    /// `Drop` joins its pools — but discards in-flight outputs and the
    /// archive's pending tail.
    ///
    /// # Errors
    ///
    /// [`GarnetError::ArchiveFlushTimeout`] when the archive could not
    /// drain its pending appends in time (a wedged or failing backend).
    /// The engines are still shut down cleanly and the returned error
    /// carries no partial output — use [`Garnet::archive_ledger`] to
    /// see how much of the tail is in doubt.
    pub fn shutdown(&mut self, now: SimTime) -> Result<StepOutput, GarnetError> {
        let mut out = StepOutput::default();
        self.pump(now, &mut out);
        // Nothing may be stranded in the QoS plane: release anything the
        // scheduler still stages and flush every rate-limited consumer's
        // backlog regardless of drain limits, so both ledgers close
        // balanced (`offered == shed + delivered`).
        self.release_qos(now);
        for (rid, delivery, depth) in self.delivery.drain_all() {
            self.deliver_to(rid, &delivery, depth, now);
        }
        self.pump(now, &mut out);
        // Archive first: its log must capture every input the engines
        // processed, and a wedged store must not leave worker pools
        // unjoined (the drain is bounded; the pools are joined either
        // way below).
        let archive_ok = match &mut self.archive {
            Some(archive) => archive.shutdown(now),
            None => true,
        };
        let released = self.driver.shutdown(now);
        for o in released {
            self.apply(o, now, &mut out);
        }
        self.pump(now, &mut out);
        if archive_ok {
            Ok(out)
        } else {
            Err(GarnetError::ArchiveFlushTimeout)
        }
    }

    /// Runs a closure against a registered consumer (to read
    /// application-level results out of it).
    pub fn with_consumer<R>(
        &mut self,
        id: SubscriberId,
        f: impl FnOnce(&mut dyn Consumer) -> R,
    ) -> Option<R> {
        let entry = self.consumers.get_mut(&id)?;
        // The closure reborrows for the call; passing `f` point-free
        // would demand the borrow live as long as `&mut self`.
        #[allow(clippy::redundant_closure)]
        entry.consumer.as_deref_mut().map(|c| f(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consumer::CountingConsumer;
    use garnet_wire::{DataMessage, StreamIndex};

    fn frame(sensor: u32, idx: u8, seq: u16) -> Vec<u8> {
        let stream = StreamId::new(SensorId::new(sensor).unwrap(), StreamIndex::new(idx));
        DataMessage::builder(stream)
            .seq(SequenceNumber::new(seq))
            .payload(vec![1, 2, 3])
            .build()
            .unwrap()
            .encode_to_vec()
    }

    fn garnet() -> Garnet {
        Garnet::new(GarnetConfig::default())
    }

    #[test]
    fn end_to_end_frame_to_consumer() {
        let mut g = garnet();
        let token = g.issue_default_token("t");
        let id = g.register_consumer(Box::new(CountingConsumer::new("c")), &token, 0).unwrap();
        g.subscribe(id, TopicFilter::Sensor(SensorId::new(1).unwrap()), &token).unwrap();
        g.on_frame(ReceiverId::new(0), -50.0, &frame(1, 0, 0), SimTime::ZERO);
        g.on_frame(ReceiverId::new(0), -50.0, &frame(1, 0, 1), SimTime::from_millis(1));
        let count = g
            .with_consumer(id, |c| {
                // Downcast-free read: CountingConsumer exposes nothing via
                // the trait, so count via name as a smoke signal…
                c.name().to_owned()
            })
            .unwrap();
        assert_eq!(count, "c");
        assert_eq!(g.dispatching().delivery_count(), 2);
        assert_eq!(g.filtering().delivered_count(), 2);
    }

    #[test]
    fn unclaimed_goes_to_orphanage_and_replays_on_subscribe() {
        let mut g = garnet();
        // Nobody subscribed: three messages orphaned.
        for seq in 0..3u16 {
            g.on_frame(
                ReceiverId::new(0),
                -50.0,
                &frame(2, 0, seq),
                SimTime::from_millis(seq as u64),
            );
        }
        assert_eq!(g.orphanage().total_taken(), 3);
        let token = g.issue_default_token("late");
        let id = g.register_consumer(Box::new(CountingConsumer::new("late")), &token, 0).unwrap();
        let stream = StreamId::new(SensorId::new(2).unwrap(), StreamIndex::new(0));
        let (replayed, _) = g.subscribe(id, TopicFilter::Stream(stream), &token).unwrap();
        assert_eq!(replayed, 3);
        assert_eq!(g.orphanage().stream_count(), 0);
    }

    #[test]
    fn sensor_filter_claims_all_streams_of_sensor() {
        let mut g = garnet();
        g.on_frame(ReceiverId::new(0), -50.0, &frame(3, 0, 0), SimTime::ZERO);
        g.on_frame(ReceiverId::new(0), -50.0, &frame(3, 1, 0), SimTime::ZERO);
        g.on_frame(ReceiverId::new(0), -50.0, &frame(4, 0, 0), SimTime::ZERO);
        let token = g.issue_default_token("t");
        let id = g.register_consumer(Box::new(CountingConsumer::new("c")), &token, 0).unwrap();
        let (replayed, _) =
            g.subscribe(id, TopicFilter::Sensor(SensorId::new(3).unwrap()), &token).unwrap();
        assert_eq!(replayed, 2);
        assert_eq!(g.orphanage().stream_count(), 1, "sensor 4 stays orphaned");
    }

    #[test]
    fn duplicate_frames_filtered_before_dispatch() {
        let mut g = garnet();
        let token = g.issue_default_token("t");
        let id = g.register_consumer(Box::new(CountingConsumer::new("c")), &token, 0).unwrap();
        g.subscribe(id, TopicFilter::All, &token).unwrap();
        let f = frame(1, 0, 0);
        g.on_frame(ReceiverId::new(0), -50.0, &f, SimTime::ZERO);
        g.on_frame(ReceiverId::new(1), -60.0, &f, SimTime::ZERO);
        g.on_frame(ReceiverId::new(2), -70.0, &f, SimTime::ZERO);
        assert_eq!(g.dispatching().delivery_count(), 1);
        assert_eq!(g.filtering().duplicate_count(), 2);
    }

    #[test]
    fn unauthorized_subscribe_rejected() {
        let mut g = garnet();
        let token = g.issue_default_token("t");
        let id = g.register_consumer(Box::new(CountingConsumer::new("c")), &token, 0).unwrap();
        // A token from a different authority.
        let other = AuthService::new([1u8; 16]).issue(
            Principal::new("mallory"),
            CapabilitySet::all(),
            u64::MAX,
        );
        assert!(matches!(
            g.subscribe(id, TopicFilter::All, &other),
            Err(GarnetError::NotAuthorized { .. })
        ));
    }

    #[test]
    fn derived_streams_flow_to_second_level_consumer() {
        use crate::consumer::{Consumer, ConsumerCtx};

        /// Level-1: averages pairs of readings onto derived stream 0.
        struct Averager {
            values: Vec<u8>,
        }
        impl Consumer for Averager {
            fn name(&self) -> &str {
                "averager"
            }
            fn on_data(&mut self, d: &Delivery, ctx: &mut ConsumerCtx) {
                self.values.extend_from_slice(d.msg.payload());
                if self.values.len() >= 2 {
                    let avg = (self.values.iter().map(|&b| u32::from(b)).sum::<u32>()
                        / self.values.len() as u32) as u8;
                    ctx.publish_derived(StreamIndex::new(0), vec![avg]);
                    self.values.clear();
                }
            }
        }

        let mut g = garnet();
        let token = g.issue_default_token("t");
        let l1 = g.register_consumer(Box::new(Averager { values: Vec::new() }), &token, 0).unwrap();
        let l2 = g.register_consumer(Box::new(CountingConsumer::new("l2")), &token, 0).unwrap();
        let raw = StreamId::new(SensorId::new(1).unwrap(), StreamIndex::new(0));
        g.subscribe(l1, TopicFilter::Stream(raw), &token).unwrap();
        // L2 subscribes to the averager's derived stream.
        let derived = StreamId::new(g.virtual_sensor(l1).unwrap(), StreamIndex::new(0));
        g.subscribe(l2, TopicFilter::Stream(derived), &token).unwrap();

        for seq in 0..4u16 {
            g.on_frame(
                ReceiverId::new(0),
                -50.0,
                &frame(1, 0, seq),
                SimTime::from_millis(seq as u64),
            );
        }
        // 4 raw messages → 2 derived messages, each with 3-byte payloads
        // (frame() sends [1,2,3]) so the averager fires on every message.
        assert!(g.streams().info(derived).is_some(), "derived stream registered");
        let derived_info = g.streams().info(derived).unwrap();
        assert!(derived_info.derived);
        assert!(derived_info.messages >= 2);
        assert!(g.dispatching().delivery_count() >= 6);
    }

    #[test]
    fn derived_depth_guard_stops_loops() {
        use crate::consumer::{Consumer, ConsumerCtx};

        /// Pathological: republishes everything it hears, including its
        /// own derived stream.
        struct Loopy;
        impl Consumer for Loopy {
            fn name(&self) -> &str {
                "loopy"
            }
            fn on_data(&mut self, d: &Delivery, ctx: &mut ConsumerCtx) {
                ctx.publish_derived(StreamIndex::new(0), d.msg.payload().to_vec());
            }
        }

        let mut g = Garnet::new(GarnetConfig { max_derived_depth: 4, ..GarnetConfig::default() });
        let token = g.issue_default_token("t");
        let id = g.register_consumer(Box::new(Loopy), &token, 0).unwrap();
        g.subscribe(id, TopicFilter::All, &token).unwrap();
        g.on_frame(ReceiverId::new(0), -50.0, &frame(1, 0, 0), SimTime::ZERO);
        assert_eq!(g.depth_drop_count(), 1);
        // 1 raw + 4 derived levels delivered, then the guard stopped it.
        assert_eq!(g.dispatching().dispatched_count(), 5);
    }

    #[test]
    fn consumer_actuation_flows_through_resource_manager() {
        use crate::consumer::{Consumer, ConsumerCtx};

        struct Actuator;
        impl Consumer for Actuator {
            fn name(&self) -> &str {
                "actuator"
            }
            fn on_data(&mut self, d: &Delivery, ctx: &mut ConsumerCtx) {
                ctx.request_actuation(
                    ActuationTarget::Sensor(d.msg.stream().sensor()),
                    SensorCommand::SetReportInterval {
                        stream: StreamIndex::new(0),
                        interval_ms: 100,
                    },
                );
            }
        }

        let mut g = garnet();
        let token = g.issue_default_token("t");
        let id = g.register_consumer(Box::new(Actuator), &token, 0).unwrap();
        g.subscribe(id, TopicFilter::All, &token).unwrap();
        let out = g.on_frame(ReceiverId::new(0), -50.0, &frame(1, 0, 0), SimTime::ZERO);
        assert_eq!(out.control.len(), 1);
        assert_eq!(g.actuation().submitted_count(), 1);
        assert_eq!(g.resource().approved_count(), 1);
    }

    #[test]
    fn capability_gates_consumer_actions() {
        use crate::consumer::{Consumer, ConsumerCtx};

        struct Pushy;
        impl Consumer for Pushy {
            fn name(&self) -> &str {
                "pushy"
            }
            fn on_data(&mut self, _d: &Delivery, ctx: &mut ConsumerCtx) {
                ctx.request_actuation(
                    ActuationTarget::Sensor(SensorId::new(1).unwrap()),
                    SensorCommand::Ping,
                );
                ctx.location_hint(SensorId::new(1).unwrap(), Point::ORIGIN, 1.0);
                ctx.report_state(1);
            }
        }

        let mut g = garnet();
        // Subscribe-only token.
        let token = g.auth().issue(
            Principal::new("limited"),
            CapabilitySet::of(&[Capability::Subscribe]),
            u64::MAX,
        );
        let id = g.register_consumer(Box::new(Pushy), &token, 0).unwrap();
        g.subscribe(id, TopicFilter::All, &token).unwrap();
        let out = g.on_frame(ReceiverId::new(0), -50.0, &frame(1, 0, 0), SimTime::ZERO);
        assert!(out.control.is_empty());
        assert_eq!(g.denied_action_count(), 3);
        assert_eq!(g.location().hint_count(), 0);
    }

    #[test]
    fn piggybacked_ack_completes_actuation() {
        let mut g = garnet();
        let token = g.issue_default_token("t");
        let id = g.register_consumer(Box::new(CountingConsumer::new("c")), &token, 0).unwrap();
        g.subscribe(id, TopicFilter::All, &token).unwrap();
        let outcome = g
            .request_actuation(
                id,
                &token,
                ActuationTarget::Sensor(SensorId::new(1).unwrap()),
                SensorCommand::Ping,
                SimTime::ZERO,
            )
            .unwrap();
        let request_id = match outcome {
            ActuationOutcome::Granted { request_id, .. } => request_id,
            other => panic!("expected grant, got {other:?}"),
        };
        assert_eq!(g.actuation().in_flight(), 1);
        // The sensor's next data message piggy-backs the ack.
        let stream = StreamId::new(SensorId::new(1).unwrap(), StreamIndex::new(0));
        let acked = DataMessage::builder(stream)
            .seq(SequenceNumber::new(0))
            .ack(request_id)
            .build()
            .unwrap()
            .encode_to_vec();
        g.on_frame(ReceiverId::new(0), -50.0, &acked, SimTime::from_millis(20));
        assert_eq!(g.actuation().in_flight(), 0);
        assert_eq!(g.actuation().acknowledged_count(), 1);
    }

    #[test]
    fn tick_retries_and_expires() {
        let mut g = garnet();
        let token = g.issue_default_token("t");
        let id = g.register_consumer(Box::new(CountingConsumer::new("c")), &token, 0).unwrap();
        let _ = g
            .request_actuation(
                id,
                &token,
                ActuationTarget::Sensor(SensorId::new(1).unwrap()),
                SensorCommand::Ping,
                SimTime::ZERO,
            )
            .unwrap();
        // Default: 5s timeout, 2 retries, exponential backoff
        // (deadlines at 5 s, then +10 s, then +20 s).
        let out = g.on_tick(SimTime::from_secs(5));
        assert_eq!(out.control.len(), 1, "first retry");
        let out = g.on_tick(SimTime::from_secs(15));
        assert_eq!(out.control.len(), 1, "second retry");
        let out = g.on_tick(SimTime::from_secs(35));
        assert!(out.control.is_empty());
        assert_eq!(out.expired_requests.len(), 1);
    }

    #[test]
    fn registry_advertises_system_services_and_consumers() {
        let mut g = garnet();
        assert!(g.registry().lookup("filtering").is_some());
        assert!(g.registry().lookup("super-coordinator").is_some());
        let token = g.issue_default_token("t");
        g.register_consumer(Box::new(CountingConsumer::new("flood-watch")), &token, 0).unwrap();
        assert!(g.registry().lookup("consumer/flood-watch").is_some());
        assert_eq!(g.registry().discover_kind(ServiceKind::Consumer).len(), 1);
    }

    #[test]
    fn deregister_cleans_up() {
        let mut g = garnet();
        let token = g.issue_default_token("t");
        let id = g.register_consumer(Box::new(CountingConsumer::new("c")), &token, 0).unwrap();
        g.subscribe(id, TopicFilter::All, &token).unwrap();
        g.deregister_consumer(id).unwrap();
        assert!(matches!(g.deregister_consumer(id), Err(GarnetError::UnknownConsumer(_))));
        // Messages now orphan instead of dispatching.
        g.on_frame(ReceiverId::new(0), -50.0, &frame(1, 0, 0), SimTime::ZERO);
        assert_eq!(g.orphanage().total_taken(), 1);
    }

    #[test]
    fn virtual_sensor_ids_are_distinct_and_high() {
        let mut g = garnet();
        let token = g.issue_default_token("t");
        let a = g.register_consumer(Box::new(CountingConsumer::new("a")), &token, 0).unwrap();
        let b = g.register_consumer(Box::new(CountingConsumer::new("b")), &token, 0).unwrap();
        let va = g.virtual_sensor(a).unwrap();
        let vb = g.virtual_sensor(b).unwrap();
        assert_ne!(va, vb);
        assert!(va.as_u32() > 0x00F0_0000);
    }

    #[test]
    fn quiescence_slows_unclaimed_streams_and_restores_on_demand() {
        use garnet_simkit::SimDuration;
        let mut g = Garnet::new(GarnetConfig {
            quiesce: Some(QuiesceConfig {
                idle_after: SimDuration::from_secs(30),
                slow_interval_ms: 60_000,
                restore_interval_ms: 1_000,
            }),
            ..GarnetConfig::default()
        });
        // An unclaimed stream appears at t=0.
        g.on_frame(ReceiverId::new(0), -50.0, &frame(1, 0, 0), SimTime::ZERO);
        assert_eq!(
            g.next_deadline(),
            Some(SimTime::from_secs(30)),
            "quiesce due time drives the tick schedule"
        );
        // Before the idle window: nothing.
        let out = g.on_tick(SimTime::from_secs(10));
        assert!(out.control.is_empty());
        // Past it: the system slows the stream.
        let out = g.on_tick(SimTime::from_secs(31));
        assert_eq!(out.control.len(), 1);
        assert_eq!(g.quiesce_action_count(), 1);
        match out.control[0].request.command {
            SensorCommand::SetReportInterval { interval_ms, .. } => {
                assert_eq!(interval_ms, 60_000)
            }
            other => panic!("expected slow-down, got {other:?}"),
        }
        // The sensor acknowledges; otherwise the actuation service would
        // (correctly) retransmit the slow-down.
        g.on_standalone_ack(
            out.control[0].request.request_id,
            garnet_wire::AckStatus::Applied,
            SimTime::from_secs(32),
        );
        // Idempotent: no second slow-down.
        let out = g.on_tick(SimTime::from_secs(60));
        assert!(out.control.is_empty());

        // A subscriber appears: the stream is restored.
        let token = g.issue_default_token("late");
        let id = g.register_consumer(Box::new(CountingConsumer::new("late")), &token, 0).unwrap();
        let stream = StreamId::new(SensorId::new(1).unwrap(), StreamIndex::new(0));
        let (_, out) = g
            .subscribe_at(id, TopicFilter::Stream(stream), &token, SimTime::from_secs(70))
            .unwrap();
        assert_eq!(out.control.len(), 1);
        assert_eq!(g.restore_action_count(), 1);
        match out.control[0].request.command {
            SensorCommand::SetReportInterval { interval_ms, .. } => assert_eq!(interval_ms, 1_000),
            other => panic!("expected restore, got {other:?}"),
        }
        // Claimed streams are never re-quiesced.
        let out = g.on_tick(SimTime::from_secs(200));
        assert!(out.control.iter().all(|p| !matches!(
            p.request.command,
            SensorCommand::SetReportInterval { interval_ms: 60_000, .. }
        )));
    }

    #[test]
    fn quiescence_skips_derived_streams() {
        use crate::consumer::{Consumer, ConsumerCtx};
        use garnet_simkit::SimDuration;

        struct Repub;
        impl Consumer for Repub {
            fn name(&self) -> &str {
                "repub"
            }
            fn on_data(&mut self, d: &Delivery, ctx: &mut ConsumerCtx) {
                ctx.publish_derived(StreamIndex::new(0), d.msg.payload().to_vec());
            }
        }

        let mut g = Garnet::new(GarnetConfig {
            quiesce: Some(QuiesceConfig {
                idle_after: SimDuration::from_secs(10),
                slow_interval_ms: 60_000,
                restore_interval_ms: 1_000,
            }),
            ..GarnetConfig::default()
        });
        let token = g.issue_default_token("t");
        let id = g.register_consumer(Box::new(Repub), &token, 0).unwrap();
        let physical = StreamId::new(SensorId::new(1).unwrap(), StreamIndex::new(0));
        g.subscribe(id, TopicFilter::Stream(physical), &token).unwrap();
        // The derived stream is unclaimed, but virtual — never quiesced.
        g.on_frame(ReceiverId::new(0), -50.0, &frame(1, 0, 0), SimTime::ZERO);
        let out = g.on_tick(SimTime::from_secs(60));
        assert!(out.control.is_empty());
        assert_eq!(g.quiesce_action_count(), 0);
    }

    #[test]
    fn metrics_snapshot_reflects_service_state() {
        let mut g = garnet();
        let token = g.issue_default_token("t");
        let id = g.register_consumer(Box::new(CountingConsumer::new("c")), &token, 0).unwrap();
        g.subscribe(id, TopicFilter::All, &token).unwrap();
        let f = frame(1, 0, 0);
        g.on_frame(ReceiverId::new(0), -50.0, &f, SimTime::ZERO);
        g.on_frame(ReceiverId::new(1), -55.0, &f, SimTime::ZERO);

        let m = g.metrics();
        assert_eq!(m.counter_value("filtering.delivered"), 1);
        assert_eq!(m.counter_value("filtering.duplicates"), 1);
        assert_eq!(m.counter_value("dispatching.deliveries"), 1);
        assert_eq!(m.counter_value("consumers.registered"), 1);
        assert_eq!(m.counter_value("location.observations"), 0, "no receivers installed");
        let report = m.report();
        assert!(report.contains("filtering.delivered = 1"));
        // Snapshots are point-in-time and reproducible.
        assert_eq!(report, g.metrics().report());
    }

    #[test]
    fn coordinator_policy_fires_through_facade() {
        let mut g = garnet();
        let token = g.issue_default_token("t");
        let id = g.register_consumer(Box::new(CountingConsumer::new("c")), &token, 0).unwrap();
        g.register_coordinator_policy(
            2,
            PolicyAction {
                target: ActuationTarget::Sensor(SensorId::new(1).unwrap()),
                command: SensorCommand::SetReportInterval {
                    stream: StreamIndex::new(0),
                    interval_ms: 100,
                },
                priority: 9,
                anticipatable: true,
            },
        );
        // Train 1→2, then re-enter 1: predictive mode pre-fires 2's policy.
        g.report_state(id, &token, 1, SimTime::ZERO).unwrap();
        g.report_state(id, &token, 2, SimTime::from_secs(1)).unwrap();
        let out = g.report_state(id, &token, 1, SimTime::from_secs(2)).unwrap();
        assert_eq!(out.control.len(), 1, "anticipatory actuation dispatched");
        assert_eq!(g.coordinator().anticipatory_action_count(), 1);
    }

    #[test]
    fn sharded_facade_is_bit_identical_to_unsharded() {
        // Same frame schedule through 1-, 2- and 4-shard facades: every
        // observable (deliveries, duplicates, orphanage, metrics report)
        // must match exactly.
        fn run(shards: usize) -> (u64, u64, u64, String) {
            let mut g =
                Garnet::new(GarnetConfig { ingest_shards: shards, ..GarnetConfig::default() });
            let token = g.issue_default_token("t");
            let id = g.register_consumer(Box::new(CountingConsumer::new("c")), &token, 0).unwrap();
            g.subscribe(id, TopicFilter::Sensor(SensorId::new(2).unwrap()), &token).unwrap();
            for seq in 0..20u16 {
                for sensor in 1..=5u32 {
                    // Skip one message per stream to exercise reorder
                    // buffers, and duplicate another.
                    if seq == 7 {
                        continue;
                    }
                    let f = frame(sensor, 0, seq);
                    let t = SimTime::from_millis(u64::from(seq) * 10);
                    g.on_frame(ReceiverId::new(0), -50.0, &f, t);
                    if seq == 3 {
                        g.on_frame(ReceiverId::new(1), -60.0, &f, t);
                    }
                }
            }
            g.on_tick(SimTime::from_secs(30));
            (
                g.filtering().delivered_count(),
                g.filtering().duplicate_count(),
                g.orphanage().total_taken(),
                g.metrics().report(),
            )
        }
        let baseline = run(1);
        assert_eq!(run(2), baseline);
        assert_eq!(run(4), baseline);
    }

    #[test]
    fn step_output_merge_is_order_independent() {
        fn plan(id: u32) -> ReplicationPlan {
            ReplicationPlan {
                request: StreamUpdateRequest {
                    request_id: RequestId::new(id),
                    target: ActuationTarget::Sensor(SensorId::new(1).unwrap()),
                    command: SensorCommand::Ping,
                    issued_at_us: 0,
                    priority: 0,
                },
                transmitters: Vec::new(),
                flooded: true,
            }
        }
        let make = |ids: &[u32]| StepOutput {
            control: ids.iter().map(|&i| plan(i)).collect(),
            expired_requests: ids
                .iter()
                .map(|&i| StreamUpdateRequest {
                    request_id: RequestId::new(i),
                    target: ActuationTarget::Sensor(SensorId::new(1).unwrap()),
                    command: SensorCommand::Ping,
                    issued_at_us: 0,
                    priority: 0,
                })
                .collect(),
            ..StepOutput::default()
        };
        let accounted = |ids: &[u32], shard: usize| {
            let mut out = make(ids);
            out.overload = OverloadStats {
                offered: ids.len() as u64,
                shed: 1,
                coalesced: 0,
                delivered: ids.len() as u64 - 1,
                peak_queue_depth: shard as u64 + 3,
                shard_restarts: 0,
            };
            out.shard_failures =
                vec![ShardFailure { shard, seq: ids[0] as u64, reason: "boom".into() }];
            out
        };

        // Shard A produced {1, 4}, shard B produced {2, 3}. Merging in
        // either order yields the canonical ascending sequence.
        let mut ab = accounted(&[1, 4], 0);
        ab.merge(accounted(&[2, 3], 1));
        let mut ba = accounted(&[2, 3], 1);
        ba.merge(accounted(&[1, 4], 0));
        let ids = |o: &StepOutput| -> Vec<u32> {
            o.control.iter().map(|p| p.request.request_id.as_u32()).collect()
        };
        assert_eq!(ids(&ab), vec![1, 2, 3, 4]);
        assert_eq!(ids(&ab), ids(&ba));
        let exp = |o: &StepOutput| -> Vec<u32> {
            o.expired_requests.iter().map(|r| r.request_id.as_u32()).collect()
        };
        assert_eq!(exp(&ab), vec![1, 2, 3, 4]);
        assert_eq!(exp(&ab), exp(&ba));
        // Overload counters sum; peak depth takes the max, not the sum.
        assert_eq!(
            ab.overload,
            OverloadStats {
                offered: 4,
                shed: 2,
                coalesced: 0,
                delivered: 2,
                peak_queue_depth: 4,
                shard_restarts: 0,
            }
        );
        assert_eq!(ab.overload, ba.overload);
        // Shard failures land in (shard, seq) order either way.
        let shards =
            |o: &StepOutput| -> Vec<usize> { o.shard_failures.iter().map(|f| f.shard).collect() };
        assert_eq!(shards(&ab), vec![0, 1]);
        assert_eq!(shards(&ab), shards(&ba));
    }
}
