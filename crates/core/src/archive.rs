//! The durable-archive tap: every boundary input the facade accepts —
//! raw frames, maintenance ticks, standalone acknowledgements — is
//! encoded as a `garnet-store` [`ArchiveRecord`] and appended to an
//! append-only segmented log, so a crash-recovered node can rebuild its
//! dispatch state by replaying the log into a fresh [`crate::Garnet`]
//! (see `Garnet::replay_archive`).
//!
//! The tap sits at the facade boundary, *before* driver admission: both
//! execution engines are proven bit-identical on boundary-ordered
//! inputs, so a boundary log replays identically under either engine,
//! any shard layout, batched or per-frame. Records are encoded at the
//! tap, which also makes the logged bytes independent of worker timing.
//!
//! Storage must never stall delivery. Under the FIFO engine the log is
//! written inline (the simulation reference is single-threaded anyway);
//! under the threaded engine appends go through the bounded
//! [`garnet_net::Archiver`] queue and are *refused* — counted, not
//! waited for — when the queue is full or the backend is wedged. The
//! [`ArchiveLedger`] accounts for every offered record as
//! `archived | dropped | pending`, and `Garnet::shutdown` flushes the
//! pending tail with a bounded timeout.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use garnet_net::{Archiver, FlushOutcome};
use garnet_simkit::trace::{
    TraceConfig, TraceEventKind, TraceOutcome, TraceRecord, TraceSnapshot, TraceStage, Tracer,
};
use garnet_simkit::SimTime;
use garnet_store::{
    ArchiveRecord, FileStore, FrameArchive, MemStore, RecoveryReport, SegmentStore, StoreError,
};
use garnet_wire::{AckStatus, FrameBytes, RequestId};

use crate::driver::DriverKind;

/// A shared slot a test (or embedder) can plant a custom
/// [`SegmentStore`] in and recover it from after shutdown — the hook
/// that lets crash/replay tests inspect the exact bytes the facade
/// persisted.
pub type StoreSlot = Arc<Mutex<Option<Box<dyn SegmentStore>>>>;

/// Creates an empty [`StoreSlot`] holding `store`.
pub fn store_slot(store: Box<dyn SegmentStore>) -> StoreSlot {
    Arc::new(Mutex::new(Some(store)))
}

/// Where the archive log lives.
#[derive(Clone, Debug, Default)]
pub enum ArchiveBackend {
    /// In-process memory (discarded at shutdown unless recovered via a
    /// slot) — the bench/test default.
    #[default]
    Memory,
    /// One `segment-*.log` file per segment under this directory.
    Directory(PathBuf),
    /// A caller-provided store, taken from the slot at `Garnet::new`
    /// and returned to it at shutdown (threaded worker permitting).
    Custom(StoreSlot),
}

/// Durable-archive configuration (`GarnetConfig.archive`).
#[derive(Clone, Debug)]
pub struct ArchiveConfig {
    /// Storage backend.
    pub backend: ArchiveBackend,
    /// Segment roll-over threshold in bytes.
    pub segment_max_bytes: u64,
    /// Bounded append queue depth for the threaded writer; appends are
    /// refused (counted dropped) beyond it.
    pub queue_capacity: usize,
    /// Bounded wait for flush and shutdown drains.
    pub flush_timeout: Duration,
}

impl Default for ArchiveConfig {
    fn default() -> Self {
        ArchiveConfig {
            backend: ArchiveBackend::Memory,
            segment_max_bytes: 4 << 20,
            queue_capacity: 4096,
            flush_timeout: Duration::from_secs(5),
        }
    }
}

/// Per-record accounting: every record offered to the tap ends up in
/// exactly one of `archived | dropped | pending`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArchiveLedger {
    /// Records offered to the tap.
    pub offered: u64,
    /// Records durably appended.
    pub archived: u64,
    /// Records refused (full queue, failed store, disabled sink).
    pub dropped: u64,
    /// Records enqueued but not yet confirmed durable
    /// (`offered - archived - dropped`; nonzero only for the threaded
    /// writer between pumps).
    pub pending: u64,
    /// Completed flushes.
    pub flushes: u64,
    /// Flushes that failed or timed out.
    pub flush_failures: u64,
}

/// The write path behind the tap.
enum Sink {
    /// Synchronous append (FIFO engine).
    Inline(FrameArchive),
    /// Background writer with a bounded queue (threaded engine).
    Threaded(Archiver),
    /// The backend could not be opened (or was already shut down):
    /// delivery continues, every record counts as dropped.
    Disabled,
}

impl std::fmt::Debug for Sink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Sink::Inline(_) => "Sink::Inline",
            Sink::Threaded(_) => "Sink::Threaded",
            Sink::Disabled => "Sink::Disabled",
        })
    }
}

/// The facade's archive tap. Owns the sink, the recovery report from
/// opening the backend, the [`ArchiveLedger`], and its own flight
/// recorder (separate from the router tracers, so archive hops never
/// perturb the engines' trace-equivalence contract).
#[derive(Debug)]
pub struct ArchiveService {
    sink: Sink,
    config: ArchiveConfig,
    recovery: RecoveryReport,
    /// Failure that disabled the sink (open error or store error).
    pub(crate) last_error: Option<StoreError>,
    offered: u64,
    inline_archived: u64,
    dropped: u64,
    flushes: u64,
    flush_failures: u64,
    tracer: Tracer,
}

impl ArchiveService {
    /// Opens the backend, recovers any existing log (truncating at the
    /// first corrupt record), and starts the writer appropriate for
    /// `driver`. A backend that fails to open degrades to
    /// [`Sink::Disabled`] — the middleware runs, the ledger records the
    /// loss.
    pub(crate) fn new(config: ArchiveConfig, driver: DriverKind, trace_capacity: usize) -> Self {
        let mut last_error = None;
        let store: Option<Box<dyn SegmentStore>> = match &config.backend {
            ArchiveBackend::Memory => Some(Box::new(MemStore::new())),
            ArchiveBackend::Directory(dir) => match FileStore::open(dir) {
                Ok(fs) => Some(Box::new(fs)),
                Err(e) => {
                    last_error = Some(e);
                    None
                }
            },
            ArchiveBackend::Custom(slot) => {
                slot.lock().expect("archive store slot").take().map(|s| s as Box<dyn SegmentStore>)
            }
        };
        let opened = store.and_then(|s| match FrameArchive::open(s, config.segment_max_bytes) {
            Ok(pair) => Some(pair),
            Err(e) => {
                last_error = Some(e);
                None
            }
        });
        let (sink, recovery) = match opened {
            Some((archive, recovery)) => {
                let sink = match driver {
                    DriverKind::Fifo => Sink::Inline(archive),
                    DriverKind::Threaded => {
                        Sink::Threaded(Archiver::spawn(archive, config.queue_capacity))
                    }
                };
                (sink, recovery)
            }
            None => (Sink::Disabled, RecoveryReport::default()),
        };
        ArchiveService {
            sink,
            config,
            recovery,
            last_error,
            offered: 0,
            inline_archived: 0,
            dropped: 0,
            flushes: 0,
            flush_failures: 0,
            tracer: Tracer::new(TraceConfig { capacity: trace_capacity }),
        }
    }

    /// The recovery report from opening the backend: what survived, what
    /// was truncated, the per-stream high-water marks.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Current per-record accounting.
    pub fn ledger(&self) -> ArchiveLedger {
        let (archived, worker_failed, worker_flush_failures) = match &self.sink {
            Sink::Inline(_) | Sink::Disabled => (self.inline_archived, 0, 0),
            Sink::Threaded(arch) => {
                let c = arch.counters();
                (c.appended, c.failed, c.flush_failures)
            }
        };
        let dropped = self.dropped + worker_failed;
        ArchiveLedger {
            offered: self.offered,
            archived,
            dropped,
            pending: self.offered.saturating_sub(archived + dropped),
            flushes: self.flushes,
            flush_failures: self.flush_failures + worker_flush_failures,
        }
    }

    /// This tap's flight recorder (empty unless the `trace` feature is
    /// compiled in).
    pub fn trace_snapshot(&self) -> TraceSnapshot {
        self.tracer.snapshot()
    }

    /// Appends one record (pre-encoded here, so logged bytes never
    /// depend on writer timing). Records the hop in the tap's tracer.
    pub(crate) fn append(&mut self, record: &ArchiveRecord, now: SimTime) {
        self.offered += 1;
        let bytes = record.encode();
        let accepted = match &mut self.sink {
            Sink::Inline(archive) => match archive.append_bytes(&bytes) {
                Ok(()) => {
                    self.inline_archived += 1;
                    true
                }
                Err(e) => {
                    self.dropped += 1;
                    self.last_error = Some(e);
                    false
                }
            },
            Sink::Threaded(arch) => {
                let queued = arch.try_append(bytes);
                if !queued {
                    self.dropped += 1;
                }
                queued
            }
            Sink::Disabled => {
                self.dropped += 1;
                false
            }
        };
        self.tracer.record(|| TraceRecord {
            stream: record.stream().map(|s| s.to_raw()),
            ..TraceRecord::new(
                now.as_micros(),
                TraceStage::Archive,
                TraceEventKind::ArchiveAppend,
                if accepted { TraceOutcome::Delivered } else { TraceOutcome::Shed },
            )
        });
    }

    /// Flushes pending appends within the configured bounded timeout.
    /// Returns `false` on flush failure or timeout (counted in the
    /// ledger); delivery is unaffected either way.
    pub(crate) fn flush(&mut self, now: SimTime) -> bool {
        let ok = match &mut self.sink {
            Sink::Inline(archive) => match archive.sync() {
                Ok(()) => true,
                Err(e) => {
                    self.last_error = Some(e);
                    false
                }
            },
            Sink::Threaded(arch) => {
                matches!(arch.flush(self.config.flush_timeout), FlushOutcome::Flushed)
            }
            Sink::Disabled => false,
        };
        if ok {
            self.flushes += 1;
        } else {
            self.flush_failures += 1;
        }
        self.tracer.record(|| {
            TraceRecord::new(
                now.as_micros(),
                TraceStage::Archive,
                TraceEventKind::ArchiveFlush,
                if ok { TraceOutcome::Delivered } else { TraceOutcome::Failed },
            )
        });
        ok
    }

    /// Drains and retires the sink within the bounded timeout,
    /// returning the store to a [`ArchiveBackend::Custom`] slot when
    /// possible. Returns `false` when the drain timed out (pending
    /// appends may be lost; the ledger still balances).
    pub(crate) fn shutdown(&mut self, now: SimTime) -> bool {
        if matches!(self.sink, Sink::Disabled) {
            // Nothing pending: the tap already degraded (or was shut
            // down); every record is accounted for as dropped.
            return true;
        }
        let flushed = self.flush(now);
        let (archive, timed_out) = match std::mem::replace(&mut self.sink, Sink::Disabled) {
            Sink::Inline(archive) => (Some(archive), false),
            Sink::Threaded(arch) => {
                let down = arch.shutdown(self.config.flush_timeout);
                // The worker is gone: fold its final counters into the
                // service's own, so the post-shutdown ledger keeps
                // reporting what was durably appended.
                self.inline_archived += down.counters.appended;
                self.dropped += down.counters.failed;
                self.flush_failures += down.counters.flush_failures;
                (down.archive, down.timed_out)
            }
            Sink::Disabled => (None, false),
        };
        if let (Some(archive), ArchiveBackend::Custom(slot)) = (archive, &self.config.backend) {
            *slot.lock().expect("archive store slot") = Some(archive.into_store());
        }
        flushed && !timed_out
    }
}

/// Builds the boundary records for the facade. Free functions so the
/// facade can construct records without reaching into `garnet-store`
/// types directly.
pub(crate) fn frame_record(
    receiver: u32,
    rssi_dbm: f64,
    frame: FrameBytes,
    now: SimTime,
) -> ArchiveRecord {
    ArchiveRecord::frame(receiver, rssi_dbm, frame, now)
}

/// A maintenance-tick marker.
pub(crate) fn tick_record(now: SimTime) -> ArchiveRecord {
    ArchiveRecord::tick(now)
}

/// A standalone-acknowledgement record.
pub(crate) fn ack_record(request_id: RequestId, status: AckStatus, now: SimTime) -> ArchiveRecord {
    ArchiveRecord::ack(request_id, status, now)
}
