//! The execution engines behind the [`crate::Garnet`] facade.
//!
//! [`RouterDriver`] is the router-facing surface the facade actually
//! uses: frame admission, pumping to quiescence, subscription changes,
//! the metrics counters, the overload ledger, shard supervision and the
//! flight recorder. Two engines implement it:
//!
//! * [`FifoDriver`] — the single-threaded FIFO [`Router`], the
//!   simulation engine with bit-exact event interleaving;
//! * [`ThreadedDriver`] — a facade-hosted [`ThreadedRouter`]: worker
//!   pools per stage, a shared live subscription table, and the control
//!   graph pumped inline so synchronous facade calls can still borrow
//!   it.
//!
//! Both produce identical deliveries, metrics and (modulo shard ids)
//! trace dumps for the same input schedule; [`GarnetConfig::driver`]
//! picks between them.
//!
//! [`GarnetConfig::driver`]: crate::GarnetConfig::driver

use std::sync::{Arc, RwLock};

use garnet_net::{ShardFailure, SubscriberId, SubscriptionTable, TopicFilter};
use garnet_radio::ReceiverId;
use garnet_simkit::trace::{TraceConfig, TraceSnapshot};
use garnet_simkit::{Histogram, SimTime};
use garnet_wire::{FrameBytes, StreamId};

use crate::filtering::{FilterConfig, FilteringService};
use crate::router::{
    ControlGraph, FrameAdmission, OverloadConfig, OverloadTotals, Router, Services, ShardedIngest,
    ThreadedRouter, ThreadedRouterParts,
};
use crate::service::{BatchedFrame, ServiceEvent, ServiceOutput};
use crate::stream::ShardedStreamRegistry;
use crate::telemetry::{PipelineSpans, QueueDepthGauges};

/// Which execution engine hosts the service graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriverKind {
    /// The single-threaded FIFO [`Router`]: one event at a time, the
    /// reference interleaving. The simulation default.
    Fifo,
    /// The [`ThreadedRouter`]: filtering and dispatch on worker pools,
    /// outputs released in boundary order so every observable matches
    /// the FIFO engine.
    Threaded,
}

impl Default for DriverKind {
    /// [`DriverKind::Fifo`], unless the `GARNET_TEST_DRIVER`
    /// environment variable says `threaded` — the hook CI uses to run
    /// default-config test suites against both engines without
    /// editing them.
    fn default() -> Self {
        match std::env::var("GARNET_TEST_DRIVER") {
            Ok(v) if v.eq_ignore_ascii_case("threaded") => DriverKind::Threaded,
            _ => DriverKind::Fifo,
        }
    }
}

/// Ingest-stage counters, snapshotted by value through the driver
/// surface. (By value because the threaded engine aggregates per-shard
/// snapshots on demand — there is no single struct to borrow.)
#[derive(Clone, Copy, Debug, Default)]
pub struct FilterStats {
    pub(crate) delivered: u64,
    pub(crate) duplicates: u64,
    pub(crate) crc_failures: u64,
    pub(crate) reordered: u64,
    pub(crate) gaps: u64,
    pub(crate) restarts: u64,
    pub(crate) streams: usize,
}

impl FilterStats {
    /// Snapshot of one filtering shard's counters.
    pub(crate) fn of(filter: &FilteringService) -> Self {
        FilterStats {
            delivered: filter.delivered_count(),
            duplicates: filter.duplicate_count(),
            crc_failures: filter.crc_failure_count(),
            reordered: filter.reordered_count(),
            gaps: filter.gap_count(),
            restarts: filter.restart_count(),
            streams: filter.stream_count(),
        }
    }

    /// Snapshot of a whole sharded ingest stage.
    pub(crate) fn of_sharded(ingest: &ShardedIngest) -> Self {
        FilterStats {
            delivered: ingest.delivered_count(),
            duplicates: ingest.duplicate_count(),
            crc_failures: ingest.crc_failure_count(),
            reordered: ingest.reordered_count(),
            gaps: ingest.gap_count(),
            restarts: ingest.restart_count(),
            streams: ingest.stream_count(),
        }
    }

    /// Sums two shard snapshots (streams are partitioned across
    /// shards, so the sums are exact).
    pub(crate) fn absorb(mut self, other: FilterStats) -> Self {
        self.delivered += other.delivered;
        self.duplicates += other.duplicates;
        self.crc_failures += other.crc_failures;
        self.reordered += other.reordered;
        self.gaps += other.gaps;
        self.restarts += other.restarts;
        self.streams += other.streams;
        self
    }

    /// Messages released downstream.
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Duplicate frames eliminated.
    pub fn duplicate_count(&self) -> u64 {
        self.duplicates
    }

    /// Frames rejected by CRC/decode.
    pub fn crc_failure_count(&self) -> u64 {
        self.crc_failures
    }

    /// Frames buffered out of order.
    pub fn reordered_count(&self) -> u64 {
        self.reordered
    }

    /// Gaps accepted.
    pub fn gap_count(&self) -> u64 {
        self.gaps
    }

    /// Stream restarts detected.
    pub fn restart_count(&self) -> u64 {
        self.restarts
    }

    /// Streams tracked.
    pub fn stream_count(&self) -> usize {
        self.streams
    }
}

/// Dispatch-stage counters, snapshotted by value through the driver
/// surface.
#[derive(Clone, Debug, Default)]
pub struct DispatchStats {
    pub(crate) dispatched: u64,
    pub(crate) deliveries: u64,
    pub(crate) unclaimed: u64,
    pub(crate) fanout: Histogram,
    pub(crate) subscribers: usize,
    pub(crate) match_cache: garnet_net::MatchCacheStats,
}

impl DispatchStats {
    /// Messages routed.
    pub fn dispatched_count(&self) -> u64 {
        self.dispatched
    }

    /// Total (message, subscriber) deliveries.
    pub fn delivery_count(&self) -> u64 {
        self.deliveries
    }

    /// Messages that matched nobody.
    pub fn unclaimed_count(&self) -> u64 {
        self.unclaimed
    }

    /// Distribution of per-message fan-out.
    pub fn fanout(&self) -> &Histogram {
        &self.fanout
    }

    /// Distinct subscribers with live subscriptions.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers
    }

    /// Match-cache counters, folded across dispatch shards.
    pub fn match_cache(&self) -> garnet_net::MatchCacheStats {
        self.match_cache
    }
}

/// The router-facing surface [`crate::Garnet`] drives. Everything the
/// facade needs — admission, pumping, subscriptions, stream catalogue,
/// control-plane access, metrics, the overload ledger, shard
/// supervision and the flight recorder — with both engines behind it.
///
/// The contract the facade's determinism guarantees rest on:
///
/// * [`RouterDriver::pump`] returns escaped outputs in the exact order
///   the FIFO router would surface them; an empty batch means the
///   graph is quiescent.
/// * Subscription and registry mutations only happen between pumps
///   (the facade is single-threaded), so engines may serve them from
///   shared state without locking the hot path.
/// * [`RouterDriver::shutdown`] drains in-flight work and joins any
///   worker pools; afterwards reads (metrics, traces, streams) still
///   work and new events are ignored.
pub trait RouterDriver: std::fmt::Debug {
    /// Queues one boundary event — the control path: never shed.
    fn push_event(&mut self, ev: ServiceEvent, now: SimTime);

    /// Offers one frame to admission control. Returns any outputs that
    /// escaped the graph while admission made room (only the FIFO
    /// engine under [`crate::router::OverloadPolicy::Block`] produces
    /// these; they must be applied before the next pump).
    fn admit_frame(
        &mut self,
        receiver: ReceiverId,
        rssi_dbm: f64,
        frame: FrameBytes,
        now: SimTime,
    ) -> Vec<ServiceOutput>;

    /// Offers a burst of frames to admission control as one unit.
    ///
    /// Semantically identical to calling [`RouterDriver::admit_frame`]
    /// once per frame in order — the overload ledger counts every
    /// individual frame — but engines amortise per-frame costs over
    /// the burst (one channel hand-off per shard run, one filtering
    /// pass per batch).
    fn admit_frames(&mut self, frames: Vec<BatchedFrame>, now: SimTime) -> Vec<ServiceOutput>;

    /// Advances the graph, returning escaped outputs in canonical
    /// order. An empty batch means quiescence; the facade loops until
    /// then, applying outputs (which may push new events) in between.
    fn pump(&mut self, now: SimTime) -> Vec<ServiceOutput>;

    /// Allocates a fresh subscriber identity.
    fn register_subscriber(&mut self) -> SubscriberId;

    /// Adds a subscription. Returns true if new.
    fn subscribe(&mut self, subscriber: SubscriberId, filter: TopicFilter) -> bool;

    /// Removes one subscription.
    fn unsubscribe(&mut self, subscriber: SubscriberId, filter: TopicFilter) -> bool;

    /// Removes every subscription of a departing subscriber, returning
    /// how many it held.
    fn unsubscribe_all(&mut self, subscriber: SubscriberId) -> usize;

    /// True if a message on `stream` would reach at least one
    /// subscriber.
    fn would_deliver(&self, stream: StreamId) -> bool;

    /// Overrides the stream catalogue's claimed flag.
    fn set_claimed(&mut self, stream: StreamId, claimed: bool);

    /// The stream catalogue.
    fn streams(&self) -> &ShardedStreamRegistry;

    /// The control-plane services (synchronous request/response calls:
    /// orphanage claims, location reads, profile registration).
    fn control(&self) -> &ControlGraph;

    /// Mutable control-plane access.
    fn control_mut(&mut self) -> &mut ControlGraph;

    /// Ingest-stage counters.
    fn filter_stats(&self) -> FilterStats;

    /// Dispatch-stage counters.
    fn dispatch_stats(&self) -> DispatchStats;

    /// Monotonic admission totals; at quiescence
    /// `offered == shed + delivered`.
    fn overload_totals(&self) -> OverloadTotals;

    /// High-water mark of the frame queue.
    fn peak_queue_depth(&self) -> u64;

    /// p99 of queue-depth-at-admission samples (0 when unbounded —
    /// neither engine samples an ungoverned queue).
    fn queue_depth_p99(&self) -> u64;

    /// Shard restarts performed by a supervision policy (always 0 for
    /// the FIFO engine — nothing panics, nothing restarts).
    fn shard_restart_count(&self) -> u64;

    /// Jobs accepted per [`garnet_net::EdgeClass`] across the engine's
    /// stage edges, indexed by `EdgeClass::index`. All zeros for the
    /// FIFO engine, which has no channel boundaries to account at.
    fn edge_class_submits(&self) -> [u64; 3] {
        [0; 3]
    }

    /// The pipeline latency spans recorded so far (filtering /
    /// dispatching / end-to-end, sim-time driven and therefore
    /// engine-invariant). Still readable after shutdown.
    fn pipeline_spans(&self) -> &PipelineSpans;

    /// The per-ingest-shard admission-depth gauges. Still readable
    /// after shutdown.
    fn queue_depth_gauges(&self) -> &QueueDepthGauges;

    /// Turns latency-span and depth-gauge recording on or off (on by
    /// default).
    fn set_telemetry_recording(&mut self, enabled: bool);

    /// Resets the telemetry depth counts at a logical quiescence point
    /// (the facade calls this after pumping the engine dry; watermarks
    /// survive).
    fn note_telemetry_quiescent(&mut self);

    /// Takes worker failures recorded since the last call (always
    /// empty for the FIFO engine, which has no threads to lose).
    fn take_shard_failures(&mut self) -> Vec<ShardFailure>;

    /// The earliest time-driven deadline across services.
    fn next_deadline(&self) -> Option<SimTime>;

    /// Replaces the flight recorder with one of the given capacity.
    fn configure_trace(&mut self, config: TraceConfig);

    /// The flight recorder's current contents.
    fn trace_snapshot(&self) -> TraceSnapshot;

    /// Streams the flight recorder's window to `w` as JSONL and clears
    /// it (see [`garnet_simkit::trace::Tracer::drain_to`]).
    fn trace_drain_to(&mut self, w: &mut dyn std::io::Write) -> std::io::Result<usize>;

    /// Drains in-flight work and joins any worker pools, returning the
    /// outputs released on the way out. Reads keep working afterwards;
    /// new events are ignored.
    fn shutdown(&mut self, now: SimTime) -> Vec<ServiceOutput>;
}

/// The FIFO [`Router`] behind the driver surface.
#[derive(Debug)]
pub struct FifoDriver {
    router: Router,
    /// Pump with [`Router::step_batch`] (consume consecutive Frame runs
    /// in one filtering pass) instead of [`Router::step`]. Bit-identical
    /// either way; `false` is the legacy path CI compares against.
    batch: bool,
}

impl FifoDriver {
    /// Wraps a router over the given services. `batch` selects batch
    /// pumping (see [`FifoDriver::batch`]).
    pub fn new(services: Services, overload: Option<OverloadConfig>, batch: bool) -> Self {
        FifoDriver { router: Router::with_overload(services, overload), batch }
    }
}

impl RouterDriver for FifoDriver {
    fn push_event(&mut self, ev: ServiceEvent, _now: SimTime) {
        self.router.enqueue(ev);
    }

    fn admit_frame(
        &mut self,
        receiver: ReceiverId,
        rssi_dbm: f64,
        frame: FrameBytes,
        now: SimTime,
    ) -> Vec<ServiceOutput> {
        let mut escaped = Vec::new();
        let mut pending = frame;
        // A blocked admission drains one event to make room, then
        // retries. The queue is non-empty whenever admission blocks
        // (capacity ≥ 1 and we are at capacity), so the inner step
        // always makes progress.
        while let FrameAdmission::Blocked(frame) =
            self.router.admit_frame(receiver, rssi_dbm, pending, now)
        {
            pending = frame;
            let Some(outputs) = self.router.step(now) else {
                break; // defensive: cannot happen
            };
            escaped.extend(outputs);
        }
        escaped
    }

    fn admit_frames(&mut self, frames: Vec<BatchedFrame>, now: SimTime) -> Vec<ServiceOutput> {
        // Admission stays per-frame (exact ledger, exact queue-depth
        // samples); the batch win comes from the pump, where
        // `step_batch` pops the consecutive Frame run and filters it
        // in one pass.
        let mut escaped = Vec::new();
        for f in frames {
            escaped.extend(self.admit_frame(f.receiver, f.rssi_dbm, f.frame, now));
        }
        escaped
    }

    fn pump(&mut self, now: SimTime) -> Vec<ServiceOutput> {
        // Steps until the first non-empty output batch: the facade
        // applies it (possibly pushing new events) and calls again, so
        // the apply-per-step cadence of driving the router directly is
        // preserved exactly. In batch mode `step_batch` consumes runs
        // of consecutive Frame events in one filtering pass; frame
        // steps emit no external outputs, so the batch is observably
        // identical to stepping the run one frame at a time.
        if self.batch {
            while let Some(outputs) = self.router.step_batch(now) {
                if !outputs.is_empty() {
                    return outputs;
                }
            }
        } else {
            while let Some(outputs) = self.router.step(now) {
                if !outputs.is_empty() {
                    return outputs;
                }
            }
        }
        Vec::new()
    }

    fn register_subscriber(&mut self) -> SubscriberId {
        self.router.services_mut().dispatch.register_subscriber()
    }

    fn subscribe(&mut self, subscriber: SubscriberId, filter: TopicFilter) -> bool {
        self.router.services_mut().dispatch.subscribe(subscriber, filter)
    }

    fn unsubscribe(&mut self, subscriber: SubscriberId, filter: TopicFilter) -> bool {
        self.router.services_mut().dispatch.unsubscribe(subscriber, filter)
    }

    fn unsubscribe_all(&mut self, subscriber: SubscriberId) -> usize {
        self.router.services_mut().dispatch.unsubscribe_all(subscriber)
    }

    fn would_deliver(&self, stream: StreamId) -> bool {
        self.router.services().dispatch.would_deliver(stream)
    }

    fn set_claimed(&mut self, stream: StreamId, claimed: bool) {
        self.router.services_mut().dispatch.streams.set_claimed(stream, claimed);
    }

    fn streams(&self) -> &ShardedStreamRegistry {
        &self.router.services().dispatch.streams
    }

    fn control(&self) -> &ControlGraph {
        &self.router.services().control
    }

    fn control_mut(&mut self) -> &mut ControlGraph {
        &mut self.router.services_mut().control
    }

    fn filter_stats(&self) -> FilterStats {
        FilterStats::of_sharded(&self.router.services().ingest)
    }

    fn dispatch_stats(&self) -> DispatchStats {
        let d = &self.router.services().dispatch;
        DispatchStats {
            dispatched: d.dispatched_count(),
            deliveries: d.delivery_count(),
            unclaimed: d.unclaimed_count(),
            fanout: d.fanout(),
            subscribers: d.subscriber_count(),
            match_cache: d.cache_stats(),
        }
    }

    fn overload_totals(&self) -> OverloadTotals {
        self.router.overload_totals()
    }

    fn peak_queue_depth(&self) -> u64 {
        self.router.peak_queue_depth()
    }

    fn queue_depth_p99(&self) -> u64 {
        self.router.depth_histogram().p99()
    }

    fn shard_restart_count(&self) -> u64 {
        0
    }

    fn pipeline_spans(&self) -> &PipelineSpans {
        self.router.pipeline_spans()
    }

    fn queue_depth_gauges(&self) -> &QueueDepthGauges {
        self.router.queue_depth_gauges()
    }

    fn set_telemetry_recording(&mut self, enabled: bool) {
        self.router.set_telemetry_recording(enabled);
    }

    fn note_telemetry_quiescent(&mut self) {
        self.router.note_telemetry_quiescent();
    }

    fn take_shard_failures(&mut self) -> Vec<ShardFailure> {
        Vec::new()
    }

    fn next_deadline(&self) -> Option<SimTime> {
        self.router.next_deadline()
    }

    fn configure_trace(&mut self, config: TraceConfig) {
        self.router.configure_trace(config);
    }

    fn trace_snapshot(&self) -> TraceSnapshot {
        self.router.trace_snapshot()
    }

    fn trace_drain_to(&mut self, w: &mut dyn std::io::Write) -> std::io::Result<usize> {
        self.router.trace_drain_to(w)
    }

    fn shutdown(&mut self, now: SimTime) -> Vec<ServiceOutput> {
        // No pools to join: just drain whatever is still queued.
        let mut out = Vec::new();
        while let Some(outputs) = self.router.step(now) {
            out.extend(outputs);
        }
        out
    }
}

/// The [`ThreadedRouter`] hosted behind the driver surface.
///
/// Subscriptions live in one shared [`SubscriptionTable`] the dispatch
/// workers read per job — no per-worker replicas, so subscription
/// memory is independent of the shard count. Outputs released during
/// admission are buffered and handed out at the next
/// [`RouterDriver::pump`], which preserves the FIFO engine's apply
/// order (releases are in boundary order; the FIFO queue is too).
///
/// Dropping the driver joins all worker pools; [`RouterDriver::shutdown`]
/// does the same but keeps the terminal state readable.
pub struct ThreadedDriver {
    router: Option<ThreadedRouter>,
    subscriptions: Arc<RwLock<SubscriptionTable>>,
    next_subscriber: u32,
    /// Outputs released by the graph while admitting, held until the
    /// facade pumps.
    pending: Vec<ServiceOutput>,
    /// Whether admission is bounded (mirrors the FIFO router's
    /// "sample depth only when bounded" rule).
    bounded: bool,
    /// Frames admitted since the graph last went quiescent — the
    /// mirror of the FIFO router's queue depth, since the facade pumps
    /// to quiescence after every admission burst.
    frames_since_quiescence: u64,
    peak_depth: u64,
    depth_hist: Histogram,
    /// What shutdown left behind; reads are served from here once the
    /// pools are joined.
    retired: Option<ThreadedRouterParts>,
    /// Submit admission bursts through [`ThreadedRouter::push_frames`]
    /// (one edge hand-off per consecutive same-shard run) instead of
    /// frame at a time. Bit-identical either way.
    batch: bool,
}

impl ThreadedDriver {
    /// Spawns the hosted graph. `overload` maps onto the frame edge's
    /// backpressure policy exactly as it governs the FIFO queue
    /// (`None` = blocking admission that never sheds); `batch` selects
    /// run-merged edge submission for admission bursts.
    pub fn new(
        config: FilterConfig,
        ingest_shards: usize,
        dispatch_shards: usize,
        control: ControlGraph,
        overload: Option<OverloadConfig>,
        batch: bool,
        cache: garnet_net::DispatchCacheConfig,
    ) -> Self {
        let subscriptions = Arc::new(RwLock::new(SubscriptionTable::new()));
        let router = ThreadedRouter::hosted(
            config,
            ingest_shards,
            dispatch_shards,
            subscriptions.clone(),
            control,
            overload,
            cache,
        );
        ThreadedDriver {
            router: Some(router),
            subscriptions,
            next_subscriber: 0,
            pending: Vec::new(),
            bounded: overload.is_some(),
            frames_since_quiescence: 0,
            peak_depth: 0,
            depth_hist: Histogram::new(),
            retired: None,
            batch,
        }
    }

    fn retired(&self) -> &ThreadedRouterParts {
        self.retired.as_ref().expect("a ThreadedDriver is live or retired, never neither")
    }
}

impl RouterDriver for ThreadedDriver {
    fn push_event(&mut self, ev: ServiceEvent, now: SimTime) {
        let Some(router) = self.router.as_mut() else { return };
        for released in router.push_event(ev, now) {
            self.pending.extend(released.outputs);
        }
    }

    fn admit_frame(
        &mut self,
        receiver: ReceiverId,
        rssi_dbm: f64,
        frame: FrameBytes,
        now: SimTime,
    ) -> Vec<ServiceOutput> {
        let Some(router) = self.router.as_mut() else { return Vec::new() };
        self.frames_since_quiescence += 1;
        self.peak_depth = self.peak_depth.max(self.frames_since_quiescence);
        if self.bounded {
            self.depth_hist.record(self.frames_since_quiescence);
        }
        for released in router.push_frame(receiver, rssi_dbm, frame, now) {
            self.pending.extend(released.outputs);
        }
        Vec::new()
    }

    fn admit_frames(&mut self, frames: Vec<BatchedFrame>, now: SimTime) -> Vec<ServiceOutput> {
        if !self.batch {
            let mut escaped = Vec::new();
            for f in frames {
                escaped.extend(self.admit_frame(f.receiver, f.rssi_dbm, f.frame, now));
            }
            return escaped;
        }
        let Some(router) = self.router.as_mut() else { return Vec::new() };
        for _ in 0..frames.len() {
            self.frames_since_quiescence += 1;
            self.peak_depth = self.peak_depth.max(self.frames_since_quiescence);
            if self.bounded {
                self.depth_hist.record(self.frames_since_quiescence);
            }
        }
        let staged = frames.into_iter().map(|f| (f.receiver, f.rssi_dbm, f.frame));
        for released in router.push_frames(staged, now) {
            self.pending.extend(released.outputs);
        }
        Vec::new()
    }

    fn pump(&mut self, _now: SimTime) -> Vec<ServiceOutput> {
        let mut out = std::mem::take(&mut self.pending);
        if let Some(router) = self.router.as_mut() {
            while !router.is_quiescent() {
                let released = router.poll();
                if released.is_empty() {
                    std::thread::yield_now();
                }
                for r in released {
                    out.extend(r.outputs);
                }
            }
        }
        self.frames_since_quiescence = 0;
        out
    }

    fn register_subscriber(&mut self) -> SubscriberId {
        let id = SubscriberId::new(self.next_subscriber);
        self.next_subscriber += 1;
        id
    }

    fn subscribe(&mut self, subscriber: SubscriberId, filter: TopicFilter) -> bool {
        self.subscriptions.write().unwrap_or_else(|e| e.into_inner()).subscribe(subscriber, filter)
    }

    fn unsubscribe(&mut self, subscriber: SubscriberId, filter: TopicFilter) -> bool {
        self.subscriptions
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .unsubscribe(subscriber, filter)
    }

    fn unsubscribe_all(&mut self, subscriber: SubscriberId) -> usize {
        self.subscriptions.write().unwrap_or_else(|e| e.into_inner()).unsubscribe_all(subscriber)
    }

    fn would_deliver(&self, stream: StreamId) -> bool {
        !self.subscriptions.read().unwrap_or_else(|e| e.into_inner()).is_unclaimed(stream)
    }

    fn set_claimed(&mut self, stream: StreamId, claimed: bool) {
        match self.router.as_mut() {
            Some(r) => r.streams_mut().set_claimed(stream, claimed),
            None => {
                if let Some(parts) = self.retired.as_mut() {
                    parts.streams.set_claimed(stream, claimed);
                }
            }
        }
    }

    fn streams(&self) -> &ShardedStreamRegistry {
        match &self.router {
            Some(r) => r.streams(),
            None => &self.retired().streams,
        }
    }

    fn control(&self) -> &ControlGraph {
        match &self.router {
            Some(r) => r.control_graph().expect("hosted routers run control inline"),
            None => self.retired().control.as_ref().expect("hosted routers run control inline"),
        }
    }

    fn control_mut(&mut self) -> &mut ControlGraph {
        match self.router.as_mut() {
            Some(r) => r.control_graph_mut().expect("hosted routers run control inline"),
            None => self
                .retired
                .as_mut()
                .and_then(|p| p.control.as_mut())
                .expect("hosted routers run control inline"),
        }
    }

    fn filter_stats(&self) -> FilterStats {
        match &self.router {
            Some(r) => r.filter_stats(),
            None => self.retired().filter_stats,
        }
    }

    fn dispatch_stats(&self) -> DispatchStats {
        match &self.router {
            Some(r) => r.dispatch_stats(),
            None => self.retired().dispatch_stats.clone(),
        }
    }

    fn overload_totals(&self) -> OverloadTotals {
        let (offered, shed) = match &self.router {
            Some(r) => (r.offered_frame_count(), r.shed_frame_count()),
            None => {
                let report = &self.retired().report;
                (report.offered_frames, report.shed_frames)
            }
        };
        // The frame edge has no queue to coalesce against, so
        // CoalesceFrames degrades to Shed and `coalesced` stays 0.
        OverloadTotals { offered, shed, coalesced: 0, delivered: offered - shed }
    }

    fn peak_queue_depth(&self) -> u64 {
        self.peak_depth
    }

    fn queue_depth_p99(&self) -> u64 {
        self.depth_hist.p99()
    }

    fn shard_restart_count(&self) -> u64 {
        match &self.router {
            Some(r) => r.restart_count(),
            None => self.retired().report.shard_restarts,
        }
    }

    fn edge_class_submits(&self) -> [u64; 3] {
        match &self.router {
            Some(r) => r.class_submits(),
            None => [0; 3],
        }
    }

    fn pipeline_spans(&self) -> &PipelineSpans {
        match &self.router {
            Some(r) => r.pipeline_spans(),
            None => &self.retired().spans,
        }
    }

    fn queue_depth_gauges(&self) -> &QueueDepthGauges {
        match &self.router {
            Some(r) => r.queue_depth_gauges(),
            None => &self.retired().depths,
        }
    }

    fn set_telemetry_recording(&mut self, enabled: bool) {
        if let Some(r) = self.router.as_mut() {
            r.set_telemetry_recording(enabled);
        }
    }

    fn note_telemetry_quiescent(&mut self) {
        if let Some(r) = self.router.as_mut() {
            r.note_telemetry_quiescent();
        }
    }

    fn take_shard_failures(&mut self) -> Vec<ShardFailure> {
        match self.router.as_mut() {
            Some(r) => r.take_root_failures().into_iter().map(|f| f.failure).collect(),
            None => match self.retired.as_mut() {
                Some(parts) => std::mem::take(&mut parts.report.failures)
                    .into_iter()
                    .map(|f| f.failure)
                    .collect(),
                None => Vec::new(),
            },
        }
    }

    fn next_deadline(&self) -> Option<SimTime> {
        self.router.as_ref().and_then(ThreadedRouter::next_deadline)
    }

    fn configure_trace(&mut self, config: TraceConfig) {
        if let Some(r) = self.router.as_mut() {
            r.configure_trace(config);
        }
    }

    fn trace_snapshot(&self) -> TraceSnapshot {
        match &self.router {
            Some(r) => r.trace_snapshot(),
            None => self.retired().report.trace.clone(),
        }
    }

    fn trace_drain_to(&mut self, w: &mut dyn std::io::Write) -> std::io::Result<usize> {
        match self.router.as_mut() {
            Some(r) => r.trace_drain_to(w),
            None => {
                // The recorder died with the worker pools; drain the
                // snapshot the shutdown report kept instead.
                let Some(parts) = self.retired.as_mut() else { return Ok(0) };
                let mut written = 0;
                for rec in parts.report.trace.records.drain(..) {
                    writeln!(w, "{}", rec.jsonl_line())?;
                    written += 1;
                }
                Ok(written)
            }
        }
    }

    fn shutdown(&mut self, _now: SimTime) -> Vec<ServiceOutput> {
        let mut out = std::mem::take(&mut self.pending);
        if let Some(router) = self.router.take() {
            let mut parts = router.into_parts();
            for released in std::mem::take(&mut parts.report.outputs) {
                out.extend(released.outputs);
            }
            self.retired = Some(parts);
        }
        self.frames_since_quiescence = 0;
        out
    }
}

impl Drop for ThreadedDriver {
    /// Joins the worker pools if [`RouterDriver::shutdown`] was never
    /// called ([`ThreadedRouter::into_parts`] drains every in-flight
    /// root before joining, so nothing is lost and nothing deadlocks).
    fn drop(&mut self) {
        if let Some(router) = self.router.take() {
            let _ = router.into_parts();
        }
    }
}

impl std::fmt::Debug for ThreadedDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedDriver")
            .field("router", &self.router)
            .field("pending", &self.pending.len())
            .field("retired", &self.retired.is_some())
            .finish_non_exhaustive()
    }
}
