//! The Actuation Service: stamps, tracks and retries stream update
//! requests.
//!
//! "The Actuation Service next processes the request with timestamps, and
//! checksums, before forwarding to the message replicator" (§4.2). The
//! wireless downlink is as lossy as the uplink, so the service also owns
//! reliability: it allocates the [`RequestId`] used in sensor
//! acknowledgements (§4.3's piggy-backed ack field), watches for those
//! acks, and retransmits unacknowledged requests a bounded number of
//! times.

use std::collections::HashMap;

use garnet_simkit::{Histogram, SimDuration, SimTime};
use garnet_wire::{AckStatus, ActuationTarget, RequestId, SensorCommand, StreamUpdateRequest};

/// Actuation Service tuning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ActuationConfig {
    /// How long to wait for the first acknowledgement. Each
    /// retransmission doubles the wait (`ack_timeout * 2^attempt`), up
    /// to [`ActuationConfig::backoff_cap`], so a congested downlink is
    /// not hammered at a fixed cadence.
    pub ack_timeout: SimDuration,
    /// Retransmissions before giving up (0 = fire and forget).
    pub max_retries: u32,
    /// Upper bound on the per-attempt wait under exponential backoff.
    pub backoff_cap: SimDuration,
}

impl Default for ActuationConfig {
    fn default() -> Self {
        ActuationConfig {
            ack_timeout: SimDuration::from_secs(5),
            max_retries: 2,
            backoff_cap: SimDuration::from_secs(60),
        }
    }
}

/// Terminal outcome of a tracked request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestOutcome {
    /// A sensor acknowledged with the given status.
    Acknowledged(AckStatus),
    /// All retries elapsed without an acknowledgement.
    TimedOut,
}

/// The wait before attempt `attempt`'s acknowledgement deadline:
/// `ack_timeout * 2^attempt`, saturating at
/// [`ActuationConfig::backoff_cap`].
fn backoff_delay(config: &ActuationConfig, attempt: u32) -> SimDuration {
    let scaled = 1u64
        .checked_shl(attempt)
        .and_then(|factor| config.ack_timeout.checked_mul(factor))
        .unwrap_or(config.backoff_cap);
    scaled.min(config.backoff_cap)
}

#[derive(Debug)]
struct Pending {
    request: StreamUpdateRequest,
    submitted_at: SimTime,
    deadline: SimTime,
    retries_left: u32,
    /// Transmissions already made minus one: 0 after the initial send,
    /// bumped on every retransmission to widen the next wait.
    attempt: u32,
}

/// The Actuation Service.
///
/// # Example
///
/// ```
/// use garnet_core::actuation::{ActuationConfig, ActuationService};
/// use garnet_simkit::SimTime;
/// use garnet_wire::{AckStatus, ActuationTarget, SensorCommand, SensorId};
///
/// // Default tuning: 5 s to the first retransmission, then 10 s, then
/// // 20 s, … capped at 60 s per wait (exponential backoff).
/// let mut act = ActuationService::new(ActuationConfig::default());
/// let req = act.submit(
///     ActuationTarget::Sensor(SensorId::new(1)?),
///     SensorCommand::Ping,
///     0,
///     SimTime::ZERO,
/// );
/// assert_eq!(act.in_flight(), 1);
/// let outcome = act.on_ack(req.request_id, AckStatus::Applied, SimTime::from_millis(40));
/// assert!(outcome.is_some());
/// assert_eq!(act.in_flight(), 0);
/// # Ok::<(), garnet_wire::WireError>(())
/// ```
#[derive(Debug)]
pub struct ActuationService {
    config: ActuationConfig,
    next_id: RequestId,
    pending: HashMap<u32, Pending>,
    ack_latency_us: Histogram,
    submitted: u64,
    acknowledged: u64,
    timed_out: u64,
    retransmissions: u64,
}

impl ActuationService {
    /// Creates the service.
    pub fn new(config: ActuationConfig) -> Self {
        ActuationService {
            config,
            next_id: RequestId::new(1),
            pending: HashMap::new(),
            ack_latency_us: Histogram::new(),
            submitted: 0,
            acknowledged: 0,
            timed_out: 0,
            retransmissions: 0,
        }
    }

    /// Accepts an approved request: allocates its id, stamps the issue
    /// time, and returns the wire-ready request for the Message
    /// Replicator. The request is tracked until acknowledged or timed
    /// out.
    pub fn submit(
        &mut self,
        target: ActuationTarget,
        command: SensorCommand,
        priority: u8,
        now: SimTime,
    ) -> StreamUpdateRequest {
        let request_id = self.next_id;
        self.next_id = self.next_id.next();
        let request = StreamUpdateRequest {
            request_id,
            target,
            command,
            issued_at_us: now.as_micros(),
            priority,
        };
        self.pending.insert(
            request_id.as_u32(),
            Pending {
                request,
                submitted_at: now,
                deadline: now.saturating_add(backoff_delay(&self.config, 0)),
                retries_left: self.config.max_retries,
                attempt: 0,
            },
        );
        self.submitted += 1;
        request
    }

    /// Records an acknowledgement (from a piggy-backed data-message field
    /// or a standalone ack). Returns the outcome if the id was in
    /// flight; duplicate and unknown acks return `None`.
    pub fn on_ack(
        &mut self,
        request_id: RequestId,
        status: AckStatus,
        now: SimTime,
    ) -> Option<RequestOutcome> {
        let pending = self.pending.remove(&request_id.as_u32())?;
        self.acknowledged += 1;
        self.ack_latency_us.record(now.saturating_since(pending.submitted_at).as_micros());
        Some(RequestOutcome::Acknowledged(status))
    }

    /// Harvests due retransmissions and expirations at `now`. Returns
    /// requests to retransmit plus requests that finally timed out.
    pub fn on_tick(
        &mut self,
        now: SimTime,
    ) -> (Vec<StreamUpdateRequest>, Vec<StreamUpdateRequest>) {
        let mut retransmit = Vec::new();
        let mut expired = Vec::new();
        let due: Vec<u32> =
            self.pending.iter().filter(|(_, p)| p.deadline <= now).map(|(&id, _)| id).collect();
        for id in due {
            let p = self.pending.get_mut(&id).expect("listed above");
            if p.retries_left > 0 {
                p.retries_left -= 1;
                p.attempt += 1;
                let delay = backoff_delay(&self.config, p.attempt);
                p.deadline = now.saturating_add(delay);
                self.retransmissions += 1;
                retransmit.push(p.request);
            } else {
                let p = self.pending.remove(&id).expect("listed above");
                self.timed_out += 1;
                expired.push(p.request);
            }
        }
        // Deterministic order for downstream processing.
        retransmit.sort_by_key(|r| r.request_id.as_u32());
        expired.sort_by_key(|r| r.request_id.as_u32());
        (retransmit, expired)
    }

    /// The earliest pending deadline, for scheduling the next tick.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.pending.values().map(|p| p.deadline).min()
    }

    /// Requests currently awaiting acknowledgement.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Requests submitted so far.
    pub fn submitted_count(&self) -> u64 {
        self.submitted
    }

    /// Requests acknowledged.
    pub fn acknowledged_count(&self) -> u64 {
        self.acknowledged
    }

    /// Requests abandoned after retries.
    pub fn timeout_count(&self) -> u64 {
        self.timed_out
    }

    /// Retransmissions sent.
    pub fn retransmission_count(&self) -> u64 {
        self.retransmissions
    }

    /// Ack latency distribution (µs).
    pub fn ack_latency(&self) -> &Histogram {
        &self.ack_latency_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use garnet_wire::SensorId;

    fn svc() -> ActuationService {
        ActuationService::new(ActuationConfig {
            ack_timeout: SimDuration::from_secs(1),
            max_retries: 2,
            ..ActuationConfig::default()
        })
    }

    fn target() -> ActuationTarget {
        ActuationTarget::Sensor(SensorId::new(1).unwrap())
    }

    #[test]
    fn submit_stamps_and_allocates_unique_ids() {
        let mut a = svc();
        let r1 = a.submit(target(), SensorCommand::Ping, 0, SimTime::from_millis(5));
        let r2 = a.submit(target(), SensorCommand::Ping, 0, SimTime::from_millis(6));
        assert_ne!(r1.request_id, r2.request_id);
        assert_eq!(r1.issued_at_us, 5_000);
        assert_eq!(a.in_flight(), 2);
        assert_eq!(a.submitted_count(), 2);
    }

    #[test]
    fn ack_completes_and_records_latency() {
        let mut a = svc();
        let r = a.submit(target(), SensorCommand::Ping, 0, SimTime::ZERO);
        let out = a.on_ack(r.request_id, AckStatus::Applied, SimTime::from_millis(30));
        assert_eq!(out, Some(RequestOutcome::Acknowledged(AckStatus::Applied)));
        assert_eq!(a.in_flight(), 0);
        assert_eq!(a.acknowledged_count(), 1);
        assert_eq!(a.ack_latency().count(), 1);
        assert_eq!(a.ack_latency().max(), 30_000);
    }

    #[test]
    fn duplicate_ack_ignored() {
        let mut a = svc();
        let r = a.submit(target(), SensorCommand::Ping, 0, SimTime::ZERO);
        assert!(a.on_ack(r.request_id, AckStatus::Applied, SimTime::from_millis(1)).is_some());
        assert!(a.on_ack(r.request_id, AckStatus::Applied, SimTime::from_millis(2)).is_none());
        assert_eq!(a.acknowledged_count(), 1);
    }

    #[test]
    fn unknown_ack_ignored() {
        let mut a = svc();
        assert!(a.on_ack(RequestId::new(999), AckStatus::Applied, SimTime::ZERO).is_none());
    }

    #[test]
    fn retransmit_then_expire_with_exponential_backoff() {
        let mut a = svc();
        let r = a.submit(target(), SensorCommand::Ping, 0, SimTime::ZERO);
        // First deadline at 1 s (timeout * 2^0): retry 1, next wait 2 s.
        let (retry, dead) = a.on_tick(SimTime::from_secs(1));
        assert_eq!(retry.len(), 1);
        assert_eq!(retry[0].request_id, r.request_id);
        assert!(dead.is_empty());
        assert_eq!(a.next_deadline(), Some(SimTime::from_secs(3)));
        // Not due before the widened deadline.
        let (retry, dead) = a.on_tick(SimTime::from_secs(2));
        assert!(retry.is_empty() && dead.is_empty());
        // Second deadline at 3 s: retry 2, next wait 4 s.
        let (retry, dead) = a.on_tick(SimTime::from_secs(3));
        assert_eq!(retry.len(), 1);
        assert!(dead.is_empty());
        assert_eq!(a.next_deadline(), Some(SimTime::from_secs(7)));
        // Third deadline at 7 s: out of retries.
        let (retry, dead) = a.on_tick(SimTime::from_secs(7));
        assert!(retry.is_empty());
        assert_eq!(dead.len(), 1);
        assert_eq!(a.timeout_count(), 1);
        assert_eq!(a.retransmission_count(), 2);
        assert_eq!(a.in_flight(), 0);
    }

    #[test]
    fn backoff_saturates_at_the_cap() {
        let mut a = ActuationService::new(ActuationConfig {
            ack_timeout: SimDuration::from_secs(1),
            max_retries: 4,
            backoff_cap: SimDuration::from_secs(3),
        });
        a.submit(target(), SensorCommand::Ping, 0, SimTime::ZERO);
        // Waits: 1 s, 2 s, then pinned at the 3 s cap.
        for (tick, next) in [(1, 3), (3, 6), (6, 9), (9, 12)] {
            let (retry, dead) = a.on_tick(SimTime::from_secs(tick));
            assert_eq!(retry.len(), 1, "tick at {tick} s should retransmit");
            assert!(dead.is_empty());
            assert_eq!(a.next_deadline(), Some(SimTime::from_secs(next)));
        }
        let (retry, dead) = a.on_tick(SimTime::from_secs(12));
        assert!(retry.is_empty());
        assert_eq!(dead.len(), 1);
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow_the_backoff() {
        let mut a = ActuationService::new(ActuationConfig {
            ack_timeout: SimDuration::from_secs(1),
            max_retries: 200,
            backoff_cap: SimDuration::from_secs(3),
        });
        a.submit(target(), SensorCommand::Ping, 0, SimTime::ZERO);
        let mut now = SimTime::ZERO;
        for _ in 0..150 {
            now = a.next_deadline().expect("still pending");
            let (retry, dead) = a.on_tick(now);
            assert_eq!(retry.len(), 1);
            assert!(dead.is_empty());
        }
        // Attempt 150 would shift 1 << 150 without the checked math;
        // the wait just sits at the cap instead.
        assert_eq!(a.next_deadline(), Some(now.saturating_add(SimDuration::from_secs(3))));
    }

    #[test]
    fn ack_after_retransmission_still_counts() {
        let mut a = svc();
        let r = a.submit(target(), SensorCommand::Ping, 0, SimTime::ZERO);
        let _ = a.on_tick(SimTime::from_secs(1)); // one retry goes out
        let out = a.on_ack(r.request_id, AckStatus::Deferred, SimTime::from_millis(1500));
        assert_eq!(out, Some(RequestOutcome::Acknowledged(AckStatus::Deferred)));
        let (retry, dead) = a.on_tick(SimTime::from_secs(10));
        assert!(retry.is_empty() && dead.is_empty());
    }

    #[test]
    fn next_deadline_tracks_earliest() {
        let mut a = svc();
        assert_eq!(a.next_deadline(), None);
        a.submit(target(), SensorCommand::Ping, 0, SimTime::ZERO);
        a.submit(target(), SensorCommand::Ping, 0, SimTime::from_millis(500));
        assert_eq!(a.next_deadline(), Some(SimTime::from_secs(1)));
    }

    #[test]
    fn fire_and_forget_mode() {
        let mut a = ActuationService::new(ActuationConfig {
            ack_timeout: SimDuration::from_secs(1),
            max_retries: 0,
            ..ActuationConfig::default()
        });
        a.submit(target(), SensorCommand::Ping, 0, SimTime::ZERO);
        let (retry, dead) = a.on_tick(SimTime::from_secs(1));
        assert!(retry.is_empty());
        assert_eq!(dead.len(), 1);
    }

    #[test]
    fn tick_output_is_sorted_by_request_id() {
        let mut a = svc();
        for _ in 0..10 {
            a.submit(target(), SensorCommand::Ping, 0, SimTime::ZERO);
        }
        let (retry, _) = a.on_tick(SimTime::from_secs(1));
        let ids: Vec<u32> = retry.iter().map(|r| r.request_id.as_u32()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }
}
