//! `garnetctl` — inspect a Garnet node's telemetry sink from the
//! command line.
//!
//! ```text
//! garnetctl dump   <sink-dir>          full rate tables, every window
//! garnetctl tail   <sink-dir> [-n N]   last N windows, one line each
//! garnetctl health <sink-dir>          latest verdict; exit code 0/1/2
//! garnetctl trace  <drain.jsonl>       per-stage roll-up of a trace drain
//! ```
//!
//! `health`'s exit code is the severity (0 healthy, 1 degraded,
//! 2 critical), so scripts can gate on it directly.

use std::path::Path;
use std::process::ExitCode;

use garnet_ctl::{
    health_severity, load_sink, render_health, render_rates, render_tail_line, render_trace_rollup,
};

const USAGE: &str = "usage: garnetctl <dump|tail|health|trace> <path> [-n N]";

fn fail(message: &str) -> ExitCode {
    eprintln!("garnetctl: {message}");
    ExitCode::from(64)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return fail(USAGE);
    };
    let Some(path) = args.get(1) else {
        return fail(USAGE);
    };
    let path = Path::new(path);
    match command.as_str() {
        "dump" => match load_sink(path) {
            Ok(snaps) if snaps.is_empty() => fail("no telemetry windows in sink"),
            Ok(snaps) => {
                for snap in &snaps {
                    print!("{}", render_rates(snap));
                }
                ExitCode::SUCCESS
            }
            Err(e) => fail(&e),
        },
        "tail" => {
            let n = match parse_tail_count(&args[2..]) {
                Ok(n) => n,
                Err(e) => return fail(&e),
            };
            match load_sink(path) {
                Ok(snaps) => {
                    let skip = snaps.len().saturating_sub(n);
                    for snap in &snaps[skip..] {
                        println!("{}", render_tail_line(snap));
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => fail(&e),
            }
        }
        "health" => match load_sink(path) {
            Ok(snaps) => match snaps.last() {
                Some(snap) => {
                    print!("{}", render_health(snap));
                    ExitCode::from(health_severity(snap) as u8)
                }
                None => fail("no telemetry windows in sink"),
            },
            Err(e) => fail(&e),
        },
        "trace" => match std::fs::read_to_string(path) {
            Ok(text) => match render_trace_rollup(&text) {
                Ok(table) => {
                    print!("{table}");
                    ExitCode::SUCCESS
                }
                Err(e) => fail(&e),
            },
            Err(e) => fail(&format!("read {}: {e}", path.display())),
        },
        other => fail(&format!("unknown command {other:?}\n{USAGE}")),
    }
}

fn parse_tail_count(rest: &[String]) -> Result<usize, String> {
    match rest {
        [] => Ok(10),
        [flag, n] if flag == "-n" => {
            n.parse::<usize>().map_err(|_| format!("invalid -n value {n:?}"))
        }
        _ => Err(USAGE.to_owned()),
    }
}
