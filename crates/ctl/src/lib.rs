//! `garnetctl`: operator-side inspector for the Garnet telemetry plane.
//!
//! A Garnet node with [`TelemetryConfig::sink_dir`] set exports one
//! JSONL line per telemetry window into a rotating
//! `telemetry-NNNNNN.jsonl` series (see `garnet_core::telemetry`). This
//! crate is the other half of that contract: it parses the sink back
//! into [`Snapshot`] values and renders operator views — rate tables
//! (`dump`), a compact per-window log (`tail`), the latest health
//! verdict (`health`, with the state as the exit code), and per-stage
//! roll-ups of a flight-recorder drain (`trace`).
//!
//! The parser is a minimal recursive-descent JSON reader. The sink
//! serialiser is hand-rolled on the node side (no JSON dependency in
//! the data path) and this crate mirrors that choice so the inspector
//! stays dependency-free too; it accepts any JSON, not just the exact
//! byte shapes the node emits.
//!
//! [`TelemetryConfig::sink_dir`]: ../garnet_core/telemetry/struct.TelemetryConfig.html

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A parsed JSON value. Integers that fit `u64` are kept exact
/// ([`Json::Int`]) — telemetry counters are `u64` and must not round
/// through `f64`.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64`, kept exact.
    Int(u64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` (exact integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one JSON document, rejecting trailing garbage.
///
/// # Errors
///
/// A message naming the byte offset and what went wrong.
pub fn parse_json(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() {
        return Err(format!("expected a value at byte {start}"));
    }
    if !text.contains(['.', 'e', 'E', '-']) {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::Int(v));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_owned())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_owned())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance over one UTF-8 scalar, not one byte.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected a key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

/// Histogram quantile summary as exported in a snapshot line.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistSummary {
    /// Recorded samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

/// Gauge watermark summary as exported in a snapshot line.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GaugeSummary {
    /// Most recent level.
    pub last: u64,
    /// Lowest level observed.
    pub min: u64,
    /// Highest level observed.
    pub max: u64,
    /// Recordings folded in.
    pub samples: u64,
}

/// One telemetry window parsed back from its JSONL line.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Monotonic snapshot number.
    pub seq: u64,
    /// Window start (µs of sim time).
    pub window_start_us: u64,
    /// Window end (µs of sim time).
    pub window_end_us: u64,
    /// `healthy` / `degraded` / `critical`.
    pub health: String,
    /// Scoring reasons (empty when healthy).
    pub reasons: Vec<String>,
    /// Dispatch match-cache hit rate, parts per million.
    pub match_cache_hit_ppm: u64,
    /// Cumulative counters.
    pub counters: BTreeMap<String, u64>,
    /// This window's counter increments.
    pub deltas: BTreeMap<String, u64>,
    /// Histogram summaries.
    pub histograms: BTreeMap<String, HistSummary>,
    /// Gauge summaries.
    pub gauges: BTreeMap<String, GaugeSummary>,
}

impl Snapshot {
    /// Parses one sink line.
    ///
    /// # Errors
    ///
    /// Invalid JSON or a line without the snapshot's required fields.
    pub fn parse(line: &str) -> Result<Snapshot, String> {
        let v = parse_json(line)?;
        let u = |key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing numeric field {key:?}"))
        };
        let mut snap = Snapshot {
            seq: u("seq")?,
            window_start_us: u("window_start_us")?,
            window_end_us: u("window_end_us")?,
            health: v
                .get("health")
                .and_then(Json::as_str)
                .ok_or("missing field \"health\"")?
                .to_owned(),
            match_cache_hit_ppm: u("match_cache_hit_ppm")?,
            ..Snapshot::default()
        };
        if let Some(Json::Arr(reasons)) = v.get("reasons") {
            snap.reasons = reasons.iter().filter_map(Json::as_str).map(str::to_owned).collect();
        }
        for (target, key) in [(&mut snap.counters, "counters"), (&mut snap.deltas, "deltas")] {
            if let Some(Json::Obj(members)) = v.get(key) {
                for (name, value) in members {
                    if let Some(value) = value.as_u64() {
                        target.insert(name.clone(), value);
                    }
                }
            }
        }
        if let Some(Json::Obj(members)) = v.get("histograms") {
            for (name, h) in members {
                let g = |key: &str| h.get(key).and_then(Json::as_u64).unwrap_or(0);
                snap.histograms.insert(
                    name.clone(),
                    HistSummary {
                        count: g("count"),
                        mean: h.get("mean").and_then(Json::as_f64).unwrap_or(0.0),
                        p50: g("p50"),
                        p90: g("p90"),
                        p99: g("p99"),
                        min: g("min"),
                        max: g("max"),
                    },
                );
            }
        }
        if let Some(Json::Obj(members)) = v.get("gauges") {
            for (name, g) in members {
                let f = |key: &str| g.get(key).and_then(Json::as_u64).unwrap_or(0);
                snap.gauges.insert(
                    name.clone(),
                    GaugeSummary {
                        last: f("last"),
                        min: f("min"),
                        max: f("max"),
                        samples: f("samples"),
                    },
                );
            }
        }
        Ok(snap)
    }

    /// The window length in seconds.
    pub fn window_secs(&self) -> f64 {
        (self.window_end_us.saturating_sub(self.window_start_us)) as f64 / 1e6
    }

    /// This window's rate for counter `name`, per sim-second.
    pub fn rate_per_sec(&self, name: &str) -> f64 {
        let secs = self.window_secs();
        if secs <= 0.0 {
            return 0.0;
        }
        self.deltas.get(name).copied().unwrap_or(0) as f64 / secs
    }

    /// Numeric severity: 0 healthy, 1 degraded, 2 critical (unknown
    /// labels score critical — an operator tool must not underreport).
    pub fn severity(&self) -> i32 {
        match self.health.as_str() {
            "healthy" => 0,
            "degraded" => 1,
            _ => 2,
        }
    }
}

/// The sink files of `dir` in emission order (`telemetry-*.jsonl`,
/// ascending index).
///
/// # Errors
///
/// Directory I/O failure.
pub fn sink_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("read {}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("telemetry-") && n.ends_with(".jsonl"))
        })
        .collect();
    files.sort();
    Ok(files)
}

/// Every snapshot in the sink directory, in emission order. Unparsable
/// lines abort with their file and line number — a telemetry sink is
/// machine-written, so damage means truncation worth surfacing, not
/// noise worth skipping.
///
/// # Errors
///
/// Directory or file I/O failure, or a corrupt line.
pub fn load_sink(dir: &Path) -> Result<Vec<Snapshot>, String> {
    let mut snapshots = Vec::new();
    for path in sink_files(dir)? {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let snap =
                Snapshot::parse(line).map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?;
            snapshots.push(snap);
        }
    }
    Ok(snapshots)
}

/// Left-pads `s` to `width`.
fn pad(s: &str, width: usize) -> String {
    format!("{s:>width$}")
}

/// The rate table for one window: every counter that moved, its delta
/// and its per-second rate, plus latency quantiles and depth
/// watermarks.
pub fn render_rates(snap: &Snapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "window #{} [{} .. {}] {:.3}s  health={}",
        snap.seq,
        snap.window_start_us,
        snap.window_end_us,
        snap.window_secs(),
        snap.health
    );
    for reason in &snap.reasons {
        let _ = writeln!(out, "  ! {reason}");
    }
    let _ = writeln!(out, "  match_cache_hit_ppm={}", snap.match_cache_hit_ppm);
    let _ = writeln!(out, "  {} {} {}", pad("counter", 36), pad("delta", 12), pad("rate/s", 12));
    for (name, delta) in &snap.deltas {
        if *delta == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "  {} {} {}",
            pad(name, 36),
            pad(&delta.to_string(), 12),
            pad(&format!("{:.1}", snap.rate_per_sec(name)), 12)
        );
    }
    if !snap.histograms.is_empty() {
        let _ = writeln!(
            out,
            "  {} {} {} {} {} {}",
            pad("histogram", 36),
            pad("count", 10),
            pad("p50", 8),
            pad("p90", 8),
            pad("p99", 8),
            pad("max", 8)
        );
        for (name, h) in &snap.histograms {
            let _ = writeln!(
                out,
                "  {} {} {} {} {} {}",
                pad(name, 36),
                pad(&h.count.to_string(), 10),
                pad(&h.p50.to_string(), 8),
                pad(&h.p90.to_string(), 8),
                pad(&h.p99.to_string(), 8),
                pad(&h.max.to_string(), 8)
            );
        }
    }
    if !snap.gauges.is_empty() {
        let _ = writeln!(
            out,
            "  {} {} {} {} {}",
            pad("gauge", 36),
            pad("last", 10),
            pad("min", 8),
            pad("max", 8),
            pad("samples", 10)
        );
        for (name, g) in &snap.gauges {
            let _ = writeln!(
                out,
                "  {} {} {} {} {}",
                pad(name, 36),
                pad(&g.last.to_string(), 10),
                pad(&g.min.to_string(), 8),
                pad(&g.max.to_string(), 8),
                pad(&g.samples.to_string(), 10)
            );
        }
    }
    out
}

/// One compact line per window (for `tail`).
pub fn render_tail_line(snap: &Snapshot) -> String {
    let offered = snap.deltas.get("overload.offered").copied().unwrap_or(0);
    let shed = snap.deltas.get("overload.shed").copied().unwrap_or(0);
    let p99 = snap.histograms.get("pipeline.e2e_latency_us").map_or(0, |h| h.p99);
    format!(
        "#{seq:<5} end={end:<12} {health:<8} offered={offered:<8} shed={shed:<6} e2e_p99_us={p99}",
        seq = snap.seq,
        end = snap.window_end_us,
        health = snap.health,
    )
}

/// QoS priority classes as named in the node's `qos.*` counter rows,
/// highest priority first (mirrors `garnet_core::qos::PriorityClass`).
pub const QOS_CLASSES: [&str; 3] = ["control", "actuation", "data"];

/// Classes that were offered events this window but delivered none —
/// computed from the per-class `qos.<class>.{offered,delivered}`
/// deltas, independently of the node's own verdict, so the inspector
/// still flags starvation on a sink whose scorer predates the rule.
pub fn starved_classes(snap: &Snapshot) -> Vec<String> {
    let delta = |name: String| snap.deltas.get(&name).copied().unwrap_or(0);
    QOS_CLASSES
        .iter()
        .filter_map(|class| {
            let offered = delta(format!("qos.{class}.offered"));
            let delivered = delta(format!("qos.{class}.delivered"));
            (offered > 0 && delivered == 0)
                .then(|| format!("{class} ({offered} offered, 0 delivered)"))
        })
        .collect()
}

/// Exit severity for the `health` subcommand: the node's own verdict,
/// escalated to critical when the window shows a starved QoS class the
/// node did not score.
pub fn health_severity(snap: &Snapshot) -> i32 {
    if starved_classes(snap).is_empty() {
        snap.severity()
    } else {
        2
    }
}

/// The health view over the latest window (for `health`).
pub fn render_health(snap: &Snapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "health: {}", snap.health);
    let _ = writeln!(out, "window: #{} ending at {}us", snap.seq, snap.window_end_us);
    for reason in &snap.reasons {
        let _ = writeln!(out, "reason: {reason}");
    }
    let delta = |name: String| snap.deltas.get(&name).copied().unwrap_or(0);
    if QOS_CLASSES.iter().any(|class| delta(format!("qos.{class}.offered")) > 0) {
        for class in QOS_CLASSES {
            let _ = writeln!(
                out,
                "qos.{class}: offered={} shed={} coalesced={} delivered={}",
                delta(format!("qos.{class}.offered")),
                delta(format!("qos.{class}.shed")),
                delta(format!("qos.{class}.coalesced")),
                delta(format!("qos.{class}.delivered")),
            );
        }
    }
    for starved in starved_classes(snap) {
        let _ = writeln!(out, "starved class: {starved}");
    }
    out
}

/// Per-stage roll-up of a flight-recorder drain (`trace` subcommand):
/// hop counts per stage/kind/outcome triple, in first-seen order.
///
/// # Errors
///
/// A corrupt (non-JSON) line, with its line number.
pub fn render_trace_rollup(jsonl: &str) -> Result<String, String> {
    let mut order: Vec<(String, String, String)> = Vec::new();
    let mut hops: BTreeMap<(String, String, String), u64> = BTreeMap::new();
    let mut total = 0u64;
    for (i, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse_json(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let field = |key: &str| v.get(key).and_then(Json::as_str).unwrap_or("?").to_owned();
        let key = (field("stage"), field("kind"), field("outcome"));
        if !hops.contains_key(&key) {
            order.push(key.clone());
        }
        *hops.entry(key).or_insert(0) += 1;
        total += 1;
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} {} {} {}",
        pad("stage", 12),
        pad("kind", 10),
        pad("outcome", 10),
        pad("hops", 10)
    );
    for key in &order {
        let _ = writeln!(
            out,
            "{} {} {} {}",
            pad(&key.0, 12),
            pad(&key.1, 10),
            pad(&key.2, 10),
            pad(&hops[key].to_string(), 10)
        );
    }
    let _ = writeln!(out, "total hops: {total}");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: &str = r#"{"seq":3,"window_start_us":1000,"window_end_us":3000,"health":"degraded","reasons":["shed ratio 2000ppm >= 1000ppm"],"match_cache_hit_ppm":500000,"counters":{"overload.offered":100,"telemetry.windows":3},"deltas":{"overload.offered":40,"overload.shed":2},"histograms":{"pipeline.e2e_latency_us":{"count":40,"mean":12.500,"p50":12,"p90":14,"p99":15,"min":10,"max":15}},"gauges":{"overload.queue_depth":{"last":4,"min":1,"max":9,"samples":40}}}"#;

    #[test]
    fn parses_a_snapshot_line() {
        let snap = Snapshot::parse(LINE).unwrap();
        assert_eq!(snap.seq, 3);
        assert_eq!(snap.health, "degraded");
        assert_eq!(snap.severity(), 1);
        assert_eq!(snap.reasons.len(), 1);
        assert_eq!(snap.counters["overload.offered"], 100);
        assert_eq!(snap.deltas["overload.shed"], 2);
        let h = &snap.histograms["pipeline.e2e_latency_us"];
        assert_eq!((h.count, h.p50, h.p99, h.max), (40, 12, 15, 15));
        assert!((h.mean - 12.5).abs() < 1e-9);
        let g = snap.gauges["overload.queue_depth"];
        assert_eq!((g.last, g.min, g.max, g.samples), (4, 1, 9, 40));
        // 40 offered over the 2ms window → 20k/s.
        assert!((snap.rate_per_sec("overload.offered") - 20_000.0).abs() < 1e-6);
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let v = parse_json(r#"{"a":[1,2.5,"x\ny",{"b":null,"c":true}],"d":"A"}"#).unwrap();
        assert_eq!(v.get("d").and_then(Json::as_str), Some("A"));
        let Some(Json::Arr(items)) = v.get("a") else { panic!("array") };
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_f64(), Some(2.5));
        assert_eq!(items[2].as_str(), Some("x\ny"));
        assert_eq!(items[3].get("b"), Some(&Json::Null));
        assert!(parse_json("{\"a\":1}garbage").is_err());
        assert!(parse_json("{\"a\":").is_err());
    }

    #[test]
    fn rate_table_lists_moved_counters_only() {
        let snap = Snapshot::parse(LINE).unwrap();
        let table = render_rates(&snap);
        assert!(table.contains("overload.offered"));
        assert!(table.contains("health=degraded"));
        assert!(table.contains("shed ratio"));
        // telemetry.windows moved 0 this window (absent from deltas).
        assert!(!table.contains("telemetry.windows"));
    }

    #[test]
    fn tail_and_health_views_render() {
        let snap = Snapshot::parse(LINE).unwrap();
        let line = render_tail_line(&snap);
        assert!(line.contains("#3"));
        assert!(line.contains("degraded"));
        assert!(line.contains("e2e_p99_us=15"));
        let health = render_health(&snap);
        assert!(health.starts_with("health: degraded"));
    }

    #[test]
    fn health_view_flags_a_starved_qos_class() {
        // A sink line whose node-side scorer missed the starvation:
        // health says healthy, but the deltas show a data class that
        // was offered frames and delivered none.
        let line = LINE
            .replacen("\"health\":\"degraded\"", "\"health\":\"healthy\"", 1)
            .replacen("\"reasons\":[\"shed ratio 2000ppm >= 1000ppm\"]", "\"reasons\":[]", 1)
            .replacen(
                "\"deltas\":{",
                "\"deltas\":{\"qos.control.offered\":5,\"qos.control.delivered\":5,\
                 \"qos.data.offered\":9,\"qos.data.delivered\":0,",
                1,
            );
        let snap = Snapshot::parse(&line).unwrap();
        assert_eq!(snap.severity(), 0);
        assert_eq!(starved_classes(&snap), ["data (9 offered, 0 delivered)"]);
        assert_eq!(health_severity(&snap), 2, "starvation escalates the exit code");
        let view = render_health(&snap);
        assert!(view.contains("starved class: data (9 offered, 0 delivered)"));
        assert!(view.contains("qos.control: offered=5 shed=0 coalesced=0 delivered=5"));
        // A window with no qos rows renders no qos table and no flags.
        let plain = Snapshot::parse(LINE).unwrap();
        assert!(starved_classes(&plain).is_empty());
        assert_eq!(health_severity(&plain), 1);
        assert!(!render_health(&plain).contains("qos."));
    }

    #[test]
    fn sink_loads_in_rotation_order() {
        let dir = std::env::temp_dir().join(format!("garnetctl-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let line = |seq: u64| LINE.replacen("\"seq\":3", &format!("\"seq\":{seq}"), 1);
        std::fs::write(dir.join("telemetry-000000.jsonl"), format!("{}\n{}\n", line(1), line(2)))
            .unwrap();
        std::fs::write(dir.join("telemetry-000001.jsonl"), format!("{}\n", line(3))).unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let snaps = load_sink(&dir).unwrap();
        assert_eq!(snaps.iter().map(|s| s.seq).collect::<Vec<_>>(), vec![1, 2, 3]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trace_rollup_counts_stage_hops() {
        let jsonl = concat!(
            "{\"at_us\":1,\"stage\":\"ingest\",\"kind\":\"frame\",\"outcome\":\"ok\",\"age_us\":0}\n",
            "{\"at_us\":2,\"stage\":\"ingest\",\"kind\":\"frame\",\"outcome\":\"ok\",\"age_us\":1}\n",
            "{\"at_us\":3,\"stage\":\"dispatch\",\"kind\":\"deliver\",\"outcome\":\"ok\",\"age_us\":2}\n",
        );
        let table = render_trace_rollup(jsonl).unwrap();
        assert!(table.contains("total hops: 3"));
        assert!(table.contains("ingest"));
        assert!(table.contains("dispatch"));
        assert!(render_trace_rollup("not json\n").is_err());
    }
}
