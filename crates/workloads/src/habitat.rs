//! Habitat-monitoring scenario: a grid of simple sensors on a study
//! plot.
//!
//! Modelled on the Great Duck Island-style deployment of Mainwaring et
//! al. (the paper's §7 comparison): dozens of low-power, transmit-only
//! nodes report microclimate readings at a slow fixed cadence; a small
//! number of gateway receivers ring the plot. This is the *degenerate*
//! scenario of §5 ("specific, degenerate scenarios, where some subset of
//! the overall functionality was provided") — no actuation path is
//! exercised, which makes it the clean substrate for throughput and
//! filtering experiments.

use garnet_core::middleware::GarnetConfig;
use garnet_core::pipeline::{PipelineConfig, PipelineSim};
use garnet_radio::field::{Diurnal, DynField};
use garnet_radio::geometry::Point;
use garnet_radio::{
    Medium, Propagation, Receiver, SensorCaps, SensorNode, StreamConfig, Transmitter,
};
use garnet_simkit::SimDuration;
use garnet_wire::{SensorId, StreamIndex};

/// Parameters of a habitat deployment.
#[derive(Clone, Debug)]
pub struct HabitatScenario {
    /// Sensors per grid side (total = side²).
    pub grid_side: usize,
    /// Metres between adjacent sensors.
    pub spacing_m: f64,
    /// Reporting interval per sensor.
    pub report_interval: SimDuration,
    /// Receivers per grid side (overlaid coarser grid).
    pub receiver_side: usize,
    /// Receiver listening range.
    pub receiver_range_m: f64,
    /// Physical-layer seed.
    pub seed: u64,
}

impl Default for HabitatScenario {
    fn default() -> Self {
        HabitatScenario {
            grid_side: 6,
            spacing_m: 20.0,
            report_interval: SimDuration::from_secs(30),
            receiver_side: 3,
            receiver_range_m: 120.0,
            seed: 0xDA7A,
        }
    }
}

impl HabitatScenario {
    /// Total sensor count.
    pub fn sensor_count(&self) -> usize {
        self.grid_side * self.grid_side
    }

    /// The diurnal temperature field over the plot.
    pub fn field(&self) -> DynField {
        Box::new(Diurnal { mean: 12.0, amplitude: 8.0, period_s: 86_400.0, gx: 0.01 })
    }

    /// Builds the sensor population (simple, transmit-only nodes).
    pub fn sensors(&self) -> Vec<SensorNode> {
        let mut out = Vec::with_capacity(self.sensor_count());
        let mut id = 1u32;
        for j in 0..self.grid_side {
            for i in 0..self.grid_side {
                out.push(
                    SensorNode::new(
                        SensorId::new(id).expect("habitat ids stay small"),
                        Point::new(i as f64 * self.spacing_m, j as f64 * self.spacing_m),
                    )
                    .with_caps(SensorCaps::simple())
                    .with_stream(StreamIndex::new(0), StreamConfig::every(self.report_interval)),
                );
                id += 1;
            }
        }
        out
    }

    /// Builds the receiver ring (a coarser overlaid grid).
    pub fn receivers(&self) -> Vec<Receiver> {
        let extent = (self.grid_side.saturating_sub(1)) as f64 * self.spacing_m;
        let spacing = if self.receiver_side > 1 {
            extent / (self.receiver_side - 1) as f64
        } else {
            extent.max(1.0)
        };
        Receiver::grid(
            Point::ORIGIN,
            self.receiver_side,
            self.receiver_side,
            spacing,
            self.receiver_range_m,
        )
    }

    /// Assembles a ready-to-run pipeline (no transmitters: the scenario
    /// is uplink-only, like the real deployment).
    pub fn build(&self) -> PipelineSim {
        let receivers = self.receivers();
        let config = PipelineConfig {
            seed: self.seed,
            medium: Medium::ideal(Propagation::UnitDisk { range_m: self.receiver_range_m }),
            garnet: GarnetConfig {
                receivers,
                transmitters: Vec::<Transmitter>::new(),
                ..GarnetConfig::default()
            },
            peer_range_m: None,
        };
        let mut sim = PipelineSim::new(config, self.field());
        for s in self.sensors() {
            sim.add_sensor(s);
        }
        sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use garnet_core::pipeline::SharedCountConsumer;
    use garnet_net::TopicFilter;
    use garnet_simkit::SimTime;
    use std::sync::atomic::Ordering;

    #[test]
    fn default_scenario_has_expected_shape() {
        let s = HabitatScenario::default();
        assert_eq!(s.sensor_count(), 36);
        assert_eq!(s.sensors().len(), 36);
        assert_eq!(s.receivers().len(), 9);
        // All sensors are simple (transmit-only).
        assert!(s.sensors().iter().all(|n| !n.caps().receive_capable));
    }

    #[test]
    fn sensors_have_unique_ids_and_grid_positions() {
        let s = HabitatScenario { grid_side: 3, ..HabitatScenario::default() };
        let sensors = s.sensors();
        let mut ids: Vec<u32> = sensors.iter().map(|n| n.id().as_u32()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 9);
        assert_eq!(sensors[8].position(SimTime::ZERO), Point::new(40.0, 40.0));
    }

    #[test]
    fn pipeline_delivers_habitat_data() {
        let scenario = HabitatScenario {
            grid_side: 3,
            report_interval: SimDuration::from_secs(5),
            ..HabitatScenario::default()
        };
        let mut sim = scenario.build();
        let token = sim.garnet_mut().issue_default_token("ecologist");
        let (consumer, count) = SharedCountConsumer::new("ecologist");
        let id = sim.garnet_mut().register_consumer(Box::new(consumer), &token, 0).unwrap();
        sim.garnet_mut().subscribe(id, TopicFilter::All, &token).unwrap();
        sim.run_until(SimTime::from_secs(60));
        // 9 sensors × (one report every 5s over 60s) ≈ 9 × 13 (incl. t=0).
        let delivered = count.load(Ordering::Relaxed);
        assert!(delivered >= 9 * 12, "delivered={delivered}");
        // Unit-disk coverage with overlap: duplicates happened and were
        // removed.
        assert!(sim.garnet().filtering().duplicate_count() > 0);
    }
}
