//! Synthetic message traffic for microbenchmarks.
//!
//! The codec, filtering and dispatch experiments need controlled streams
//! of wire messages with known rates, payload sizes and disturbance
//! patterns (duplication, reordering, corruption) — without paying for a
//! full radio simulation. [`TrafficGen`] produces them deterministically
//! from a seed.

use bytes::Bytes;
use garnet_simkit::{SimDuration, SimRng, SimTime};
use garnet_wire::{DataMessage, SensorId, SequenceNumber, StreamId, StreamIndex};

/// A generated frame with its arrival time and source receiver tag.
#[derive(Clone, Debug)]
pub struct ArrivingFrame {
    /// When the frame reaches the fixed network.
    pub at: SimTime,
    /// Which receiver heard it (for filtering/location experiments).
    pub receiver: u32,
    /// Encoded bytes.
    pub frame: Bytes,
}

/// Deterministic traffic generator.
#[derive(Debug)]
pub struct TrafficGen {
    rng: SimRng,
}

impl TrafficGen {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TrafficGen { rng: SimRng::seed(seed) }
    }

    /// A stream id for sensor `sensor`, stream 0.
    pub fn stream(sensor: u32) -> StreamId {
        StreamId::new(
            SensorId::new(sensor).expect("bench sensor ids are small"),
            StreamIndex::new(0),
        )
    }

    /// Builds one data message.
    pub fn message(stream: StreamId, seq: u16, payload_len: usize) -> DataMessage {
        DataMessage::builder(stream)
            .seq(SequenceNumber::new(seq))
            .payload(vec![0xA5u8; payload_len])
            .build()
            .expect("payload within wire limits")
    }

    /// Poisson arrival schedule at `rate_hz` over `horizon`.
    pub fn poisson_schedule(&mut self, rate_hz: f64, horizon: SimTime) -> Vec<SimTime> {
        assert!(rate_hz > 0.0, "rate must be positive");
        let mean_gap = 1.0 / rate_hz;
        let mut out = Vec::new();
        let mut t = 0.0f64;
        loop {
            t += self.rng.exponential(mean_gap);
            let at = SimTime::from_micros((t * 1e6) as u64);
            if at > horizon {
                break;
            }
            out.push(at);
        }
        out
    }

    /// An in-order burst of `n` encoded frames on one stream, arriving
    /// every `gap`, each heard by `copies` overlapping receivers
    /// (duplication), with probability `reorder_prob` of each adjacent
    /// pair swapping.
    pub fn burst(
        &mut self,
        sensor: u32,
        n: u16,
        payload_len: usize,
        gap: SimDuration,
        copies: u32,
        reorder_prob: f64,
    ) -> Vec<ArrivingFrame> {
        let stream = Self::stream(sensor);
        let mut frames: Vec<ArrivingFrame> = Vec::with_capacity(n as usize * copies as usize);
        for seq in 0..n {
            let bytes = Bytes::from(Self::message(stream, seq, payload_len).encode_to_vec());
            let base = SimTime::ZERO + gap * u64::from(seq);
            for c in 0..copies {
                frames.push(ArrivingFrame {
                    at: base.saturating_add(SimDuration::from_micros(u64::from(c) * 10)),
                    receiver: c,
                    frame: bytes.clone(),
                });
            }
        }
        // Local reordering: swap adjacent frames with the given
        // probability (models receiver-path jitter).
        let mut i = 0;
        while i + 1 < frames.len() {
            if self.rng.chance(reorder_prob) {
                let t_a = frames[i].at;
                let t_b = frames[i + 1].at;
                frames[i].at = t_b;
                frames[i + 1].at = t_a;
                frames.swap(i, i + 1);
            }
            i += 2;
        }
        frames
    }

    /// Flips one random bit in a fraction `corruption_rate` of the
    /// frames (the CRC-rejection workload).
    pub fn corrupt(&mut self, frames: &mut [ArrivingFrame], corruption_rate: f64) -> usize {
        let mut corrupted = 0;
        for f in frames.iter_mut() {
            if self.rng.chance(corruption_rate) && !f.frame.is_empty() {
                let mut bytes = f.frame.to_vec();
                let i = self.rng.below(bytes.len() as u64) as usize;
                bytes[i] ^= 1 << self.rng.below(8);
                f.frame = Bytes::from(bytes);
                corrupted += 1;
            }
        }
        corrupted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_converges() {
        let mut g = TrafficGen::new(1);
        let horizon = SimTime::from_secs(500);
        let arrivals = g.poisson_schedule(10.0, horizon);
        let rate = arrivals.len() as f64 / 500.0;
        assert!((9.0..11.0).contains(&rate), "rate={rate}");
        // Sorted and within horizon.
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        assert!(arrivals.last().unwrap() <= &horizon);
    }

    #[test]
    fn burst_produces_decodable_duplicated_frames() {
        let mut g = TrafficGen::new(2);
        let frames = g.burst(1, 10, 16, SimDuration::from_millis(10), 3, 0.0);
        assert_eq!(frames.len(), 30);
        for f in &frames {
            let (msg, _) = DataMessage::decode(&f.frame).unwrap();
            assert_eq!(msg.stream().sensor().as_u32(), 1);
            assert_eq!(msg.payload().len(), 16);
        }
        // Copies share receiver tags 0..3.
        assert!(frames.iter().any(|f| f.receiver == 2));
    }

    #[test]
    fn reordering_preserves_multiset() {
        let mut g = TrafficGen::new(3);
        let ordered = g.burst(1, 50, 8, SimDuration::from_millis(1), 1, 0.0);
        let mut g2 = TrafficGen::new(3);
        let shuffled = g2.burst(1, 50, 8, SimDuration::from_millis(1), 1, 0.9);
        let mut a: Vec<&[u8]> = ordered.iter().map(|f| f.frame.as_ref()).collect();
        let mut b: Vec<&[u8]> = shuffled.iter().map(|f| f.frame.as_ref()).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_ne!(
            ordered.iter().map(|f| f.frame.clone()).collect::<Vec<_>>(),
            shuffled.iter().map(|f| f.frame.clone()).collect::<Vec<_>>(),
            "with p=0.9 some pair must have swapped"
        );
    }

    #[test]
    fn corruption_rate_roughly_matches() {
        let mut g = TrafficGen::new(4);
        let mut frames = g.burst(1, 1000, 16, SimDuration::from_millis(1), 1, 0.0);
        let n = g.corrupt(&mut frames, 0.3);
        assert!((200..400).contains(&n), "corrupted {n}/1000");
        // Corrupted frames fail CRC.
        let failures = frames.iter().filter(|f| DataMessage::decode(&f.frame).is_err()).count();
        assert_eq!(failures, n);
    }

    #[test]
    fn determinism() {
        let a = TrafficGen::new(7).poisson_schedule(5.0, SimTime::from_secs(10));
        let b = TrafficGen::new(7).poisson_schedule(5.0, SimTime::from_secs(10));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn zero_rate_rejected() {
        TrafficGen::new(1).poisson_schedule(0.0, SimTime::from_secs(1));
    }
}
