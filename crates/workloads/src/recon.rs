//! Military reconnaissance scenario: mobile targets crossing a mixed
//! sensor field.
//!
//! §1 lists "military reconnaissance" beside environmental monitoring as
//! the motivating deployments. Here, emitting targets (vehicles) follow
//! waypoint tracks across a field of mostly simple acoustic sensors,
//! with a minority of sophisticated send-receive nodes. A
//! [`TargetDetector`] consumer thresholds the readings, publishes a
//! derived *detections* stream (multi-level consumption, §4.2) and
//! supplies location hints for the loudest sensor — it knows where its
//! sensors are from the site survey, exercising §5's "a consumer may be
//! able to infer, or otherwise acquire, knowledge of the location of a
//! sensor which is not itself location-aware".

use std::collections::HashMap;
use std::sync::Arc;

use garnet_core::consumer::{Consumer, ConsumerCtx};
use garnet_core::filtering::Delivery;
use garnet_core::middleware::GarnetConfig;
use garnet_core::pipeline::{PipelineConfig, PipelineSim};
use garnet_radio::field::DynField;
use garnet_radio::geometry::{Point, Rect};
use garnet_radio::{
    Medium, Mobility, Propagation, Reading, Receiver, SensorCaps, SensorNode, StreamConfig,
    Transmitter,
};
use garnet_simkit::{SimDuration, SimRng, SimTime};
use garnet_wire::{SensorId, StreamIndex};
use parking_lot::Mutex;

/// An emitting target moving through the field.
#[derive(Clone, Debug)]
pub struct Target {
    /// Its track.
    pub mobility: Mobility,
    /// Peak signature amplitude.
    pub amplitude: f64,
    /// Signature spread (m).
    pub sigma_m: f64,
}

/// The combined signature field of all targets.
#[derive(Debug)]
pub struct TargetField {
    /// The targets.
    pub targets: Vec<Target>,
    /// Ambient background level.
    pub background: f64,
}

impl garnet_radio::ScalarField for TargetField {
    fn sample(&self, p: Point, t: SimTime) -> f64 {
        self.background
            + self
                .targets
                .iter()
                .map(|tg| {
                    let c = tg.mobility.position(t);
                    tg.amplitude * (-p.distance_sq(c) / (2.0 * tg.sigma_m * tg.sigma_m)).exp()
                })
                .sum::<f64>()
    }
}

/// One recorded detection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Detection {
    /// The sensor that heard the target.
    pub sensor: SensorId,
    /// The reading value.
    pub strength: f64,
    /// When it was delivered.
    pub at_us: u64,
}

/// A consumer that thresholds readings into a derived detections stream.
#[derive(Debug)]
pub struct TargetDetector {
    name: String,
    threshold: f64,
    sensor_positions: HashMap<u32, Point>,
    detections: Arc<Mutex<Vec<Detection>>>,
    in_contact: bool,
}

impl TargetDetector {
    /// Creates a detector with the site survey (sensor positions) and a
    /// detection threshold; returns the shared detection log.
    pub fn new(
        name: impl Into<String>,
        threshold: f64,
        survey: impl IntoIterator<Item = (SensorId, Point)>,
    ) -> (TargetDetector, Arc<Mutex<Vec<Detection>>>) {
        let detections = Arc::new(Mutex::new(Vec::new()));
        (
            TargetDetector {
                name: name.into(),
                threshold,
                sensor_positions: survey.into_iter().map(|(s, p)| (s.as_u32(), p)).collect(),
                detections: Arc::clone(&detections),
                in_contact: false,
            },
            detections,
        )
    }
}

/// Coordinator state: no contact.
pub const STATE_QUIET: u32 = 10;
/// Coordinator state: target contact.
pub const STATE_CONTACT: u32 = 11;

impl Consumer for TargetDetector {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_data(&mut self, delivery: &Delivery, ctx: &mut ConsumerCtx) {
        let Some(reading) = Reading::decode(delivery.msg.payload()) else {
            return;
        };
        let sensor = delivery.msg.stream().sensor();
        let hit = reading.value >= self.threshold;
        if hit {
            self.detections.lock().push(Detection {
                sensor,
                strength: reading.value,
                at_us: ctx.now().as_micros(),
            });
            // Publish onto the derived detections stream (index 0).
            ctx.publish_derived(StreamIndex::new(0), reading.encode());
            // The detector knows the site survey: hint the middleware
            // about the (not location-aware) sensor's position.
            if let Some(&pos) = self.sensor_positions.get(&sensor.as_u32()) {
                ctx.location_hint(sensor, pos, 5.0);
            }
        }
        if hit != self.in_contact {
            self.in_contact = hit;
            ctx.report_state(if hit { STATE_CONTACT } else { STATE_QUIET });
        }
    }
}

/// Parameters of a reconnaissance deployment.
#[derive(Clone, Debug)]
pub struct ReconScenario {
    /// Field side length (m); sensors scatter uniformly.
    pub field_side_m: f64,
    /// Number of simple (transmit-only) sensors.
    pub simple_sensors: usize,
    /// Number of sophisticated (send-receive) sensors.
    pub sophisticated_sensors: usize,
    /// Reporting interval.
    pub report_interval: SimDuration,
    /// Targets crossing the field.
    pub targets: Vec<Target>,
    /// Seed for placement and physics.
    pub seed: u64,
}

impl Default for ReconScenario {
    fn default() -> Self {
        let crossing = Mobility::Waypoints(vec![
            (0, Point::new(-100.0, 250.0)),
            (120_000_000, Point::new(600.0, 250.0)),
        ]);
        ReconScenario {
            field_side_m: 500.0,
            simple_sensors: 20,
            sophisticated_sensors: 5,
            report_interval: SimDuration::from_secs(5),
            targets: vec![Target { mobility: crossing, amplitude: 80.0, sigma_m: 60.0 }],
            seed: 0x5EC0,
        }
    }
}

impl ReconScenario {
    /// The target signature field.
    pub fn field(&self) -> DynField {
        Box::new(TargetField { targets: self.targets.clone(), background: 1.0 })
    }

    /// Scatters the sensor population uniformly (deterministic per
    /// seed). Ids `1..=simple` are simple; the rest sophisticated.
    pub fn sensors(&self) -> Vec<SensorNode> {
        let mut rng = SimRng::seed(self.seed).fork("placement");
        let bounds = Rect::square(self.field_side_m);
        let mut out = Vec::new();
        let total = self.simple_sensors + self.sophisticated_sensors;
        for i in 0..total {
            let pos = Point::new(
                bounds.min.x + rng.next_f64() * bounds.width(),
                bounds.min.y + rng.next_f64() * bounds.height(),
            );
            let caps = if i < self.simple_sensors {
                SensorCaps::simple()
            } else {
                SensorCaps::sophisticated()
            };
            out.push(
                SensorNode::new(SensorId::new(i as u32 + 1).expect("small ids"), pos)
                    .with_caps(caps)
                    .with_stream(StreamIndex::new(0), StreamConfig::every(self.report_interval)),
            );
        }
        out
    }

    /// The site survey: sensor id → surveyed position.
    pub fn survey(&self) -> Vec<(SensorId, Point)> {
        self.sensors().iter().map(|s| (s.id(), s.position(SimTime::ZERO))).collect()
    }

    /// Masts at the field corners and centre.
    pub fn masts(&self) -> (Vec<Receiver>, Vec<Transmitter>) {
        let half = self.field_side_m / 2.0;
        let range = self.field_side_m * 0.8;
        let spots = [
            Point::new(0.0, 0.0),
            Point::new(self.field_side_m, 0.0),
            Point::new(0.0, self.field_side_m),
            Point::new(self.field_side_m, self.field_side_m),
            Point::new(half, half),
        ];
        let rx = spots
            .iter()
            .enumerate()
            .map(|(i, &p)| Receiver::new(garnet_radio::ReceiverId::new(i as u32), p, range))
            .collect();
        let tx = spots
            .iter()
            .enumerate()
            .map(|(i, &p)| Transmitter::new(garnet_radio::TransmitterId::new(i as u32), p, range))
            .collect();
        (rx, tx)
    }

    /// Assembles the closed-loop pipeline.
    pub fn build(&self) -> PipelineSim {
        let (receivers, transmitters) = self.masts();
        let config = PipelineConfig {
            seed: self.seed,
            medium: Medium::ideal(Propagation::UnitDisk { range_m: self.field_side_m * 0.8 }),
            garnet: GarnetConfig { receivers, transmitters, ..GarnetConfig::default() },
            peer_range_m: None,
        };
        let mut sim = PipelineSim::new(config, self.field());
        for s in self.sensors() {
            sim.add_sensor(s);
        }
        sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use garnet_net::TopicFilter;
    use garnet_radio::ScalarField;

    #[test]
    fn target_field_peaks_at_target() {
        let field = TargetField {
            targets: vec![Target {
                mobility: Mobility::Stationary(Point::new(100.0, 100.0)),
                amplitude: 50.0,
                sigma_m: 20.0,
            }],
            background: 1.0,
        };
        assert!((field.sample(Point::new(100.0, 100.0), SimTime::ZERO) - 51.0).abs() < 1e-9);
        assert!(field.sample(Point::new(300.0, 300.0), SimTime::ZERO) < 1.1);
    }

    #[test]
    fn sensor_population_mixes_capabilities() {
        let s = ReconScenario::default();
        let sensors = s.sensors();
        assert_eq!(sensors.len(), 25);
        let simple = sensors.iter().filter(|n| !n.caps().receive_capable).count();
        assert_eq!(simple, 20);
        // Placement is deterministic.
        let again = s.sensors();
        assert_eq!(
            sensors.iter().map(|n| n.position(SimTime::ZERO)).collect::<Vec<_>>(),
            again.iter().map(|n| n.position(SimTime::ZERO)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn detector_logs_detections_and_hints() {
        let scenario = ReconScenario { seed: 9, ..ReconScenario::default() };
        let mut sim = scenario.build();
        let token = sim.garnet_mut().issue_default_token("recon");
        let (detector, detections) = TargetDetector::new("recon", 10.0, scenario.survey());
        let id = sim.garnet_mut().register_consumer(Box::new(detector), &token, 3).unwrap();
        // Subscribe to the physical sensors only — an All subscription
        // would loop the detector's own derived stream back into it.
        for (sensor, _) in scenario.survey() {
            sim.garnet_mut().subscribe(id, TopicFilter::Sensor(sensor), &token).unwrap();
        }
        // Target crosses over two minutes; run it through.
        sim.run_until(SimTime::from_secs(120));
        let log = detections.lock();
        assert!(!log.is_empty(), "the crossing target must be detected");
        assert!(log.iter().all(|d| d.strength >= 10.0));
        // Hints flowed into the location service.
        assert!(sim.garnet().location().hint_count() > 0);
        // The derived detections stream exists (orphaned, since nobody
        // subscribed to it).
        assert!(sim.garnet().orphanage().total_taken() > 0);
    }
}
