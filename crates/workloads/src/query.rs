//! Continuous queries as a Garnet consumer: the Fjords sensor proxy
//! realised on the middleware.
//!
//! §7 observes that Fjords' sensor proxies and Garnet's resource manager
//! play the same role: one acquisition stream serves many queries. The
//! [`ContinuousQueryConsumer`] closes the loop as running code — it
//! subscribes to a physical stream once, runs any number of registered
//! continuous queries over the deliveries, and publishes each query's
//! results on its own **derived stream** (`StreamIndex` = query id), so
//! downstream consumers subscribe to query results exactly like any
//! other Garnet stream. Experiment E7 verifies that MergeMax mediation
//! acquires at the same rate a Fjords proxy would; this module is what a
//! deployment would actually run.

use garnet_baselines::querydb::{Query, QueryEngine};
use garnet_core::consumer::{Consumer, ConsumerCtx};
use garnet_core::filtering::Delivery;
use garnet_radio::Reading;
use garnet_wire::StreamIndex;

/// A consumer hosting up to 256 continuous queries over the streams it
/// subscribes to, publishing results as derived streams.
#[derive(Debug)]
pub struct ContinuousQueryConsumer {
    name: String,
    engine: QueryEngine,
    results_published: u64,
}

impl ContinuousQueryConsumer {
    /// Creates an empty query host.
    pub fn new(name: impl Into<String>) -> ContinuousQueryConsumer {
        ContinuousQueryConsumer {
            name: name.into(),
            engine: QueryEngine::new(),
            results_published: 0,
        }
    }

    /// Registers a continuous query. Its results publish on the derived
    /// stream whose index equals the returned id.
    ///
    /// # Panics
    ///
    /// Panics beyond 256 queries — a consumer has only 256 derived
    /// stream indices (the Fig. 2 format); shard across consumers
    /// instead.
    pub fn register(&mut self, query: Query) -> u8 {
        let id = self.engine.register(query);
        assert!(id < 256, "one consumer hosts at most 256 queries");
        id as u8
    }

    /// The shared acquisition interval the hosted queries need (what the
    /// consumer should request from the Resource Manager).
    pub fn acquisition_interval(&self) -> Option<garnet_simkit::SimDuration> {
        self.engine.shared_acquisition_interval()
    }

    /// Results published so far.
    pub fn results_published(&self) -> u64 {
        self.results_published
    }

    /// Samples ingested so far.
    pub fn samples_ingested(&self) -> u64 {
        self.engine.samples_ingested()
    }
}

impl Consumer for ContinuousQueryConsumer {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_data(&mut self, delivery: &Delivery, ctx: &mut ConsumerCtx) {
        let Some(reading) = Reading::decode(delivery.msg.payload()) else {
            return;
        };
        self.engine.ingest(reading.sensed_at(), reading.value);
        for (query_id, report_at, value) in self.engine.drain_results() {
            self.results_published += 1;
            ctx.publish_derived(
                StreamIndex::new(query_id as u8),
                Reading::new(value, report_at).encode(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use garnet_baselines::querydb::Aggregate;
    use garnet_core::middleware::{Garnet, GarnetConfig};
    use garnet_core::pipeline::SharedCountConsumer;
    use garnet_net::TopicFilter;
    use garnet_radio::ReceiverId;
    use garnet_simkit::{SimDuration, SimTime};
    use garnet_wire::{DataMessage, SensorId, SequenceNumber, StreamId};
    use std::sync::atomic::Ordering;

    fn frame(seq: u16, at: SimTime, value: f64) -> Vec<u8> {
        let stream = StreamId::new(SensorId::new(1).unwrap(), StreamIndex::new(0));
        DataMessage::builder(stream)
            .seq(SequenceNumber::new(seq))
            .payload(Reading::new(value, at).encode())
            .build()
            .unwrap()
            .encode_to_vec()
    }

    #[test]
    fn queries_publish_derived_result_streams() {
        let mut host = ContinuousQueryConsumer::new("queries");
        let fast = host.register(Query::latest_every(SimDuration::from_secs(2)));
        let slow = host
            .register(Query { interval: SimDuration::from_secs(10), aggregate: Aggregate::Avg });
        assert_eq!(host.acquisition_interval(), Some(SimDuration::from_secs(2)));

        let mut g = Garnet::new(GarnetConfig::default());
        let token = g.issue_default_token("t");
        let host_id = g.register_consumer(Box::new(host), &token, 0).unwrap();
        let physical = StreamId::new(SensorId::new(1).unwrap(), StreamIndex::new(0));
        g.subscribe(host_id, TopicFilter::Stream(physical), &token).unwrap();

        // Two downstream dashboards subscribe to the two result streams.
        let virtual_sensor = g.virtual_sensor(host_id).unwrap();
        let (fast_dash, fast_n) = SharedCountConsumer::new("fast-dash");
        let (slow_dash, slow_n) = SharedCountConsumer::new("slow-dash");
        let fid = g.register_consumer(Box::new(fast_dash), &token, 0).unwrap();
        let sid = g.register_consumer(Box::new(slow_dash), &token, 0).unwrap();
        g.subscribe(
            fid,
            TopicFilter::Stream(StreamId::new(virtual_sensor, StreamIndex::new(fast))),
            &token,
        )
        .unwrap();
        g.subscribe(
            sid,
            TopicFilter::Stream(StreamId::new(virtual_sensor, StreamIndex::new(slow))),
            &token,
        )
        .unwrap();

        // One sample per second for 40 s.
        for s in 0..40u16 {
            let at = SimTime::from_secs(u64::from(s));
            g.on_frame(ReceiverId::new(0), -50.0, &frame(s, at, f64::from(s)), at);
        }

        // 2 s windows → ~19 reports; 10 s windows → 3 full reports.
        let fast_results = fast_n.load(Ordering::Relaxed);
        let slow_results = slow_n.load(Ordering::Relaxed);
        assert!((18..=20).contains(&fast_results), "fast={fast_results}");
        assert_eq!(slow_results, 3, "slow={slow_results}");
    }

    #[test]
    fn avg_results_are_correct_through_the_stack() {
        use garnet_core::consumer::Consumer as _;
        let mut host = ContinuousQueryConsumer::new("q");
        host.register(Query { interval: SimDuration::from_secs(4), aggregate: Aggregate::Avg });
        let mut ctx = ConsumerCtx::new(SimTime::ZERO);
        // Samples 1,2,3,4 in the first window (0,4].
        for s in 1..=4u16 {
            let at = SimTime::from_secs(u64::from(s) - 1);
            let d = Delivery {
                msg: DataMessage::decode(&frame(s, at, f64::from(s))).unwrap().0,
                first_received_at: at,
                delivered_at: at,
            };
            host.on_data(&d, &mut ctx);
        }
        // Push one sample past the window edge to close it.
        let at = SimTime::from_secs(4);
        let d = Delivery {
            msg: DataMessage::decode(&frame(9, at, 0.0)).unwrap().0,
            first_received_at: at,
            delivered_at: at,
        };
        host.on_data(&d, &mut ctx);
        let actions = ctx.take_actions();
        assert_eq!(actions.len(), 1);
        let garnet_core::consumer::ConsumerAction::PublishDerived { payload, .. } = &actions[0]
        else {
            panic!("expected a derived publication");
        };
        let r = Reading::decode(payload).unwrap();
        assert!((r.value - 2.5).abs() < 1e-9, "avg of 1..=4 is 2.5, got {}", r.value);
        assert_eq!(host.results_published(), 1);
        assert_eq!(host.samples_ingested(), 5);
    }

    #[test]
    #[should_panic]
    fn query_256_overflows_derived_space() {
        let mut host = ContinuousQueryConsumer::new("q");
        for _ in 0..257 {
            host.register(Query::latest_every(SimDuration::from_secs(1)));
        }
    }
}
