//! Scenario and workload generators for the Garnet experiments.
//!
//! Each module builds a deployment the paper motivates:
//!
//! * [`habitat`] — habitat monitoring (Mainwaring et al., cited as the
//!   §7 comparison and the §1 motivation): a grid of simple,
//!   transmit-only temperature sensors over a study plot.
//! * [`watercourse`] — the paper's flagship scenario (§6.1): gauging
//!   stations along a river, flood waves propagating downstream, and a
//!   flood-watch consumer whose state changes drive the Super
//!   Coordinator's predictive actuation.
//! * [`recon`] — military reconnaissance (§1): mobile targets crossing a
//!   field of mixed simple/sophisticated sensors.
//! * [`traffic`] — synthetic message traffic with controlled rates and
//!   payload sizes for microbenchmarks.
//! * [`query`] — Fjords-style continuous queries hosted as a Garnet
//!   consumer, publishing results as derived streams.

pub mod habitat;
pub mod query;
pub mod recon;
pub mod traffic;
pub mod watercourse;

pub use habitat::HabitatScenario;
pub use query::ContinuousQueryConsumer;
pub use recon::ReconScenario;
pub use traffic::TrafficGen;
pub use watercourse::{FloodWatch, RiverField, WatercourseScenario};
