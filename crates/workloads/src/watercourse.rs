//! The water-course management scenario (§6.1).
//!
//! "We are actively developing suitable models which could be applied to
//! the management of a complex water course. In such a scenario, the
//! ability of the super coordinator to anticipate changes to water
//! bodies and preempt actuation requests is expected to be significant."
//!
//! The model: gauging stations sit along a river (the x-axis). Flood
//! waves released upstream travel downstream at a fixed celerity, so a
//! station's future is literally written in its upstream neighbour's
//! present — the ideal substrate for predictive coordination
//! (experiment E10). The [`FloodWatch`] consumer watches levels, reports
//! `Normal → Rising → Flood` state changes, and the Super Coordinator's
//! registered policies accelerate station reporting ahead of the wave.

use std::sync::Arc;

use garnet_core::consumer::{Consumer, ConsumerCtx};
use garnet_core::coordinator::ConsumerStateId;
use garnet_core::filtering::Delivery;
use garnet_core::middleware::GarnetConfig;
use garnet_core::pipeline::{PipelineConfig, PipelineSim};
use garnet_radio::field::DynField;
use garnet_radio::geometry::Point;
use garnet_radio::{
    Medium, Propagation, Reading, Receiver, SensorCaps, SensorNode, StreamConfig, Transmitter,
};
use garnet_simkit::{SimDuration, SimTime};
use garnet_wire::{SensorId, StreamIndex};
use parking_lot::Mutex;

/// FloodWatch state: everything nominal.
pub const STATE_NORMAL: ConsumerStateId = 0;
/// FloodWatch state: levels rising at some station.
pub const STATE_RISING: ConsumerStateId = 1;
/// FloodWatch state: flood threshold exceeded.
pub const STATE_FLOOD: ConsumerStateId = 2;

/// A flood wave released into the river.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FloodWave {
    /// When the wave enters at `origin_x`.
    pub released_at: SimTime,
    /// Where it enters (m along the river).
    pub origin_x: f64,
    /// Downstream celerity (m/s).
    pub speed_mps: f64,
    /// Peak stage increase (m).
    pub peak_m: f64,
    /// Characteristic wave length (m).
    pub length_m: f64,
}

impl FloodWave {
    fn contribution(&self, x: f64, t: SimTime) -> f64 {
        if t < self.released_at {
            return 0.0;
        }
        let dt = t.saturating_since(self.released_at).as_secs_f64();
        let front = self.origin_x + self.speed_mps * dt;
        let sigma = self.length_m / 3.0;
        let d = x - front;
        self.peak_m * (-d * d / (2.0 * sigma * sigma)).exp()
    }
}

/// Water stage along the river as a scalar field (only `x` matters).
#[derive(Clone, Debug)]
pub struct RiverField {
    /// Baseline stage (m).
    pub base_level_m: f64,
    /// Waves in play.
    pub waves: Vec<FloodWave>,
}

impl garnet_radio::ScalarField for RiverField {
    fn sample(&self, p: Point, t: SimTime) -> f64 {
        self.base_level_m + self.waves.iter().map(|w| w.contribution(p.x, t)).sum::<f64>()
    }
}

/// A recorded state transition, for measuring detection/actuation
/// timing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StateEvent {
    /// The state entered.
    pub state: ConsumerStateId,
    /// When the consumer entered it.
    pub at_us: u64,
}

/// The flood-watch consumer: thresholds on water stage, reports state
/// transitions to the Super Coordinator.
///
/// The watch tracks the latest level *per station* and classifies on the
/// maximum — otherwise interleaved readings from a receded upstream
/// station and a cresting downstream one would flap the state.
#[derive(Debug)]
pub struct FloodWatch {
    name: String,
    rising_threshold_m: f64,
    flood_threshold_m: f64,
    current: ConsumerStateId,
    latest_by_station: std::collections::HashMap<u32, f64>,
    log: Arc<Mutex<Vec<StateEvent>>>,
}

impl FloodWatch {
    /// Creates a flood watch and the shared log of its transitions.
    pub fn new(
        name: impl Into<String>,
        rising_threshold_m: f64,
        flood_threshold_m: f64,
    ) -> (FloodWatch, Arc<Mutex<Vec<StateEvent>>>) {
        let log = Arc::new(Mutex::new(Vec::new()));
        (
            FloodWatch {
                name: name.into(),
                rising_threshold_m,
                flood_threshold_m,
                current: STATE_NORMAL,
                latest_by_station: std::collections::HashMap::new(),
                log: Arc::clone(&log),
            },
            log,
        )
    }

    fn classify(&self, level: f64) -> ConsumerStateId {
        // Hysteresis: once in Flood, stay there until the water is back
        // below the rising threshold (no flapping through Rising on the
        // way down, which would pollute the coordinator's transition
        // model with Rising→Normal edges).
        if self.current == STATE_FLOOD {
            if level >= self.rising_threshold_m {
                STATE_FLOOD
            } else {
                STATE_NORMAL
            }
        } else if level >= self.flood_threshold_m {
            STATE_FLOOD
        } else if level >= self.rising_threshold_m {
            STATE_RISING
        } else {
            STATE_NORMAL
        }
    }
}

impl Consumer for FloodWatch {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_data(&mut self, delivery: &Delivery, ctx: &mut ConsumerCtx) {
        let Some(reading) = Reading::decode(delivery.msg.payload()) else {
            return;
        };
        self.latest_by_station.insert(delivery.msg.stream().to_raw(), reading.value);
        let worst = self.latest_by_station.values().copied().fold(f64::NEG_INFINITY, f64::max);
        let state = self.classify(worst);
        if state != self.current {
            self.current = state;
            self.log.lock().push(StateEvent { state, at_us: ctx.now().as_micros() });
            ctx.report_state(state);
        }
    }
}

/// Parameters of a river deployment.
#[derive(Clone, Debug)]
pub struct WatercourseScenario {
    /// Number of gauging stations along the river.
    pub stations: usize,
    /// Metres between stations.
    pub station_spacing_m: f64,
    /// Quiescent reporting interval.
    pub base_interval: SimDuration,
    /// Baseline stage.
    pub base_level_m: f64,
    /// Flood waves to release.
    pub waves: Vec<FloodWave>,
    /// Physical-layer seed.
    pub seed: u64,
}

impl Default for WatercourseScenario {
    fn default() -> Self {
        WatercourseScenario {
            stations: 8,
            station_spacing_m: 200.0,
            base_interval: SimDuration::from_secs(60),
            base_level_m: 1.0,
            waves: vec![FloodWave {
                released_at: SimTime::from_secs(300),
                origin_x: -200.0,
                speed_mps: 2.0,
                peak_m: 3.0,
                length_m: 300.0,
            }],
            seed: 0x71E5,
        }
    }
}

impl WatercourseScenario {
    /// The river stage field.
    pub fn field(&self) -> DynField {
        Box::new(RiverField { base_level_m: self.base_level_m, waves: self.waves.clone() })
    }

    /// Gauging stations: sophisticated (receive-capable) sensors so the
    /// actuation path can accelerate their reporting.
    pub fn sensors(&self) -> Vec<SensorNode> {
        (0..self.stations)
            .map(|i| {
                SensorNode::new(
                    SensorId::new(i as u32 + 1).expect("station ids stay small"),
                    Point::new(i as f64 * self.station_spacing_m, 0.0),
                )
                .with_caps(SensorCaps::sophisticated())
                .with_stream(StreamIndex::new(0), StreamConfig::every(self.base_interval))
            })
            .collect()
    }

    /// One receiver+transmitter mast per station, on the bank.
    pub fn masts(&self) -> (Vec<Receiver>, Vec<Transmitter>) {
        let range = self.station_spacing_m * 0.9;
        let rx =
            Receiver::grid(Point::new(0.0, 20.0), self.stations, 1, self.station_spacing_m, range);
        let tx = Transmitter::grid(
            Point::new(0.0, 20.0),
            self.stations,
            1,
            self.station_spacing_m,
            range,
        );
        (rx, tx)
    }

    /// Assembles the closed-loop pipeline (no consumers registered yet).
    pub fn build(&self) -> PipelineSim {
        let (receivers, transmitters) = self.masts();
        let config = PipelineConfig {
            seed: self.seed,
            medium: Medium::ideal(Propagation::UnitDisk { range_m: self.station_spacing_m * 0.9 }),
            garnet: GarnetConfig { receivers, transmitters, ..GarnetConfig::default() },
            peer_range_m: None,
        };
        let mut sim = PipelineSim::new(config, self.field());
        for s in self.sensors() {
            sim.add_sensor(s);
        }
        sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use garnet_net::TopicFilter;
    use garnet_radio::ScalarField;

    #[test]
    fn wave_propagates_downstream() {
        let wave = FloodWave {
            released_at: SimTime::from_secs(100),
            origin_x: 0.0,
            speed_mps: 2.0,
            peak_m: 3.0,
            length_m: 100.0,
        };
        let field = RiverField { base_level_m: 1.0, waves: vec![wave] };
        // Before release: baseline everywhere.
        assert_eq!(field.sample(Point::new(500.0, 0.0), SimTime::ZERO), 1.0);
        // At t = 100s + 250s the front is at x = 500: peak there.
        let at_front = field.sample(Point::new(500.0, 0.0), SimTime::from_secs(350));
        assert!((at_front - 4.0).abs() < 1e-9, "level={at_front}");
        // Downstream station not yet reached.
        let downstream = field.sample(Point::new(1200.0, 0.0), SimTime::from_secs(350));
        assert!(downstream < 1.1);
        // The same station floods later: the wave is *coming*.
        let later = field.sample(Point::new(1200.0, 0.0), SimTime::from_secs(700));
        assert!(later > 3.5, "level={later}");
    }

    #[test]
    fn upstream_station_sees_wave_first() {
        let s = WatercourseScenario::default();
        let field = s.field();
        let up = Point::new(0.0, 0.0);
        let down = Point::new(1400.0, 0.0);
        let mut t_up = None;
        let mut t_down = None;
        for sec in 0..3600u64 {
            let t = SimTime::from_secs(sec);
            if t_up.is_none() && field.sample(up, t) > 2.0 {
                t_up = Some(sec);
            }
            if t_down.is_none() && field.sample(down, t) > 2.0 {
                t_down = Some(sec);
            }
        }
        assert!(t_up.unwrap() < t_down.unwrap());
    }

    #[test]
    fn floodwatch_classifies_and_reports_transitions() {
        let (mut fw, log) = FloodWatch::new("fw", 2.0, 3.5);
        let mut ctx = ConsumerCtx::new(SimTime::from_secs(10));
        let delivery = |level: f64| {
            let payload = Reading::new(level, SimTime::from_secs(9)).encode();
            Delivery {
                msg: garnet_wire::DataMessage::builder(garnet_wire::StreamId::from_raw(0x0100))
                    .payload(payload)
                    .build()
                    .unwrap(),
                first_received_at: SimTime::from_secs(10),
                delivered_at: SimTime::from_secs(10),
            }
        };
        fw.on_data(&delivery(1.0), &mut ctx);
        assert!(log.lock().is_empty(), "already normal: no transition");
        fw.on_data(&delivery(2.5), &mut ctx);
        fw.on_data(&delivery(2.6), &mut ctx);
        fw.on_data(&delivery(4.0), &mut ctx);
        fw.on_data(&delivery(1.0), &mut ctx);
        let states: Vec<u32> = log.lock().iter().map(|e| e.state).collect();
        assert_eq!(states, vec![STATE_RISING, STATE_FLOOD, STATE_NORMAL]);
        assert_eq!(ctx.take_actions().len(), 3, "one report per transition");
    }

    #[test]
    fn scenario_builds_and_detects_flood_end_to_end() {
        let scenario = WatercourseScenario {
            stations: 4,
            base_interval: SimDuration::from_secs(10),
            waves: vec![FloodWave {
                released_at: SimTime::from_secs(60),
                origin_x: -100.0,
                speed_mps: 5.0,
                peak_m: 4.0,
                length_m: 200.0,
            }],
            ..WatercourseScenario::default()
        };
        let mut sim = scenario.build();
        let token = sim.garnet_mut().issue_default_token("flood-watch");
        let (fw, log) = FloodWatch::new("flood-watch", 2.0, 3.5);
        let id = sim.garnet_mut().register_consumer(Box::new(fw), &token, 5).unwrap();
        sim.garnet_mut().subscribe(id, TopicFilter::All, &token).unwrap();
        sim.run_until(SimTime::from_secs(600));
        let states: Vec<u32> = log.lock().iter().map(|e| e.state).collect();
        assert!(states.contains(&STATE_FLOOD), "flood must be detected: {states:?}");
        // The coordinator amassed the consumer's state history.
        assert!(sim.garnet().coordinator().report_count() >= 2);
    }
}
