//! Simulated wireless sensor field for the Garnet reproduction.
//!
//! The paper's prototype attached real iPAQ/notebook "sensors" over IEEE
//! 802.11b; this crate substitutes a deterministic discrete-event model of
//! the same physical layer so every experiment is reproducible from a
//! seed. It models exactly the phenomena Garnet's fixed-network services
//! exist to absorb:
//!
//! * **mobility** — "sensors are expected to occasionally roam outside
//!   the reception zone, which may cause data messages to be lost" (§4.2);
//! * **overlapping receivers** — "their effective receiving areas may
//!   overlap … improves data reception but causes potential duplication
//!   of data messages" (§4.2);
//! * **unreliable links** — probabilistic loss and optional bit
//!   corruption (caught by the wire CRC);
//! * **heterogeneous sensors** — transmit-only vs send-receive nodes,
//!   location-aware or not, with per-stream configuration that actuation
//!   requests can change (§5 "simple and sophisticated sensors coexist");
//! * **energy** — a per-bit transmit/receive cost model used by the
//!   RETRI comparison (experiment E6).
//!
//! # Example
//!
//! ```
//! use garnet_radio::{Medium, Propagation, Receiver, ReceiverId, geometry::Point};
//! use garnet_simkit::{SimRng, SimTime};
//! use bytes::Bytes;
//!
//! let medium = Medium::ideal(Propagation::UnitDisk { range_m: 100.0 });
//! let receivers = vec![
//!     Receiver::new(ReceiverId::new(0), Point::new(0.0, 0.0), 100.0),
//!     Receiver::new(ReceiverId::new(1), Point::new(50.0, 0.0), 100.0),
//! ];
//! let mut rng = SimRng::seed(1);
//! let hits = medium.uplink(
//!     Point::new(25.0, 0.0),
//!     &bytes::Bytes::from_static(b"frame"),
//!     &receivers,
//!     SimTime::ZERO,
//!     &mut rng,
//! );
//! assert_eq!(hits.len(), 2); // both receivers hear it: duplication
//! ```

pub mod energy;
pub mod field;
pub mod geometry;
pub mod medium;
pub mod mobility;
pub mod propagation;
pub mod reading;
pub mod receiver;
pub mod sensor;
pub mod transmitter;

pub use energy::{EnergyMeter, EnergyModel};
pub use field::ScalarField;
pub use medium::Medium;
pub use mobility::Mobility;
pub use propagation::Propagation;
pub use reading::Reading;
pub use receiver::{Receiver, ReceiverId, Reception};
pub use sensor::{SensorCaps, SensorNode, StreamConfig};
pub use transmitter::{Transmitter, TransmitterId};
