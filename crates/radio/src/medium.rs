//! The unreliable wireless medium.
//!
//! Connects transmitting sensors to the fixed receiver array (uplink) and
//! fixed transmitters to receive-capable sensors (downlink). The medium
//! produces exactly the pathologies the paper's middleware services
//! absorb: loss (mobility out of range, fading), duplication (overlapping
//! receivers), variable latency, and — optionally — bit corruption that
//! the wire CRC must catch.

use bytes::Bytes;
use garnet_simkit::{SimDuration, SimRng, SimTime};

use crate::geometry::Point;
use crate::propagation::Propagation;
use crate::receiver::{Receiver, Reception};
use crate::transmitter::Transmitter;

/// Medium parameters.
#[derive(Clone, Debug)]
pub struct Medium {
    /// Path loss / delivery model.
    pub propagation: Propagation,
    /// Fixed per-hop latency (front-end processing, framing).
    pub base_latency: SimDuration,
    /// Uniform extra latency in `[0, jitter)` added per reception.
    pub jitter: SimDuration,
    /// Probability that a delivered frame suffers one flipped bit
    /// (residual channel errors below the PHY's FEC).
    pub bit_flip_prob: f64,
}

impl Medium {
    /// A loss-model-only medium: no latency jitter, no corruption.
    pub fn ideal(propagation: Propagation) -> Medium {
        Medium {
            propagation,
            base_latency: SimDuration::from_micros(500),
            jitter: SimDuration::ZERO,
            bit_flip_prob: 0.0,
        }
    }

    /// An 802.11b-flavoured outdoor medium with jitter and rare residual
    /// bit errors.
    pub fn wifi_outdoor() -> Medium {
        Medium {
            propagation: Propagation::wifi_outdoor(),
            base_latency: SimDuration::from_micros(800),
            jitter: SimDuration::from_micros(400),
            bit_flip_prob: 1e-3,
        }
    }

    fn arrival(&self, sent_at: SimTime, rng: &mut SimRng) -> SimTime {
        let jitter = if self.jitter.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::from_micros(rng.below(self.jitter.as_micros().max(1)))
        };
        sent_at.saturating_add(self.base_latency).saturating_add(jitter)
    }

    fn maybe_corrupt(&self, frame: &Bytes, rng: &mut SimRng) -> Bytes {
        if self.bit_flip_prob > 0.0 && !frame.is_empty() && rng.chance(self.bit_flip_prob) {
            let mut bytes = frame.to_vec();
            let i = rng.below(bytes.len() as u64) as usize;
            let bit = rng.below(8) as u8;
            bytes[i] ^= 1 << bit;
            Bytes::from(bytes)
        } else {
            frame.clone()
        }
    }

    /// Propagates one sensor transmission to the receiver array.
    ///
    /// Every receiver whose nominal range covers the origin rolls the
    /// propagation model independently; each success yields a
    /// [`Reception`]. Zero receptions = the message is lost (§4.2:
    /// roaming "may cause data messages to be lost"); two or more =
    /// duplication for the Filtering Service.
    pub fn uplink(
        &self,
        origin: Point,
        frame: &Bytes,
        receivers: &[Receiver],
        sent_at: SimTime,
        rng: &mut SimRng,
    ) -> Vec<Reception> {
        let mut out = Vec::new();
        let practical = self.propagation.practical_range();
        for r in receivers {
            let d = origin.distance_to(r.position());
            if d > r.range_m().min(practical).max(practical.min(r.range_m())) && d > practical {
                continue;
            }
            if d > r.range_m() {
                continue;
            }
            if let Some(rssi) = self.propagation.deliver(d, rng) {
                out.push(Reception {
                    receiver: r.id(),
                    received_at: self.arrival(sent_at, rng),
                    rssi_dbm: rssi,
                    frame: self.maybe_corrupt(frame, rng),
                });
            }
        }
        out
    }

    /// Propagates a sensor transmission to *peer sensors* (the §8
    /// multi-hop substrate): every other sensor within `peer_range_m`
    /// whose propagation roll succeeds overhears the frame. Returns the
    /// indices into `peer_positions` (excluding `sender`) with arrival
    /// times. Whether a hearer relays is its own decision
    /// (`SensorNode::maybe_relay`).
    pub fn overhear(
        &self,
        origin: Point,
        sender: usize,
        peer_positions: &[Point],
        peer_range_m: f64,
        sent_at: SimTime,
        rng: &mut SimRng,
    ) -> Vec<(usize, SimTime)> {
        let mut out = Vec::new();
        for (i, &p) in peer_positions.iter().enumerate() {
            if i == sender {
                continue;
            }
            let d = origin.distance_to(p);
            if d > peer_range_m {
                continue;
            }
            if self.propagation.deliver(d, rng).is_some() {
                out.push((i, self.arrival(sent_at, rng)));
            }
        }
        out
    }

    /// Broadcasts a control frame from one fixed transmitter. Returns
    /// the indices (into `sensor_positions`) of the sensors whose radios
    /// hear it, with per-sensor arrival times.
    ///
    /// Whether a hearing sensor *acts* is its own business
    /// (`SensorNode::handle_request` checks capability and identity).
    pub fn downlink(
        &self,
        tx: &Transmitter,
        sensor_positions: &[Point],
        sent_at: SimTime,
        rng: &mut SimRng,
    ) -> Vec<(usize, SimTime)> {
        let mut out = Vec::new();
        for (i, &p) in sensor_positions.iter().enumerate() {
            let d = tx.position().distance_to(p);
            if d > tx.range_m() {
                continue;
            }
            if self.propagation.deliver(d, rng).is_some() {
                out.push((i, self.arrival(sent_at, rng)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::ReceiverId;
    use crate::transmitter::TransmitterId;

    fn frame() -> Bytes {
        Bytes::from_static(b"0123456789abcdef")
    }

    #[test]
    fn overlapping_receivers_duplicate() {
        let medium = Medium::ideal(Propagation::UnitDisk { range_m: 100.0 });
        let receivers = vec![
            Receiver::new(ReceiverId::new(0), Point::new(0.0, 0.0), 100.0),
            Receiver::new(ReceiverId::new(1), Point::new(60.0, 0.0), 100.0),
            Receiver::new(ReceiverId::new(2), Point::new(500.0, 0.0), 100.0),
        ];
        let mut rng = SimRng::seed(1);
        let hits =
            medium.uplink(Point::new(30.0, 0.0), &frame(), &receivers, SimTime::ZERO, &mut rng);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].receiver, ReceiverId::new(0));
        assert_eq!(hits[1].receiver, ReceiverId::new(1));
    }

    #[test]
    fn out_of_range_is_lost() {
        let medium = Medium::ideal(Propagation::UnitDisk { range_m: 50.0 });
        let receivers = vec![Receiver::new(ReceiverId::new(0), Point::ORIGIN, 50.0)];
        let mut rng = SimRng::seed(2);
        let hits =
            medium.uplink(Point::new(80.0, 0.0), &frame(), &receivers, SimTime::ZERO, &mut rng);
        assert!(hits.is_empty());
    }

    #[test]
    fn latency_includes_base_and_bounded_jitter() {
        let mut medium = Medium::ideal(Propagation::UnitDisk { range_m: 100.0 });
        medium.jitter = SimDuration::from_micros(200);
        let receivers = vec![Receiver::new(ReceiverId::new(0), Point::ORIGIN, 100.0)];
        let mut rng = SimRng::seed(3);
        for _ in 0..100 {
            let hits =
                medium.uplink(Point::ORIGIN, &frame(), &receivers, SimTime::from_secs(1), &mut rng);
            let dt = hits[0].received_at - SimTime::from_secs(1);
            assert!(dt >= SimDuration::from_micros(500));
            assert!(dt < SimDuration::from_micros(700));
        }
    }

    #[test]
    fn corruption_rate_close_to_configured() {
        let mut medium = Medium::ideal(Propagation::UnitDisk { range_m: 100.0 });
        medium.bit_flip_prob = 0.3;
        let receivers = vec![Receiver::new(ReceiverId::new(0), Point::ORIGIN, 100.0)];
        let mut rng = SimRng::seed(4);
        let f = frame();
        let mut corrupted = 0;
        let n = 5000;
        for _ in 0..n {
            let hits = medium.uplink(Point::ORIGIN, &f, &receivers, SimTime::ZERO, &mut rng);
            if hits[0].frame != f {
                corrupted += 1;
            }
        }
        let rate = corrupted as f64 / n as f64;
        assert!((0.25..0.35).contains(&rate), "rate={rate}");
    }

    #[test]
    fn corrupted_frames_flip_exactly_one_bit() {
        let mut medium = Medium::ideal(Propagation::UnitDisk { range_m: 100.0 });
        medium.bit_flip_prob = 1.0;
        let receivers = vec![Receiver::new(ReceiverId::new(0), Point::ORIGIN, 100.0)];
        let mut rng = SimRng::seed(5);
        let f = frame();
        let hits = medium.uplink(Point::ORIGIN, &f, &receivers, SimTime::ZERO, &mut rng);
        let diff: u32 = hits[0].frame.iter().zip(f.iter()).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert_eq!(diff, 1);
    }

    #[test]
    fn downlink_reaches_sensors_in_range() {
        let medium = Medium::ideal(Propagation::UnitDisk { range_m: 100.0 });
        let tx = Transmitter::new(TransmitterId::new(0), Point::ORIGIN, 100.0);
        let positions = vec![Point::new(10.0, 0.0), Point::new(99.0, 0.0), Point::new(150.0, 0.0)];
        let mut rng = SimRng::seed(6);
        let reached = medium.downlink(&tx, &positions, SimTime::ZERO, &mut rng);
        let idx: Vec<usize> = reached.iter().map(|&(i, _)| i).collect();
        assert_eq!(idx, vec![0, 1]);
        for &(_, at) in &reached {
            assert!(at > SimTime::ZERO);
        }
    }

    #[test]
    fn lossy_propagation_loses_some_uplinks() {
        let medium = Medium::wifi_outdoor();
        let receivers = vec![Receiver::new(ReceiverId::new(0), Point::ORIGIN, 400.0)];
        let mut rng = SimRng::seed(7);
        let f = frame();
        // At 150 m the outdoor model is in its lossy fringe (the 50%
        // point sits near 100 m): some frames arrive, some do not.
        let delivered = (0..2000)
            .filter(|_| {
                !medium
                    .uplink(Point::new(150.0, 0.0), &f, &receivers, SimTime::ZERO, &mut rng)
                    .is_empty()
            })
            .count();
        assert!(delivered > 0, "nothing delivered at 150m");
        assert!(delivered < 2000, "nothing lost at 150m");
    }

    #[test]
    fn overhear_excludes_sender_and_respects_range() {
        let medium = Medium::ideal(Propagation::UnitDisk { range_m: 500.0 });
        let positions = vec![
            Point::new(0.0, 0.0),  // sender
            Point::new(30.0, 0.0), // near peer
            Point::new(90.0, 0.0), // far peer (outside peer range)
        ];
        let mut rng = SimRng::seed(8);
        let heard = medium.overhear(positions[0], 0, &positions, 50.0, SimTime::ZERO, &mut rng);
        let idx: Vec<usize> = heard.iter().map(|&(i, _)| i).collect();
        assert_eq!(idx, vec![1], "only the in-range peer, never the sender");
        for &(_, at) in &heard {
            assert!(at > SimTime::ZERO);
        }
    }

    #[test]
    fn determinism_per_seed() {
        let medium = Medium::wifi_outdoor();
        let receivers = Receiver::grid(Point::ORIGIN, 3, 3, 150.0, 300.0);
        let run = |seed: u64| {
            let mut rng = SimRng::seed(seed);
            let mut log = Vec::new();
            for i in 0..50 {
                let p = Point::new(i as f64 * 7.0, i as f64 * 3.0);
                let hits =
                    medium.uplink(p, &frame(), &receivers, SimTime::from_millis(i), &mut rng);
                log.push(hits.len());
            }
            log
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }
}
