//! Fixed-network receivers.
//!
//! "These are arranged such that their effective receiving areas may
//! overlap. Such coverage improves data reception but causes potential
//! duplication of data messages" (§4.2). Each reception is tagged with
//! the hearing receiver and an RSSI — the raw material from which the
//! Location Service infers sensor positions "without the active
//! involvement of the sensors" (§5).

use bytes::Bytes;
use core::fmt;
use garnet_simkit::SimTime;
use serde::{Deserialize, Serialize};

use crate::geometry::{Disk, Point};

/// Identifier of one fixed receiver.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ReceiverId(u32);

impl ReceiverId {
    /// Creates a receiver id.
    pub const fn new(raw: u32) -> Self {
        ReceiverId(raw)
    }

    /// The raw value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for ReceiverId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ReceiverId({})", self.0)
    }
}

impl fmt::Display for ReceiverId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rx{}", self.0)
    }
}

/// One fixed receiver installation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Receiver {
    id: ReceiverId,
    position: Point,
    range_m: f64,
}

impl Receiver {
    /// Creates a receiver at `position` with nominal listening range
    /// `range_m` (propagation may further limit actual reception).
    pub fn new(id: ReceiverId, position: Point, range_m: f64) -> Self {
        Receiver { id, position, range_m: range_m.max(0.0) }
    }

    /// The receiver's identity.
    pub fn id(&self) -> ReceiverId {
        self.id
    }

    /// Installation position.
    pub fn position(&self) -> Point {
        self.position
    }

    /// Nominal listening range (m).
    pub fn range_m(&self) -> f64 {
        self.range_m
    }

    /// The nominal coverage disk.
    pub fn coverage(&self) -> Disk {
        Disk::new(self.position, self.range_m)
    }

    /// Lays out an `nx × ny` grid of receivers with the given spacing,
    /// starting at `origin`. `range_m > spacing` yields the overlapping
    /// coverage of §4.2.
    pub fn grid(
        origin: Point,
        nx: usize,
        ny: usize,
        spacing_m: f64,
        range_m: f64,
    ) -> Vec<Receiver> {
        let mut out = Vec::with_capacity(nx * ny);
        let mut id = 0u32;
        for j in 0..ny {
            for i in 0..nx {
                out.push(Receiver::new(
                    ReceiverId::new(id),
                    origin.offset(i as f64 * spacing_m, j as f64 * spacing_m),
                    range_m,
                ));
                id += 1;
            }
        }
        out
    }
}

/// One frame as heard by one receiver. The same transmission heard by
/// `k` overlapping receivers produces `k` `Reception`s — the duplication
/// the Filtering Service removes.
#[derive(Clone, Debug, PartialEq)]
pub struct Reception {
    /// Which receiver heard the frame.
    pub receiver: ReceiverId,
    /// When the frame arrived at the fixed network.
    pub received_at: SimTime,
    /// Received signal strength (dBm), for location inference.
    pub rssi_dbm: f64,
    /// The frame bytes as received (possibly corrupted in flight; the
    /// wire CRC decides).
    pub frame: Bytes,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_disk_matches_parameters() {
        let r = Receiver::new(ReceiverId::new(7), Point::new(10.0, 20.0), 30.0);
        let d = r.coverage();
        assert_eq!(d.center, Point::new(10.0, 20.0));
        assert_eq!(d.radius, 30.0);
        assert_eq!(r.id().as_u32(), 7);
    }

    #[test]
    fn negative_range_clamped() {
        let r = Receiver::new(ReceiverId::new(0), Point::ORIGIN, -5.0);
        assert_eq!(r.range_m(), 0.0);
    }

    #[test]
    fn grid_has_unique_ids_and_positions() {
        let rs = Receiver::grid(Point::ORIGIN, 4, 3, 50.0, 80.0);
        assert_eq!(rs.len(), 12);
        let mut ids: Vec<u32> = rs.iter().map(|r| r.id().as_u32()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 12);
        assert_eq!(rs[0].position(), Point::ORIGIN);
        assert_eq!(rs[11].position(), Point::new(150.0, 100.0));
    }

    #[test]
    fn grid_overlap_when_range_exceeds_spacing() {
        let rs = Receiver::grid(Point::ORIGIN, 2, 1, 50.0, 80.0);
        assert!(rs[0].coverage().intersects(&rs[1].coverage()));
        let sparse = Receiver::grid(Point::ORIGIN, 2, 1, 200.0, 80.0);
        assert!(!sparse[0].coverage().intersects(&sparse[1].coverage()));
    }

    #[test]
    fn display_formats() {
        assert_eq!(ReceiverId::new(3).to_string(), "rx3");
    }
}
