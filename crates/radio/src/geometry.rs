//! Planar geometry for the sensor field: points, disks and rectangles.
//!
//! The deployment plane uses metres in an arbitrary fixed frame shared by
//! receivers, transmitters and the Location Service.

use core::fmt;
use serde::{Deserialize, Serialize};

/// A point (or free vector) in the deployment plane, metres.
#[derive(Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Easting (m).
    pub x: f64,
    /// Northing (m).
    pub y: f64,
}

impl Point {
    /// The origin.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance_to(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Squared distance (avoids the square root on hot paths).
    pub fn distance_sq(self, other: Point) -> f64 {
        (self.x - other.x).powi(2) + (self.y - other.y).powi(2)
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    /// `t` outside `[0,1]` extrapolates.
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(self.x + (other.x - self.x) * t, self.y + (other.y - self.y) * t)
    }

    /// Component-wise addition.
    pub fn offset(self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}m, {:.1}m)", self.x, self.y)
    }
}

/// A closed disk: the coverage area of a receiver or transmitter.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Disk {
    /// Centre of the disk.
    pub center: Point,
    /// Radius (m); never negative.
    pub radius: f64,
}

impl Disk {
    /// Creates a disk; the radius is clamped to be non-negative.
    pub fn new(center: Point, radius: f64) -> Self {
        Disk { center, radius: radius.max(0.0) }
    }

    /// True if `p` lies inside or on the boundary.
    pub fn contains(&self, p: Point) -> bool {
        self.center.distance_sq(p) <= self.radius * self.radius
    }

    /// True if the two disks share at least one point.
    pub fn intersects(&self, other: &Disk) -> bool {
        let d = self.center.distance_to(other.center);
        d <= self.radius + other.radius
    }
}

/// An axis-aligned rectangle: deployment bounds for mobility models.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from two opposite corners (any order).
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// A square of side `side` with its lower-left corner at the origin.
    pub fn square(side: f64) -> Self {
        Rect::new(Point::ORIGIN, Point::new(side, side))
    }

    /// True if `p` lies inside or on the boundary.
    pub fn contains(&self, p: Point) -> bool {
        (self.min.x..=self.max.x).contains(&p.x) && (self.min.y..=self.max.y).contains(&p.y)
    }

    /// Width (m).
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (m).
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Centre point.
    pub fn center(&self) -> Point {
        Point::new((self.min.x + self.max.x) / 2.0, (self.min.y + self.max.y) / 2.0)
    }

    /// Clamps `p` into the rectangle.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(p.x.clamp(self.min.x, self.max.x), p.y.clamp(self.min.y, self.max.y))
    }
}

/// Weighted centroid of a set of points; the primitive the Location
/// Service uses to infer a sensor's position from receiver observations.
///
/// Returns `None` for an empty set or all-zero weights.
pub fn weighted_centroid(points: &[(Point, f64)]) -> Option<Point> {
    let total: f64 = points.iter().map(|(_, w)| w.max(0.0)).sum();
    if points.is_empty() || total <= 0.0 {
        return None;
    }
    let mut x = 0.0;
    let mut y = 0.0;
    for (p, w) in points {
        let w = w.max(0.0);
        x += p.x * w;
        y += p.y * w;
    }
    Some(Point::new(x / total, y / total))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_basics() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance_to(b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance_sq(b), 25.0);
        assert_eq!(a.distance_to(a), 0.0);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -10.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(5.0, -5.0));
    }

    #[test]
    fn disk_contains_boundary() {
        let d = Disk::new(Point::ORIGIN, 5.0);
        assert!(d.contains(Point::new(5.0, 0.0)));
        assert!(d.contains(Point::new(3.0, 3.9)));
        assert!(!d.contains(Point::new(5.1, 0.0)));
    }

    #[test]
    fn disk_negative_radius_clamped() {
        let d = Disk::new(Point::ORIGIN, -1.0);
        assert_eq!(d.radius, 0.0);
        assert!(d.contains(Point::ORIGIN));
    }

    #[test]
    fn disk_intersection() {
        let a = Disk::new(Point::new(0.0, 0.0), 3.0);
        let b = Disk::new(Point::new(5.0, 0.0), 2.0);
        let c = Disk::new(Point::new(10.0, 0.0), 1.0);
        assert!(a.intersects(&b)); // tangent
        assert!(!a.intersects(&c));
    }

    #[test]
    fn rect_normalises_corners() {
        let r = Rect::new(Point::new(5.0, -1.0), Point::new(-2.0, 7.0));
        assert_eq!(r.min, Point::new(-2.0, -1.0));
        assert_eq!(r.max, Point::new(5.0, 7.0));
        assert_eq!(r.width(), 7.0);
        assert_eq!(r.height(), 8.0);
    }

    #[test]
    fn rect_contains_and_clamp() {
        let r = Rect::square(10.0);
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(10.0, 10.0)));
        assert!(!r.contains(Point::new(10.1, 5.0)));
        assert_eq!(r.clamp(Point::new(-3.0, 20.0)), Point::new(0.0, 10.0));
        assert_eq!(r.center(), Point::new(5.0, 5.0));
    }

    #[test]
    fn centroid_of_empty_is_none() {
        assert_eq!(weighted_centroid(&[]), None);
        assert_eq!(weighted_centroid(&[(Point::ORIGIN, 0.0)]), None);
    }

    #[test]
    fn centroid_unweighted_is_mean() {
        let pts = [
            (Point::new(0.0, 0.0), 1.0),
            (Point::new(10.0, 0.0), 1.0),
            (Point::new(5.0, 9.0), 1.0),
        ];
        let c = weighted_centroid(&pts).unwrap();
        assert!((c.x - 5.0).abs() < 1e-12);
        assert!((c.y - 3.0).abs() < 1e-12);
    }

    #[test]
    fn centroid_weights_pull() {
        let pts = [(Point::new(0.0, 0.0), 3.0), (Point::new(10.0, 0.0), 1.0)];
        let c = weighted_centroid(&pts).unwrap();
        assert!((c.x - 2.5).abs() < 1e-12);
    }

    #[test]
    fn centroid_ignores_negative_weights() {
        let pts = [(Point::new(0.0, 0.0), 1.0), (Point::new(10.0, 0.0), -5.0)];
        let c = weighted_centroid(&pts).unwrap();
        assert_eq!(c, Point::new(0.0, 0.0));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn distance_is_symmetric(ax in -1e4f64..1e4, ay in -1e4f64..1e4, bx in -1e4f64..1e4, by in -1e4f64..1e4) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            prop_assert!((a.distance_to(b) - b.distance_to(a)).abs() < 1e-9);
        }

        #[test]
        fn triangle_inequality(ax in -1e3f64..1e3, ay in -1e3f64..1e3, bx in -1e3f64..1e3, by in -1e3f64..1e3, cx in -1e3f64..1e3, cy in -1e3f64..1e3) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let c = Point::new(cx, cy);
            prop_assert!(a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-9);
        }

        #[test]
        fn clamp_result_is_contained(px in -1e5f64..1e5, py in -1e5f64..1e5, side in 1.0f64..1e3) {
            let r = Rect::square(side);
            prop_assert!(r.contains(r.clamp(Point::new(px, py))));
        }

        #[test]
        fn centroid_lies_in_bounding_box(
            pts in proptest::collection::vec(((-1e3f64..1e3), (-1e3f64..1e3), (0.01f64..10.0)), 1..20)
        ) {
            let weighted: Vec<(Point, f64)> = pts.iter().map(|&(x, y, w)| (Point::new(x, y), w)).collect();
            let c = weighted_centroid(&weighted).unwrap();
            let minx = weighted.iter().map(|(p, _)| p.x).fold(f64::INFINITY, f64::min);
            let maxx = weighted.iter().map(|(p, _)| p.x).fold(f64::NEG_INFINITY, f64::max);
            let miny = weighted.iter().map(|(p, _)| p.y).fold(f64::INFINITY, f64::min);
            let maxy = weighted.iter().map(|(p, _)| p.y).fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(c.x >= minx - 1e-9 && c.x <= maxx + 1e-9);
            prop_assert!(c.y >= miny - 1e-9 && c.y <= maxy + 1e-9);
        }
    }
}
