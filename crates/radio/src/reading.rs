//! The payload carried by simulated sensors: one scalar reading.
//!
//! Garnet treats payloads as opaque (§4.3); this is the *application*
//! convention our simulated sensors and example consumers agree on. Real
//! deployments would define their own payload schemata — nothing in the
//! middleware depends on this format.

use garnet_simkit::SimTime;

use crate::geometry::Point;

/// One sensed sample: a value plus the instant it was sensed, and
/// optionally the sensing position (only for location-aware sensors).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Reading {
    /// The sampled field value.
    pub value: f64,
    /// When the sample was taken (µs of simulation time).
    pub sensed_at_us: u64,
    /// The sensing position, if the sensor is location-aware.
    pub position: Option<Point>,
}

impl Reading {
    /// Encoded size without position.
    pub const BASE_LEN: usize = 16;
    /// Encoded size with position.
    pub const LOCATED_LEN: usize = 32;

    /// Creates a reading without position.
    pub fn new(value: f64, sensed_at: SimTime) -> Self {
        Reading { value, sensed_at_us: sensed_at.as_micros(), position: None }
    }

    /// Creates a reading tagged with the sensing position.
    pub fn located(value: f64, sensed_at: SimTime, position: Point) -> Self {
        Reading { value, sensed_at_us: sensed_at.as_micros(), position: Some(position) }
    }

    /// Encodes to the agreed payload bytes (16 or 32 bytes).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(if self.position.is_some() {
            Self::LOCATED_LEN
        } else {
            Self::BASE_LEN
        });
        out.extend_from_slice(&self.value.to_be_bytes());
        out.extend_from_slice(&self.sensed_at_us.to_be_bytes());
        if let Some(p) = self.position {
            out.extend_from_slice(&p.x.to_be_bytes());
            out.extend_from_slice(&p.y.to_be_bytes());
        }
        out
    }

    /// Decodes a payload produced by [`Reading::encode`].
    ///
    /// Returns `None` if the payload has neither the base nor the located
    /// length (e.g. it belongs to a different application or is
    /// encrypted).
    pub fn decode(payload: &[u8]) -> Option<Reading> {
        let f64_at = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&payload[i..i + 8]);
            f64::from_be_bytes(b)
        };
        let u64_at = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&payload[i..i + 8]);
            u64::from_be_bytes(b)
        };
        match payload.len() {
            Self::BASE_LEN => {
                Some(Reading { value: f64_at(0), sensed_at_us: u64_at(8), position: None })
            }
            Self::LOCATED_LEN => Some(Reading {
                value: f64_at(0),
                sensed_at_us: u64_at(8),
                position: Some(Point::new(f64_at(16), f64_at(24))),
            }),
            _ => None,
        }
    }

    /// The sensing instant as a [`SimTime`].
    pub fn sensed_at(&self) -> SimTime {
        SimTime::from_micros(self.sensed_at_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_round_trip() {
        let r = Reading::new(21.625, SimTime::from_millis(1500));
        let bytes = r.encode();
        assert_eq!(bytes.len(), Reading::BASE_LEN);
        assert_eq!(Reading::decode(&bytes), Some(r));
    }

    #[test]
    fn located_round_trip() {
        let r = Reading::located(-4.5, SimTime::from_secs(3), Point::new(12.0, -7.5));
        let bytes = r.encode();
        assert_eq!(bytes.len(), Reading::LOCATED_LEN);
        assert_eq!(Reading::decode(&bytes), Some(r));
    }

    #[test]
    fn wrong_length_is_none() {
        assert_eq!(Reading::decode(&[0u8; 15]), None);
        assert_eq!(Reading::decode(&[0u8; 17]), None);
        assert_eq!(Reading::decode(&[]), None);
    }

    #[test]
    fn special_float_values_survive() {
        for v in [f64::INFINITY, f64::NEG_INFINITY, f64::MIN_POSITIVE, 0.0, -0.0] {
            let r = Reading::new(v, SimTime::ZERO);
            let back = Reading::decode(&r.encode()).unwrap();
            assert_eq!(back.value.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn sensed_at_accessor() {
        let r = Reading::new(0.0, SimTime::from_micros(777));
        assert_eq!(r.sensed_at(), SimTime::from_micros(777));
    }
}
