//! Radio propagation models: delivery probability and received signal
//! strength as functions of distance.
//!
//! Two models are provided. [`Propagation::UnitDisk`] is the classic
//! analytic idealisation (certain delivery inside a range, nothing
//! outside) useful for isolating middleware behaviour from channel
//! noise. [`Propagation::LogDistance`] is the standard log-distance path
//! loss model with shadowing, matching the 802.11b-class links of the
//! paper's testbed; it also yields an RSSI from which the Location
//! Service can estimate distance ([`Propagation::estimate_distance`]).

use garnet_simkit::SimRng;
use serde::{Deserialize, Serialize};

/// A propagation model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Propagation {
    /// Deterministic delivery within `range_m`, none beyond.
    UnitDisk {
        /// Reception range (m).
        range_m: f64,
    },
    /// Log-distance path loss with Gaussian shadowing.
    ///
    /// `PL(d) = pl0_db + 10·n·log10(d/d0) + X`, `X ~ N(0, shadowing_db²)`.
    /// A frame is delivered iff received power `tx_power_dbm − PL(d)`
    /// clears `sensitivity_dbm`.
    LogDistance {
        /// Transmit power (dBm); 802.11b-class ≈ 15 dBm.
        tx_power_dbm: f64,
        /// Path loss at the reference distance of 1 m (dB); ~40 dB at
        /// 2.4 GHz.
        pl0_db: f64,
        /// Path-loss exponent; 2 = free space, 3–4 = cluttered outdoor.
        exponent: f64,
        /// Standard deviation of log-normal shadowing (dB).
        shadowing_db: f64,
        /// Receiver sensitivity (dBm); ~-85 dBm for 802.11b at 11 Mb/s.
        sensitivity_dbm: f64,
    },
}

impl Propagation {
    /// A log-distance model with 802.11b-flavoured defaults.
    pub fn wifi_outdoor() -> Propagation {
        Propagation::LogDistance {
            tx_power_dbm: 15.0,
            pl0_db: 40.0,
            exponent: 3.0,
            shadowing_db: 4.0,
            sensitivity_dbm: -85.0,
        }
    }

    /// Mean received power (dBm) at `distance_m`, before shadowing.
    /// For [`Propagation::UnitDisk`] a synthetic linear ramp is returned
    /// so that RSSI-weighted location inference still works.
    pub fn mean_rssi_dbm(&self, distance_m: f64) -> f64 {
        let d = distance_m.max(0.1);
        match *self {
            Propagation::UnitDisk { range_m } => {
                // -30 dBm touching the receiver, -90 dBm at the range edge.
                -30.0 - 60.0 * (d / range_m.max(0.1)).min(2.0)
            }
            Propagation::LogDistance { tx_power_dbm, pl0_db, exponent, .. } => {
                tx_power_dbm - pl0_db - 10.0 * exponent * (d).log10()
            }
        }
    }

    /// Draws whether a frame at `distance_m` is delivered and, if so, the
    /// observed RSSI (with shadowing applied).
    pub fn deliver(&self, distance_m: f64, rng: &mut SimRng) -> Option<f64> {
        match *self {
            Propagation::UnitDisk { range_m } => {
                if distance_m <= range_m {
                    Some(self.mean_rssi_dbm(distance_m))
                } else {
                    None
                }
            }
            Propagation::LogDistance { shadowing_db, sensitivity_dbm, .. } => {
                let rssi = self.mean_rssi_dbm(distance_m) + rng.standard_normal() * shadowing_db;
                if rssi >= sensitivity_dbm {
                    Some(rssi)
                } else {
                    None
                }
            }
        }
    }

    /// Inverts the mean path loss: the distance (m) at which
    /// `mean_rssi_dbm` would equal `rssi_dbm`. Used for location
    /// inference; shadowing makes this an *estimate*.
    pub fn estimate_distance(&self, rssi_dbm: f64) -> f64 {
        match *self {
            Propagation::UnitDisk { range_m } => {
                (((-30.0 - rssi_dbm) / 60.0) * range_m).clamp(0.0, 2.0 * range_m)
            }
            Propagation::LogDistance { tx_power_dbm, pl0_db, exponent, .. } => {
                let pl = tx_power_dbm - pl0_db - rssi_dbm;
                10f64.powf(pl / (10.0 * exponent)).max(0.1)
            }
        }
    }

    /// The distance beyond which delivery is impossible (unit disk) or
    /// has under ~2% probability (log-distance, 2σ margin). Used to prune
    /// receiver candidates.
    pub fn practical_range(&self) -> f64 {
        match *self {
            Propagation::UnitDisk { range_m } => range_m,
            Propagation::LogDistance {
                tx_power_dbm,
                pl0_db,
                exponent,
                shadowing_db,
                sensitivity_dbm,
            } => {
                let margin_db = tx_power_dbm - pl0_db - sensitivity_dbm + 2.0 * shadowing_db;
                10f64.powf(margin_db / (10.0 * exponent))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_disk_is_sharp() {
        let p = Propagation::UnitDisk { range_m: 50.0 };
        let mut rng = SimRng::seed(1);
        assert!(p.deliver(49.9, &mut rng).is_some());
        assert!(p.deliver(50.0, &mut rng).is_some());
        assert!(p.deliver(50.1, &mut rng).is_none());
    }

    #[test]
    fn unit_disk_rssi_decreases_with_distance() {
        let p = Propagation::UnitDisk { range_m: 100.0 };
        assert!(p.mean_rssi_dbm(10.0) > p.mean_rssi_dbm(50.0));
        assert!(p.mean_rssi_dbm(50.0) > p.mean_rssi_dbm(99.0));
    }

    #[test]
    fn log_distance_delivery_probability_falls_with_distance() {
        let p = Propagation::wifi_outdoor();
        let mut rng = SimRng::seed(42);
        let rate = |d: f64, rng: &mut SimRng| {
            (0..2000).filter(|_| p.deliver(d, rng).is_some()).count() as f64 / 2000.0
        };
        let near = rate(10.0, &mut rng);
        let mid = rate(100.0, &mut rng);
        let far = rate(1000.0, &mut rng);
        assert!(near > 0.99, "near={near}");
        assert!(mid > near - 0.5 && mid <= near);
        assert!(far < 0.05, "far={far}");
        assert!(near >= mid && mid >= far);
    }

    #[test]
    fn estimate_distance_inverts_mean_rssi() {
        let p = Propagation::wifi_outdoor();
        for d in [1.0, 5.0, 20.0, 100.0, 300.0] {
            let rssi = p.mean_rssi_dbm(d);
            let est = p.estimate_distance(rssi);
            assert!((est - d).abs() / d < 0.01, "d={d} est={est}");
        }
    }

    #[test]
    fn unit_disk_estimate_inverts_ramp() {
        let p = Propagation::UnitDisk { range_m: 80.0 };
        for d in [1.0, 20.0, 60.0] {
            let est = p.estimate_distance(p.mean_rssi_dbm(d));
            assert!((est - d).abs() < 0.5, "d={d} est={est}");
        }
    }

    #[test]
    fn practical_range_bounds_delivery() {
        let p = Propagation::wifi_outdoor();
        let r = p.practical_range();
        let mut rng = SimRng::seed(9);
        let hits = (0..2000).filter(|_| p.deliver(r * 1.5, &mut rng).is_some()).count();
        assert!(hits < 40, "delivery beyond practical range should be rare, got {hits}/2000");
    }

    #[test]
    fn zero_distance_does_not_blow_up() {
        let p = Propagation::wifi_outdoor();
        assert!(p.mean_rssi_dbm(0.0).is_finite());
        let u = Propagation::UnitDisk { range_m: 10.0 };
        assert!(u.mean_rssi_dbm(0.0).is_finite());
    }
}
