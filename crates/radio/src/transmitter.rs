//! Fixed-network transmitters for the return actuation path.
//!
//! "Based on the location area, the appropriate set of Transmitters
//! broadcast the request, whereupon it may be received by the sensor
//! node" (§4.2). The Message Replicator chooses which transmitters to
//! drive; the trade-off between flooding every transmitter and targeting
//! the inferred location area is experiment E9.

use core::fmt;
use serde::{Deserialize, Serialize};

use crate::geometry::{Disk, Point};

/// Identifier of one fixed transmitter.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TransmitterId(u32);

impl TransmitterId {
    /// Creates a transmitter id.
    pub const fn new(raw: u32) -> Self {
        TransmitterId(raw)
    }

    /// The raw value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for TransmitterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TransmitterId({})", self.0)
    }
}

impl fmt::Display for TransmitterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx{}", self.0)
    }
}

/// One fixed transmitter installation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Transmitter {
    id: TransmitterId,
    position: Point,
    range_m: f64,
}

impl Transmitter {
    /// Creates a transmitter at `position` with broadcast range `range_m`.
    pub fn new(id: TransmitterId, position: Point, range_m: f64) -> Self {
        Transmitter { id, position, range_m: range_m.max(0.0) }
    }

    /// The transmitter's identity.
    pub fn id(&self) -> TransmitterId {
        self.id
    }

    /// Installation position.
    pub fn position(&self) -> Point {
        self.position
    }

    /// Broadcast range (m).
    pub fn range_m(&self) -> f64 {
        self.range_m
    }

    /// The broadcast coverage disk.
    pub fn coverage(&self) -> Disk {
        Disk::new(self.position, self.range_m)
    }

    /// Lays out an `nx × ny` grid of transmitters (usually co-located
    /// with the receiver grid).
    pub fn grid(
        origin: Point,
        nx: usize,
        ny: usize,
        spacing_m: f64,
        range_m: f64,
    ) -> Vec<Transmitter> {
        let mut out = Vec::with_capacity(nx * ny);
        let mut id = 0u32;
        for j in 0..ny {
            for i in 0..nx {
                out.push(Transmitter::new(
                    TransmitterId::new(id),
                    origin.offset(i as f64 * spacing_m, j as f64 * spacing_m),
                    range_m,
                ));
                id += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_and_accessors() {
        let t = Transmitter::new(TransmitterId::new(1), Point::new(5.0, 5.0), 100.0);
        assert!(t.coverage().contains(Point::new(50.0, 5.0)));
        assert!(!t.coverage().contains(Point::new(200.0, 5.0)));
        assert_eq!(t.id().to_string(), "tx1");
    }

    #[test]
    fn grid_matches_receiver_layout() {
        let ts = Transmitter::grid(Point::ORIGIN, 3, 2, 100.0, 120.0);
        assert_eq!(ts.len(), 6);
        assert_eq!(ts[5].position(), Point::new(200.0, 100.0));
    }
}
