//! Sensor energy accounting.
//!
//! The RETRI comparison (Elson & Estrin, cited in §7) is fundamentally an
//! *energy* argument: fewer identifier bits per message means fewer
//! nanojoules per reading. This module prices transmissions and
//! receptions so experiment E6 can reproduce that trade-off against
//! Garnet's stable 32-bit StreamIDs.
//!
//! The cost model is the standard first-order radio model
//! (e.g. Heinzelman et al., reference 9 in the paper): a fixed
//! per-frame startup cost plus a per-bit cost.

use serde::{Deserialize, Serialize};

/// Energy prices for one radio.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Fixed cost to power up the transmitter for one frame (nJ).
    pub tx_startup_nj: u64,
    /// Cost per transmitted bit (nJ).
    pub tx_per_bit_nj: u64,
    /// Fixed cost to receive one frame (nJ).
    pub rx_startup_nj: u64,
    /// Cost per received bit (nJ).
    pub rx_per_bit_nj: u64,
}

impl EnergyModel {
    /// First-order defaults in the range used by the microsensor
    /// literature: 50 nJ/bit radio electronics + startup overheads.
    pub const fn microsensor() -> EnergyModel {
        EnergyModel {
            tx_startup_nj: 2_000,
            tx_per_bit_nj: 50,
            rx_startup_nj: 1_000,
            rx_per_bit_nj: 50,
        }
    }

    /// Energy to transmit a frame of `bytes` (nJ).
    pub fn tx_cost_nj(&self, bytes: usize) -> u64 {
        self.tx_startup_nj + self.tx_per_bit_nj * (bytes as u64) * 8
    }

    /// Energy to receive a frame of `bytes` (nJ).
    pub fn rx_cost_nj(&self, bytes: usize) -> u64 {
        self.rx_startup_nj + self.rx_per_bit_nj * (bytes as u64) * 8
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::microsensor()
    }
}

/// A battery/energy ledger for one node.
///
/// # Example
///
/// ```
/// use garnet_radio::{EnergyMeter, EnergyModel};
///
/// let mut meter = EnergyMeter::with_budget_nj(1_000_000);
/// meter.debit_tx(&EnergyModel::microsensor(), 16);
/// assert!(meter.consumed_nj() > 0);
/// assert!(!meter.is_exhausted());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnergyMeter {
    consumed_nj: u64,
    budget_nj: Option<u64>,
    tx_frames: u64,
    rx_frames: u64,
}

impl EnergyMeter {
    /// A meter with unlimited budget (mains-powered or not modelled).
    pub const fn unlimited() -> EnergyMeter {
        EnergyMeter { consumed_nj: 0, budget_nj: None, tx_frames: 0, rx_frames: 0 }
    }

    /// A meter that is exhausted once `budget_nj` nanojoules are spent.
    pub const fn with_budget_nj(budget_nj: u64) -> EnergyMeter {
        EnergyMeter { consumed_nj: 0, budget_nj: Some(budget_nj), tx_frames: 0, rx_frames: 0 }
    }

    /// Records a transmission of `bytes`, returning its cost (nJ).
    pub fn debit_tx(&mut self, model: &EnergyModel, bytes: usize) -> u64 {
        let cost = model.tx_cost_nj(bytes);
        self.consumed_nj = self.consumed_nj.saturating_add(cost);
        self.tx_frames += 1;
        cost
    }

    /// Records a reception of `bytes`, returning its cost (nJ).
    pub fn debit_rx(&mut self, model: &EnergyModel, bytes: usize) -> u64 {
        let cost = model.rx_cost_nj(bytes);
        self.consumed_nj = self.consumed_nj.saturating_add(cost);
        self.rx_frames += 1;
        cost
    }

    /// Total energy spent so far (nJ).
    pub fn consumed_nj(&self) -> u64 {
        self.consumed_nj
    }

    /// Frames transmitted.
    pub fn tx_frames(&self) -> u64 {
        self.tx_frames
    }

    /// Frames received.
    pub fn rx_frames(&self) -> u64 {
        self.rx_frames
    }

    /// True once the budget (if any) is spent; an exhausted node falls
    /// silent, which upstream services observe as a dead stream.
    pub fn is_exhausted(&self) -> bool {
        matches!(self.budget_nj, Some(b) if self.consumed_nj >= b)
    }

    /// Remaining energy, or `None` for unlimited meters.
    pub fn remaining_nj(&self) -> Option<u64> {
        self.budget_nj.map(|b| b.saturating_sub(self.consumed_nj))
    }
}

impl Default for EnergyMeter {
    fn default() -> Self {
        Self::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_cost_is_affine_in_bytes() {
        let m = EnergyModel::microsensor();
        let c0 = m.tx_cost_nj(0);
        let c10 = m.tx_cost_nj(10);
        let c20 = m.tx_cost_nj(20);
        assert_eq!(c0, m.tx_startup_nj);
        assert_eq!(c20 - c10, c10 - c0);
        assert_eq!(c10 - c0, 10 * 8 * m.tx_per_bit_nj);
    }

    #[test]
    fn meter_accumulates_and_counts() {
        let mut meter = EnergyMeter::unlimited();
        let m = EnergyModel::microsensor();
        let a = meter.debit_tx(&m, 16);
        let b = meter.debit_rx(&m, 8);
        assert_eq!(meter.consumed_nj(), a + b);
        assert_eq!(meter.tx_frames(), 1);
        assert_eq!(meter.rx_frames(), 1);
        assert!(!meter.is_exhausted());
        assert_eq!(meter.remaining_nj(), None);
    }

    #[test]
    fn budget_exhaustion() {
        let m = EnergyModel::microsensor();
        let one_frame = m.tx_cost_nj(10);
        let mut meter = EnergyMeter::with_budget_nj(one_frame * 3);
        for _ in 0..2 {
            meter.debit_tx(&m, 10);
            assert!(!meter.is_exhausted());
        }
        meter.debit_tx(&m, 10);
        assert!(meter.is_exhausted());
        assert_eq!(meter.remaining_nj(), Some(0));
    }

    #[test]
    fn smaller_headers_cost_less_energy() {
        // The core of the RETRI argument: identifier bits are energy.
        let m = EnergyModel::microsensor();
        let garnet_header = 11; // 9 fixed + 2 CRC
        let retri_header = 4; // ~2-byte ephemeral id + 2 CRC
        assert!(m.tx_cost_nj(garnet_header) > m.tx_cost_nj(retri_header));
        assert_eq!(
            m.tx_cost_nj(garnet_header) - m.tx_cost_nj(retri_header),
            (garnet_header - retri_header) as u64 * 8 * m.tx_per_bit_nj
        );
    }
}
