//! The simulated sensor/actuator node.
//!
//! "A minimum level of sensor intelligence was assumed to allow for a
//! richer model to be developed, where both simple and sophisticated
//! sensors could coexist" (§5). A [`SensorNode`] is configured with
//! [`SensorCaps`] spanning that spectrum: a *simple* node is
//! transmit-only and ignores every control message; a *sophisticated*
//! node is receive-capable, applies [`SensorCommand`]s, piggy-backs
//! acknowledgements on its next data message (the `UPDATE_ACK` header
//! field of §4.3) and may be location-aware.
//!
//! The node is a pure state machine driven by the harness:
//! [`SensorNode::next_due`] says when it next wants to transmit,
//! [`SensorNode::poll`] produces the due transmissions, and
//! [`SensorNode::handle_request`] applies a received control message.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use bytes::Bytes;
use garnet_simkit::{SimDuration, SimTime};
use garnet_wire::crypto::PayloadKey;
use garnet_wire::{
    AckStatus, DataMessage, HeaderFlags, RequestId, SensorCommand, SensorId, SequenceNumber,
    StreamId, StreamIndex, StreamUpdateRequest,
};

use crate::energy::{EnergyMeter, EnergyModel};
use crate::field::ScalarField;
use crate::geometry::Point;
use crate::mobility::Mobility;
use crate::reading::Reading;

/// Capability profile of a node; the heterogeneity axis of §5/§6.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SensorCaps {
    /// Can the node receive control messages at all?
    pub receive_capable: bool,
    /// Does the node know its own position (and stamp it into readings)?
    pub location_aware: bool,
    /// Does the node implement duty-cycle and sleep commands?
    pub supports_power_mgmt: bool,
    /// Does the node implement per-stream payload encryption?
    pub supports_encryption: bool,
    /// Does the node re-broadcast overheard peer frames (§8 multi-hop:
    /// one relay hop, tagged `RELAYED | MULTI_HOP` in the header)?
    pub relay_capable: bool,
}

impl SensorCaps {
    /// A transmit-only "dumb" sensor: broadcasts readings, hears nothing.
    pub const fn simple() -> SensorCaps {
        SensorCaps {
            receive_capable: false,
            location_aware: false,
            supports_power_mgmt: false,
            supports_encryption: false,
            relay_capable: false,
        }
    }

    /// A fully featured send-receive node.
    pub const fn sophisticated() -> SensorCaps {
        SensorCaps {
            receive_capable: true,
            location_aware: true,
            supports_power_mgmt: true,
            supports_encryption: true,
            relay_capable: false,
        }
    }

    /// Receive-capable but not location-aware — the common middle class
    /// that makes inferred location (§5) necessary.
    pub const fn receive_only() -> SensorCaps {
        SensorCaps {
            receive_capable: true,
            location_aware: false,
            supports_power_mgmt: true,
            supports_encryption: false,
            relay_capable: false,
        }
    }

    /// A relay node: sophisticated, plus re-broadcasting of overheard
    /// peer frames toward the fixed network.
    pub const fn relay() -> SensorCaps {
        SensorCaps {
            receive_capable: true,
            location_aware: false,
            supports_power_mgmt: true,
            supports_encryption: false,
            relay_capable: true,
        }
    }
}

/// Configuration of one internal stream.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamConfig {
    /// Reporting interval.
    pub interval: SimDuration,
    /// Whether the stream currently publishes.
    pub enabled: bool,
    /// Whether payloads are sealed with the stream key.
    pub encrypted: bool,
}

impl StreamConfig {
    /// An enabled plaintext stream with the given interval.
    pub fn every(interval: SimDuration) -> StreamConfig {
        StreamConfig { interval, enabled: true, encrypted: false }
    }
}

#[derive(Clone, Debug)]
struct StreamState {
    config: StreamConfig,
    next_due: SimTime,
    seq: SequenceNumber,
    key: Option<PayloadKey>,
}

/// A frame leaving a sensor's radio.
#[derive(Clone, Debug, PartialEq)]
pub struct Transmission {
    /// The transmitting node.
    pub sensor: SensorId,
    /// Where the radio was when it transmitted.
    pub origin: Point,
    /// When it transmitted.
    pub at: SimTime,
    /// The encoded data message.
    pub frame: Bytes,
}

/// One simulated sensor/actuator node.
#[derive(Clone, Debug)]
pub struct SensorNode {
    id: SensorId,
    caps: SensorCaps,
    mobility: Mobility,
    streams: BTreeMap<u8, StreamState>,
    duty_permille: u16,
    asleep_until: SimTime,
    meter: EnergyMeter,
    energy_model: EnergyModel,
    pending_acks: VecDeque<RequestId>,
}

impl SensorNode {
    /// Creates a stationary, simple node with no streams; configure with
    /// the `with_*` methods.
    pub fn new(id: SensorId, position: Point) -> SensorNode {
        SensorNode {
            id,
            caps: SensorCaps::simple(),
            mobility: Mobility::Stationary(position),
            streams: BTreeMap::new(),
            duty_permille: 1000,
            asleep_until: SimTime::ZERO,
            meter: EnergyMeter::unlimited(),
            energy_model: EnergyModel::microsensor(),
            pending_acks: VecDeque::new(),
        }
    }

    /// Sets the capability profile.
    #[must_use]
    pub fn with_caps(mut self, caps: SensorCaps) -> SensorNode {
        self.caps = caps;
        self
    }

    /// Sets the mobility model.
    #[must_use]
    pub fn with_mobility(mut self, mobility: Mobility) -> SensorNode {
        self.mobility = mobility;
        self
    }

    /// Adds (or replaces) an internal stream.
    #[must_use]
    pub fn with_stream(mut self, index: StreamIndex, config: StreamConfig) -> SensorNode {
        self.streams.insert(
            index.as_u8(),
            StreamState { config, next_due: SimTime::ZERO, seq: SequenceNumber::ZERO, key: None },
        );
        self
    }

    /// Provisions an encryption key for one stream (done out-of-band at
    /// deployment; the consumer side holds the same key).
    #[must_use]
    pub fn with_stream_key(mut self, index: StreamIndex, key: PayloadKey) -> SensorNode {
        if let Some(s) = self.streams.get_mut(&index.as_u8()) {
            s.key = Some(key);
        }
        self
    }

    /// Sets a finite energy budget.
    #[must_use]
    pub fn with_energy_budget_nj(mut self, budget: u64) -> SensorNode {
        self.meter = EnergyMeter::with_budget_nj(budget);
        self
    }

    /// Sets the radio energy model.
    #[must_use]
    pub fn with_energy_model(mut self, model: EnergyModel) -> SensorNode {
        self.energy_model = model;
        self
    }

    /// The node's identity.
    pub fn id(&self) -> SensorId {
        self.id
    }

    /// The capability profile.
    pub fn caps(&self) -> SensorCaps {
        self.caps
    }

    /// The node's position at `t`.
    pub fn position(&self, t: SimTime) -> Point {
        self.mobility.position(t)
    }

    /// The energy ledger.
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Total energy consumed (nJ).
    pub fn energy_consumed_nj(&self) -> u64 {
        self.meter.consumed_nj()
    }

    /// The earliest instant at which the node wants to transmit, or
    /// `None` if it never will (all streams disabled, or battery dead).
    pub fn next_due(&self) -> Option<SimTime> {
        if self.meter.is_exhausted() || self.duty_permille == 0 {
            return None;
        }
        self.streams
            .values()
            .filter(|s| s.config.enabled)
            .map(|s| s.next_due.max(self.asleep_until))
            .min()
    }

    /// Produces every transmission due at or before `now`, sampling
    /// `field` at the node's position. Streams catch up at most one
    /// message per poll interval — a sensor that slept does not burst
    /// its backlog (it sensed nothing while asleep).
    pub fn poll(&mut self, now: SimTime, field: &dyn ScalarField) -> Vec<Transmission> {
        if self.meter.is_exhausted() || now < self.asleep_until || self.duty_permille == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        let position = self.mobility.position(now);
        let caps = self.caps;
        let duty = self.duty_permille;
        for (&idx, state) in self.streams.iter_mut() {
            if !state.config.enabled || state.next_due > now {
                continue;
            }
            // Sense and build the payload.
            let value = field.sample(position, now);
            let reading = if caps.location_aware {
                Reading::located(value, now, position)
            } else {
                Reading::new(value, now)
            };
            let mut payload = reading.encode();
            let stream_id = StreamId::new(self.id, StreamIndex::new(idx));
            let mut builder = DataMessage::builder(stream_id).seq(state.seq);
            if state.config.encrypted {
                if let Some(key) = &state.key {
                    payload = key.seal(stream_id, state.seq, &payload);
                    builder = builder.flag(HeaderFlags::ENCRYPTED);
                }
            }
            builder = builder.payload(payload);
            if let Some(ack) = self.pending_acks.pop_front() {
                builder = builder.ack(ack);
            }
            let msg = builder.build().expect("payload within limits by construction");
            let frame = Bytes::from(msg.encode_to_vec());
            self.meter.debit_tx(&self.energy_model, frame.len());
            out.push(Transmission { sensor: self.id, origin: position, at: now, frame });
            state.seq = state.seq.next();
            // Schedule the next report strictly after `now` (no bursts).
            let interval = {
                let c = &state.config;
                if duty >= 1000 {
                    c.interval
                } else {
                    SimDuration::from_micros(
                        (c.interval.as_micros() as u128 * 1000 / duty.max(1) as u128)
                            .min(u64::MAX as u128) as u64,
                    )
                }
            };
            state.next_due = now.saturating_add(interval);
            if self.meter.is_exhausted() {
                break;
            }
        }
        out
    }

    /// Delivers a control message to the node's radio. Returns the
    /// acknowledgement status the node will piggy-back, or `None` if the
    /// node is not receive-capable (it never even decodes the frame) or
    /// the request targets a different sensor.
    pub fn handle_request(&mut self, req: &StreamUpdateRequest, now: SimTime) -> Option<AckStatus> {
        if !self.caps.receive_capable || self.meter.is_exhausted() {
            return None;
        }
        // Area targets were resolved by the medium (we were in the area);
        // identity targets must match us.
        match req.target {
            garnet_wire::ActuationTarget::Sensor(id) if id != self.id => return None,
            garnet_wire::ActuationTarget::Stream(s) if s.sensor() != self.id => return None,
            _ => {}
        }
        self.meter.debit_rx(&self.energy_model, req.encoded_len());
        let status = self.apply_command(&req.command, now);
        self.pending_acks.push_back(req.request_id);
        Some(status)
    }

    fn apply_command(&mut self, command: &SensorCommand, now: SimTime) -> AckStatus {
        match *command {
            SensorCommand::SetReportInterval { stream, interval_ms } => {
                if interval_ms == 0 {
                    return AckStatus::ConstraintViolation;
                }
                match self.streams.get_mut(&stream.as_u8()) {
                    Some(s) => {
                        s.config.interval = SimDuration::from_millis(u64::from(interval_ms));
                        // Re-anchor the schedule at the new cadence.
                        s.next_due = now.saturating_add(s.config.interval);
                        AckStatus::Applied
                    }
                    None => AckStatus::Unsupported,
                }
            }
            SensorCommand::EnableStream { stream } => match self.streams.get_mut(&stream.as_u8()) {
                Some(s) => {
                    if !s.config.enabled {
                        s.config.enabled = true;
                        s.next_due = now;
                    }
                    AckStatus::Applied
                }
                None => AckStatus::Unsupported,
            },
            SensorCommand::DisableStream { stream } => {
                match self.streams.get_mut(&stream.as_u8()) {
                    Some(s) => {
                        s.config.enabled = false;
                        AckStatus::Applied
                    }
                    None => AckStatus::Unsupported,
                }
            }
            SensorCommand::SetDutyCycle { permille } => {
                if !self.caps.supports_power_mgmt {
                    return AckStatus::Unsupported;
                }
                if permille > 1000 {
                    return AckStatus::ConstraintViolation;
                }
                self.duty_permille = permille;
                AckStatus::Applied
            }
            SensorCommand::Sleep { duration_ms } => {
                if !self.caps.supports_power_mgmt {
                    return AckStatus::Unsupported;
                }
                self.asleep_until =
                    now.saturating_add(SimDuration::from_millis(u64::from(duration_ms)));
                // Nothing was sensed while asleep; push schedules past the nap.
                for s in self.streams.values_mut() {
                    s.next_due = s.next_due.max(self.asleep_until);
                }
                AckStatus::Deferred
            }
            SensorCommand::Ping => AckStatus::Applied,
            SensorCommand::SetEncryption { stream, enabled } => {
                if !self.caps.supports_encryption {
                    return AckStatus::Unsupported;
                }
                match self.streams.get_mut(&stream.as_u8()) {
                    Some(s) if s.key.is_some() || !enabled => {
                        s.config.encrypted = enabled;
                        AckStatus::Applied
                    }
                    Some(_) => AckStatus::ConstraintViolation, // no key provisioned
                    None => AckStatus::Unsupported,
                }
            }
            // `SensorCommand` is non-exhaustive: future commands arrive
            // here and a simple device reports them unsupported.
            _ => AckStatus::Unsupported,
        }
    }

    /// Offers an overheard peer frame to the node for relaying.
    ///
    /// Returns the relayed transmission if the node is relay-capable,
    /// awake, within budget, the frame decodes, originates from another
    /// sensor, and has not been relayed before (single-hop relaying —
    /// the paper's §8 "initial support"). The relayed copy carries the
    /// `RELAYED | MULTI_HOP` header tags so fixed-network services can
    /// make "intelligent processing decisions".
    pub fn maybe_relay(&mut self, frame: &[u8], now: SimTime) -> Option<Transmission> {
        if !self.caps.relay_capable
            || self.meter.is_exhausted()
            || now < self.asleep_until
            || self.duty_permille == 0
        {
            return None;
        }
        let (msg, _) = DataMessage::decode(frame).ok()?;
        if msg.stream().sensor() == self.id || msg.header().has(HeaderFlags::RELAYED) {
            return None;
        }
        self.meter.debit_rx(&self.energy_model, frame.len());
        let relayed = msg.relayed_copy();
        let out = Bytes::from(relayed.encode_to_vec());
        self.meter.debit_tx(&self.energy_model, out.len());
        Some(Transmission {
            sensor: self.id,
            origin: self.mobility.position(now),
            at: now,
            frame: out,
        })
    }

    /// Current reporting interval of a stream, if it exists (test and
    /// telemetry hook).
    pub fn stream_config(&self, index: StreamIndex) -> Option<&StreamConfig> {
        self.streams.get(&index.as_u8()).map(|s| &s.config)
    }

    /// Number of acknowledgements waiting to piggy-back.
    pub fn pending_ack_count(&self) -> usize {
        self.pending_acks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Uniform;
    use garnet_wire::ActuationTarget;

    fn node() -> SensorNode {
        SensorNode::new(SensorId::new(42).unwrap(), Point::new(1.0, 2.0))
            .with_stream(StreamIndex::new(0), StreamConfig::every(SimDuration::from_secs(1)))
    }

    fn request(command: SensorCommand) -> StreamUpdateRequest {
        StreamUpdateRequest {
            request_id: RequestId::new(7),
            target: ActuationTarget::Sensor(SensorId::new(42).unwrap()),
            command,
            issued_at_us: 0,
            priority: 0,
        }
    }

    #[test]
    fn poll_produces_decodable_messages_with_increasing_seq() {
        let mut n = node();
        let field = Uniform(21.5);
        let mut seqs = Vec::new();
        for sec in 0..5u64 {
            let t = SimTime::from_secs(sec);
            for tx in n.poll(t, &field) {
                let (msg, _) = DataMessage::decode(&tx.frame).unwrap();
                assert_eq!(msg.stream().sensor().as_u32(), 42);
                let reading = Reading::decode(msg.payload()).unwrap();
                assert_eq!(reading.value, 21.5);
                seqs.push(msg.seq().as_u16());
            }
        }
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn next_due_tracks_interval() {
        let mut n = node();
        assert_eq!(n.next_due(), Some(SimTime::ZERO));
        n.poll(SimTime::ZERO, &Uniform(0.0));
        assert_eq!(n.next_due(), Some(SimTime::from_secs(1)));
    }

    #[test]
    fn disabled_stream_never_due() {
        let mut n = SensorNode::new(SensorId::new(1).unwrap(), Point::ORIGIN).with_stream(
            StreamIndex::new(0),
            StreamConfig { interval: SimDuration::from_secs(1), enabled: false, encrypted: false },
        );
        assert_eq!(n.next_due(), None);
        assert!(n.poll(SimTime::from_secs(10), &Uniform(0.0)).is_empty());
    }

    #[test]
    fn simple_sensor_ignores_requests() {
        let mut n = node(); // simple caps by default
        let r = request(SensorCommand::Ping);
        assert_eq!(n.handle_request(&r, SimTime::ZERO), None);
        assert_eq!(n.pending_ack_count(), 0);
    }

    #[test]
    fn sophisticated_sensor_acks_and_piggybacks() {
        let mut n = node().with_caps(SensorCaps::sophisticated());
        let r = request(SensorCommand::Ping);
        assert_eq!(n.handle_request(&r, SimTime::ZERO), Some(AckStatus::Applied));
        assert_eq!(n.pending_ack_count(), 1);
        let txs = n.poll(SimTime::ZERO, &Uniform(0.0));
        let (msg, _) = DataMessage::decode(&txs[0].frame).unwrap();
        assert_eq!(msg.ack(), Some(RequestId::new(7)));
        assert!(msg.header().has(HeaderFlags::UPDATE_ACK));
        assert_eq!(n.pending_ack_count(), 0);
    }

    #[test]
    fn request_for_other_sensor_ignored() {
        let mut n = node().with_caps(SensorCaps::sophisticated());
        let mut r = request(SensorCommand::Ping);
        r.target = ActuationTarget::Sensor(SensorId::new(99).unwrap());
        assert_eq!(n.handle_request(&r, SimTime::ZERO), None);
    }

    #[test]
    fn set_interval_reschedules() {
        let mut n = node().with_caps(SensorCaps::sophisticated());
        n.poll(SimTime::ZERO, &Uniform(0.0));
        let r = request(SensorCommand::SetReportInterval {
            stream: StreamIndex::new(0),
            interval_ms: 100,
        });
        assert_eq!(n.handle_request(&r, SimTime::from_millis(1)), Some(AckStatus::Applied));
        assert_eq!(
            n.stream_config(StreamIndex::new(0)).unwrap().interval,
            SimDuration::from_millis(100)
        );
        assert_eq!(n.next_due(), Some(SimTime::from_millis(101)));
    }

    #[test]
    fn zero_interval_rejected_as_constraint_violation() {
        let mut n = node().with_caps(SensorCaps::sophisticated());
        let r = request(SensorCommand::SetReportInterval {
            stream: StreamIndex::new(0),
            interval_ms: 0,
        });
        assert_eq!(n.handle_request(&r, SimTime::ZERO), Some(AckStatus::ConstraintViolation));
    }

    #[test]
    fn unknown_stream_unsupported() {
        let mut n = node().with_caps(SensorCaps::sophisticated());
        let r = request(SensorCommand::EnableStream { stream: StreamIndex::new(200) });
        assert_eq!(n.handle_request(&r, SimTime::ZERO), Some(AckStatus::Unsupported));
    }

    #[test]
    fn disable_then_enable_stream() {
        let mut n = node().with_caps(SensorCaps::sophisticated());
        n.handle_request(
            &request(SensorCommand::DisableStream { stream: StreamIndex::new(0) }),
            SimTime::ZERO,
        );
        assert!(n.poll(SimTime::from_secs(5), &Uniform(0.0)).is_empty());
        n.handle_request(
            &request(SensorCommand::EnableStream { stream: StreamIndex::new(0) }),
            SimTime::from_secs(6),
        );
        let txs = n.poll(SimTime::from_secs(6), &Uniform(0.0));
        // One data message; it may carry piggy-backed acks from the two requests.
        assert_eq!(txs.len(), 1);
    }

    #[test]
    fn duty_cycle_stretches_interval() {
        let mut n = node().with_caps(SensorCaps::sophisticated());
        n.handle_request(&request(SensorCommand::SetDutyCycle { permille: 500 }), SimTime::ZERO);
        n.poll(SimTime::ZERO, &Uniform(0.0));
        // 1s base interval at 50% duty → next report in 2s.
        assert_eq!(n.next_due(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn duty_cycle_zero_silences_node() {
        let mut n = node().with_caps(SensorCaps::sophisticated());
        n.handle_request(&request(SensorCommand::SetDutyCycle { permille: 0 }), SimTime::ZERO);
        assert_eq!(n.next_due(), None);
    }

    #[test]
    fn duty_cycle_over_1000_rejected() {
        let mut n = node().with_caps(SensorCaps::sophisticated());
        let st = n.handle_request(
            &request(SensorCommand::SetDutyCycle { permille: 1001 }),
            SimTime::ZERO,
        );
        assert_eq!(st, Some(AckStatus::ConstraintViolation));
    }

    #[test]
    fn power_mgmt_unsupported_on_limited_node() {
        let caps = SensorCaps { supports_power_mgmt: false, ..SensorCaps::receive_only() };
        let mut n = node().with_caps(caps);
        let st = n
            .handle_request(&request(SensorCommand::SetDutyCycle { permille: 100 }), SimTime::ZERO);
        assert_eq!(st, Some(AckStatus::Unsupported));
    }

    #[test]
    fn sleep_defers_and_suppresses_reports() {
        let mut n = node().with_caps(SensorCaps::sophisticated());
        let st =
            n.handle_request(&request(SensorCommand::Sleep { duration_ms: 5_000 }), SimTime::ZERO);
        assert_eq!(st, Some(AckStatus::Deferred));
        assert!(n.poll(SimTime::from_secs(3), &Uniform(0.0)).is_empty());
        assert_eq!(n.next_due(), Some(SimTime::from_secs(5)));
        assert!(!n.poll(SimTime::from_secs(5), &Uniform(0.0)).is_empty());
    }

    #[test]
    fn encryption_round_trip_through_poll() {
        let key = PayloadKey::from_bytes([9u8; 16]);
        let mut n =
            node().with_caps(SensorCaps::sophisticated()).with_stream_key(StreamIndex::new(0), key);
        n.handle_request(
            &request(SensorCommand::SetEncryption { stream: StreamIndex::new(0), enabled: true }),
            SimTime::ZERO,
        );
        let txs = n.poll(SimTime::ZERO, &Uniform(7.5));
        let (msg, _) = DataMessage::decode(&txs[0].frame).unwrap();
        assert!(msg.header().has(HeaderFlags::ENCRYPTED));
        // Opaque to anyone without the key…
        assert!(Reading::decode(msg.payload()).is_none());
        // …but the keyed consumer recovers the reading.
        let plain = key.open(msg.stream(), msg.seq(), msg.payload()).unwrap();
        assert_eq!(Reading::decode(&plain).unwrap().value, 7.5);
    }

    #[test]
    fn encryption_without_key_is_constraint_violation() {
        let mut n = node().with_caps(SensorCaps::sophisticated());
        let st = n.handle_request(
            &request(SensorCommand::SetEncryption { stream: StreamIndex::new(0), enabled: true }),
            SimTime::ZERO,
        );
        assert_eq!(st, Some(AckStatus::ConstraintViolation));
    }

    #[test]
    fn location_aware_sensor_stamps_position() {
        let mut n = node().with_caps(SensorCaps::sophisticated());
        let txs = n.poll(SimTime::ZERO, &Uniform(0.0));
        let (msg, _) = DataMessage::decode(&txs[0].frame).unwrap();
        let r = Reading::decode(msg.payload()).unwrap();
        assert_eq!(r.position, Some(Point::new(1.0, 2.0)));
    }

    #[test]
    fn energy_budget_silences_exhausted_node() {
        let model = EnergyModel::microsensor();
        let one = model.tx_cost_nj(27); // 9 hdr + 16 reading + 2 crc
        let mut n = node().with_energy_budget_nj(one * 2);
        assert_eq!(n.poll(SimTime::from_secs(0), &Uniform(0.0)).len(), 1);
        assert_eq!(n.poll(SimTime::from_secs(1), &Uniform(0.0)).len(), 1);
        assert_eq!(n.poll(SimTime::from_secs(2), &Uniform(0.0)).len(), 0);
        assert_eq!(n.next_due(), None);
        assert!(n.energy_consumed_nj() >= one * 2);
    }

    #[test]
    fn no_burst_after_gap() {
        // A node polled after a long gap emits one message per stream,
        // not a backlog.
        let mut n = node();
        let txs = n.poll(SimTime::from_secs(100), &Uniform(0.0));
        assert_eq!(txs.len(), 1);
        assert_eq!(n.next_due(), Some(SimTime::from_secs(101)));
    }

    #[test]
    fn relay_rebroadcasts_peer_frames_with_tags() {
        let mut relay = SensorNode::new(SensorId::new(99).unwrap(), Point::new(5.0, 5.0))
            .with_caps(SensorCaps::relay());
        // A frame from another sensor.
        let peer_stream = StreamId::new(SensorId::new(1).unwrap(), StreamIndex::new(0));
        let frame = DataMessage::builder(peer_stream)
            .seq(SequenceNumber::new(4))
            .payload(vec![1, 2])
            .build()
            .unwrap()
            .encode_to_vec();
        let tx = relay.maybe_relay(&frame, SimTime::from_secs(1)).expect("relays peer frame");
        assert_eq!(tx.sensor.as_u32(), 99, "relay transmits under its own radio");
        assert_eq!(tx.origin, Point::new(5.0, 5.0));
        let (msg, _) = DataMessage::decode(&tx.frame).unwrap();
        assert_eq!(msg.stream(), peer_stream, "stream identity preserved");
        assert_eq!(msg.seq().as_u16(), 4);
        assert!(msg.header().has(HeaderFlags::RELAYED));
        assert!(msg.header().has(HeaderFlags::MULTI_HOP));
        assert!(relay.energy_consumed_nj() > 0, "relaying costs rx + tx energy");
    }

    #[test]
    fn relay_refuses_own_relayed_and_garbage_frames() {
        let mut relay = SensorNode::new(SensorId::new(99).unwrap(), Point::ORIGIN)
            .with_caps(SensorCaps::relay());
        // Its own frame: no echo.
        let own =
            DataMessage::builder(StreamId::new(SensorId::new(99).unwrap(), StreamIndex::new(0)))
                .build()
                .unwrap()
                .encode_to_vec();
        assert!(relay.maybe_relay(&own, SimTime::ZERO).is_none());
        // An already-relayed frame: single-hop only.
        let peer =
            DataMessage::builder(StreamId::new(SensorId::new(1).unwrap(), StreamIndex::new(0)))
                .build()
                .unwrap();
        let relayed_once = peer.relayed_copy().encode_to_vec();
        assert!(relay.maybe_relay(&relayed_once, SimTime::ZERO).is_none());
        // Garbage bytes: ignored.
        assert!(relay.maybe_relay(&[0u8; 5], SimTime::ZERO).is_none());
        // Non-relay node: ignores everything.
        let mut plain = SensorNode::new(SensorId::new(98).unwrap(), Point::ORIGIN)
            .with_caps(SensorCaps::sophisticated());
        let fresh = peer.encode_to_vec();
        assert!(plain.maybe_relay(&fresh, SimTime::ZERO).is_none());
    }

    #[test]
    fn exhausted_or_sleeping_relay_stays_silent() {
        let peer_frame =
            DataMessage::builder(StreamId::new(SensorId::new(1).unwrap(), StreamIndex::new(0)))
                .build()
                .unwrap()
                .encode_to_vec();
        let mut broke = SensorNode::new(SensorId::new(99).unwrap(), Point::ORIGIN)
            .with_caps(SensorCaps::relay())
            .with_energy_budget_nj(1);
        // Exhaust it.
        let _ = broke.maybe_relay(&peer_frame, SimTime::ZERO);
        assert!(broke.maybe_relay(&peer_frame, SimTime::ZERO).is_none());

        let mut asleep = SensorNode::new(SensorId::new(97).unwrap(), Point::ORIGIN)
            .with_caps(SensorCaps::relay());
        asleep.handle_request(
            &StreamUpdateRequest {
                request_id: RequestId::new(1),
                target: garnet_wire::ActuationTarget::Sensor(SensorId::new(97).unwrap()),
                command: SensorCommand::Sleep { duration_ms: 10_000 },
                issued_at_us: 0,
                priority: 0,
            },
            SimTime::ZERO,
        );
        assert!(asleep.maybe_relay(&peer_frame, SimTime::from_secs(5)).is_none());
        assert!(asleep.maybe_relay(&peer_frame, SimTime::from_secs(11)).is_some());
    }

    #[test]
    fn multiple_streams_fire_independently() {
        let mut n = SensorNode::new(SensorId::new(5).unwrap(), Point::ORIGIN)
            .with_stream(StreamIndex::new(0), StreamConfig::every(SimDuration::from_secs(1)))
            .with_stream(StreamIndex::new(1), StreamConfig::every(SimDuration::from_secs(3)));
        let t0 = n.poll(SimTime::ZERO, &Uniform(0.0));
        assert_eq!(t0.len(), 2);
        let t1 = n.poll(SimTime::from_secs(1), &Uniform(0.0));
        assert_eq!(t1.len(), 1); // only stream 0 due
        let (msg, _) = DataMessage::decode(&t1[0].frame).unwrap();
        assert_eq!(msg.stream().index().as_u8(), 0);
    }
}
