//! Sensor mobility models.
//!
//! "In our model, mobile sensors transmit data over an unreliable
//! wireless medium to a fixed network infrastructure" (§3). Mobility is
//! what makes sensors "occasionally roam outside the reception zone"
//! (§4.2) and what gives the Location Service something to infer.
//!
//! A [`Mobility`] value is a *pure function of time*: `position(t)` may
//! be queried at any instant, in any order, with no hidden state — which
//! keeps the discrete-event simulation deterministic and lets services
//! replay history.

use garnet_simkit::{SimRng, SimTime};
use serde::{Deserialize, Serialize};

use crate::geometry::{Point, Rect};

/// A trajectory through the deployment plane.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Mobility {
    /// A fixed installation (mast-mounted, staked).
    Stationary(Point),
    /// Piecewise-linear movement through timestamped waypoints. Before
    /// the first waypoint the position is the first point; after the
    /// last it is the last point.
    Waypoints(Vec<(SimTimeRepr, Point)>),
    /// A closed circular orbit (animal collar, patrol drone).
    Orbit {
        /// Centre of the orbit.
        center: Point,
        /// Orbit radius (m).
        radius: f64,
        /// Time for one full revolution (µs); must be non-zero.
        period_us: u64,
        /// Starting angle (radians).
        phase: f64,
    },
}

/// Serializable mirror of a `SimTime` (µs); kept as a plain `u64` so the
/// waypoint list derives serde without orphan impls.
pub type SimTimeRepr = u64;

impl Mobility {
    /// Builds a random-waypoint trajectory: the node repeatedly picks a
    /// uniform destination in `bounds` and walks there at `speed_mps`.
    /// Waypoints are generated to cover `[0, horizon]`.
    ///
    /// # Panics
    ///
    /// Panics if `speed_mps <= 0`.
    pub fn random_waypoint(
        bounds: Rect,
        speed_mps: f64,
        horizon: SimTime,
        rng: &mut SimRng,
    ) -> Mobility {
        assert!(speed_mps > 0.0, "speed must be positive");
        let mut t = 0u64;
        let mut here = Point::new(
            bounds.min.x + rng.next_f64() * bounds.width(),
            bounds.min.y + rng.next_f64() * bounds.height(),
        );
        let mut pts = vec![(t, here)];
        while t < horizon.as_micros() {
            let dest = Point::new(
                bounds.min.x + rng.next_f64() * bounds.width(),
                bounds.min.y + rng.next_f64() * bounds.height(),
            );
            let dist = here.distance_to(dest);
            let travel_us = (dist / speed_mps * 1e6).ceil().max(1.0) as u64;
            t += travel_us;
            pts.push((t, dest));
            here = dest;
        }
        Mobility::Waypoints(pts)
    }

    /// The position at instant `t`.
    pub fn position(&self, t: SimTime) -> Point {
        match self {
            Mobility::Stationary(p) => *p,
            Mobility::Waypoints(pts) => {
                let t_us = t.as_micros();
                match pts.iter().position(|&(wt, _)| wt > t_us) {
                    // Before or at the first waypoint.
                    Some(0) => pts[0].1,
                    // Between waypoints i-1 and i: interpolate.
                    Some(i) => {
                        let (t0, p0) = pts[i - 1];
                        let (t1, p1) = pts[i];
                        let frac = (t_us - t0) as f64 / (t1 - t0) as f64;
                        p0.lerp(p1, frac)
                    }
                    // Past the final waypoint.
                    None => pts.last().map(|&(_, p)| p).unwrap_or(Point::ORIGIN),
                }
            }
            Mobility::Orbit { center, radius, period_us, phase } => {
                let period = (*period_us).max(1);
                let frac = (t.as_micros() % period) as f64 / period as f64;
                let angle = phase + frac * std::f64::consts::TAU;
                Point::new(center.x + radius * angle.cos(), center.y + radius * angle.sin())
            }
        }
    }

    /// True if the node never moves (lets hot paths skip recomputation).
    pub fn is_stationary(&self) -> bool {
        match self {
            Mobility::Stationary(_) => true,
            Mobility::Waypoints(pts) => pts.len() <= 1,
            Mobility::Orbit { radius, .. } => *radius == 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use garnet_simkit::SimDuration;

    #[test]
    fn stationary_never_moves() {
        let m = Mobility::Stationary(Point::new(3.0, 4.0));
        assert_eq!(m.position(SimTime::ZERO), Point::new(3.0, 4.0));
        assert_eq!(m.position(SimTime::from_secs(100)), Point::new(3.0, 4.0));
        assert!(m.is_stationary());
    }

    #[test]
    fn waypoints_interpolate_linearly() {
        let m = Mobility::Waypoints(vec![
            (0, Point::new(0.0, 0.0)),
            (1_000_000, Point::new(10.0, 0.0)),
            (2_000_000, Point::new(10.0, 20.0)),
        ]);
        assert_eq!(m.position(SimTime::from_micros(500_000)), Point::new(5.0, 0.0));
        assert_eq!(m.position(SimTime::from_micros(1_500_000)), Point::new(10.0, 10.0));
    }

    #[test]
    fn waypoints_clamp_outside_range() {
        let m = Mobility::Waypoints(vec![
            (1_000_000, Point::new(1.0, 1.0)),
            (2_000_000, Point::new(2.0, 2.0)),
        ]);
        assert_eq!(m.position(SimTime::ZERO), Point::new(1.0, 1.0));
        assert_eq!(m.position(SimTime::from_secs(10)), Point::new(2.0, 2.0));
        assert!(!m.is_stationary());
    }

    #[test]
    fn orbit_returns_to_start_each_period() {
        let m = Mobility::Orbit {
            center: Point::ORIGIN,
            radius: 5.0,
            period_us: 1_000_000,
            phase: 0.0,
        };
        let p0 = m.position(SimTime::ZERO);
        let p1 = m.position(SimTime::from_secs(1));
        assert!((p0.x - p1.x).abs() < 1e-9 && (p0.y - p1.y).abs() < 1e-9);
        assert!((p0.x - 5.0).abs() < 1e-9);
        // Quarter period: 90 degrees around.
        let q = m.position(SimTime::from_micros(250_000));
        assert!(q.x.abs() < 1e-9 && (q.y - 5.0).abs() < 1e-9);
    }

    #[test]
    fn random_waypoint_stays_in_bounds_and_respects_speed() {
        let bounds = Rect::square(100.0);
        let mut rng = SimRng::seed(77);
        let horizon = SimTime::from_secs(600);
        let m = Mobility::random_waypoint(bounds, 2.0, horizon, &mut rng);

        let mut t = SimTime::ZERO;
        let mut prev = m.position(t);
        while t < horizon {
            let next_t = t + SimDuration::from_secs(1);
            let next = m.position(next_t);
            assert!(bounds.contains(next), "left bounds at {next_t}: {next:?}");
            let moved = prev.distance_to(next);
            assert!(moved <= 2.0 + 1e-6, "exceeded speed: {moved} m in 1s");
            prev = next;
            t = next_t;
        }
    }

    #[test]
    fn random_waypoint_is_deterministic_per_seed() {
        let bounds = Rect::square(50.0);
        let horizon = SimTime::from_secs(60);
        let a = Mobility::random_waypoint(bounds, 1.5, horizon, &mut SimRng::seed(3));
        let b = Mobility::random_waypoint(bounds, 1.5, horizon, &mut SimRng::seed(3));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn random_waypoint_rejects_zero_speed() {
        let _ = Mobility::random_waypoint(
            Rect::square(10.0),
            0.0,
            SimTime::from_secs(1),
            &mut SimRng::seed(1),
        );
    }
}
