//! Environmental scalar fields sampled by sensors.
//!
//! A [`ScalarField`] gives each point of the plane a physical quantity at
//! each instant (temperature, contaminant concentration, water level…).
//! Sensors sample the field at their own position; consumers downstream
//! reconstruct spatial structure from many streams — which is what makes
//! multi-level consumers (§4.2) worth building.

use garnet_simkit::SimTime;

use crate::geometry::Point;

/// A time-varying scalar quantity over the plane.
///
/// Implementations must be pure: the same `(p, t)` always yields the
/// same value, keeping simulations replayable.
pub trait ScalarField {
    /// The field value at point `p` and instant `t`.
    fn sample(&self, p: Point, t: SimTime) -> f64;
}

/// A constant field (calibration runs, codec-only benchmarks).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Uniform(pub f64);

impl ScalarField for Uniform {
    fn sample(&self, _p: Point, _t: SimTime) -> f64 {
        self.0
    }
}

/// A static linear gradient: `base + gx·x + gy·y`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Gradient {
    /// Value at the origin.
    pub base: f64,
    /// Slope along x (unit per metre).
    pub gx: f64,
    /// Slope along y (unit per metre).
    pub gy: f64,
}

impl ScalarField for Gradient {
    fn sample(&self, p: Point, _t: SimTime) -> f64 {
        self.base + self.gx * p.x + self.gy * p.y
    }
}

/// A Gaussian plume drifting with constant velocity: a moving hot spot
/// (contaminant release, warm outflow, target vehicle's heat signature).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GaussianPlume {
    /// Plume centre at `t = 0`.
    pub origin: Point,
    /// Drift velocity (m/s).
    pub velocity: (f64, f64),
    /// Peak amplitude at the centre.
    pub amplitude: f64,
    /// Spatial spread (standard deviation, m).
    pub sigma_m: f64,
    /// Ambient background level.
    pub background: f64,
}

impl ScalarField for GaussianPlume {
    fn sample(&self, p: Point, t: SimTime) -> f64 {
        let secs = t.as_secs_f64();
        let center = Point::new(
            self.origin.x + self.velocity.0 * secs,
            self.origin.y + self.velocity.1 * secs,
        );
        let d2 = p.distance_sq(center);
        self.background + self.amplitude * (-d2 / (2.0 * self.sigma_m * self.sigma_m)).exp()
    }
}

/// A diurnal sinusoid plus gradient: the habitat-monitoring temperature
/// field (day/night cycle over a study plot).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Diurnal {
    /// Mean value.
    pub mean: f64,
    /// Half the peak-to-trough swing.
    pub amplitude: f64,
    /// Cycle length (s); 86 400 for a day.
    pub period_s: f64,
    /// Spatial gradient along x (unit/m) superimposed on the cycle.
    pub gx: f64,
}

impl ScalarField for Diurnal {
    fn sample(&self, p: Point, t: SimTime) -> f64 {
        let phase = t.as_secs_f64() / self.period_s * std::f64::consts::TAU;
        self.mean + self.amplitude * phase.sin() + self.gx * p.x
    }
}

/// Boxed field for heterogeneous collections.
pub type DynField = Box<dyn ScalarField + Send + Sync>;

impl ScalarField for DynField {
    fn sample(&self, p: Point, t: SimTime) -> f64 {
        self.as_ref().sample(p, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_constant_everywhere() {
        let f = Uniform(21.5);
        assert_eq!(f.sample(Point::ORIGIN, SimTime::ZERO), 21.5);
        assert_eq!(f.sample(Point::new(1e3, -1e3), SimTime::from_secs(999)), 21.5);
    }

    #[test]
    fn gradient_slopes() {
        let f = Gradient { base: 10.0, gx: 0.1, gy: -0.2 };
        assert_eq!(f.sample(Point::ORIGIN, SimTime::ZERO), 10.0);
        // 10 + 0.1·10 − 0.2·5 = 10.
        assert!((f.sample(Point::new(10.0, 5.0), SimTime::ZERO) - 10.0).abs() < 1e-12);
        assert!((f.sample(Point::new(20.0, 0.0), SimTime::ZERO) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn plume_peak_moves_with_velocity() {
        let f = GaussianPlume {
            origin: Point::ORIGIN,
            velocity: (1.0, 0.0),
            amplitude: 100.0,
            sigma_m: 10.0,
            background: 5.0,
        };
        // At t=0 the peak is at the origin.
        assert!((f.sample(Point::ORIGIN, SimTime::ZERO) - 105.0).abs() < 1e-9);
        // At t=60s the peak has moved 60 m along x.
        let moved = Point::new(60.0, 0.0);
        assert!((f.sample(moved, SimTime::from_secs(60)) - 105.0).abs() < 1e-9);
        assert!(f.sample(Point::ORIGIN, SimTime::from_secs(60)) < 105.0);
    }

    #[test]
    fn plume_decays_with_distance() {
        let f = GaussianPlume {
            origin: Point::ORIGIN,
            velocity: (0.0, 0.0),
            amplitude: 50.0,
            sigma_m: 5.0,
            background: 0.0,
        };
        let near = f.sample(Point::new(1.0, 0.0), SimTime::ZERO);
        let far = f.sample(Point::new(20.0, 0.0), SimTime::ZERO);
        assert!(near > far);
        assert!(far < 0.02 * 50.0);
    }

    #[test]
    fn diurnal_cycles() {
        let f = Diurnal { mean: 15.0, amplitude: 10.0, period_s: 86_400.0, gx: 0.0 };
        let quarter = SimTime::from_secs(21_600); // peak of the sine
        assert!((f.sample(Point::ORIGIN, quarter) - 25.0).abs() < 1e-6);
        let full = SimTime::from_secs(86_400);
        assert!((f.sample(Point::ORIGIN, full) - 15.0).abs() < 1e-6);
    }

    #[test]
    fn dyn_field_dispatches() {
        let f: DynField = Box::new(Uniform(3.0));
        assert_eq!(f.sample(Point::ORIGIN, SimTime::ZERO), 3.0);
    }

    #[test]
    fn fields_are_pure() {
        let f = GaussianPlume {
            origin: Point::new(2.0, 3.0),
            velocity: (0.5, -0.5),
            amplitude: 7.0,
            sigma_m: 3.0,
            background: 1.0,
        };
        let p = Point::new(4.0, 4.0);
        let t = SimTime::from_millis(12_345);
        assert_eq!(f.sample(p, t), f.sample(p, t));
    }
}
