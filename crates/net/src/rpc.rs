//! Request/response correlation over asynchronous messaging.
//!
//! Figure 1 shows "Remote Procedure Call" edges (consumer → Resource
//! Manager approval, Replicator → Location Service lookup) alongside
//! event-based message passing. Over an asynchronous bus, RPC is a
//! correlation discipline: tag the request with a [`CallId`], route the
//! response back, time out the ones that never return. [`RpcTable`]
//! implements that discipline sans-io so it works identically under the
//! simulated and threaded drivers.

use std::collections::BTreeMap;

use core::fmt;
use garnet_simkit::{SimDuration, SimTime};

/// Correlation id of one in-flight call.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CallId(u64);

impl CallId {
    /// The raw value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for CallId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CallId({})", self.0)
    }
}

impl fmt::Display for CallId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "call{}", self.0)
    }
}

/// Tracks in-flight calls and their deadlines. `Ctx` is whatever the
/// caller needs to resume when the response (or timeout) arrives.
///
/// # Example
///
/// ```
/// use garnet_net::RpcTable;
/// use garnet_simkit::{SimDuration, SimTime};
///
/// let mut table: RpcTable<&'static str> = RpcTable::new();
/// let id = table.begin("approve-request-7", SimTime::ZERO, SimDuration::from_secs(1));
/// // ... later, the response arrives:
/// assert_eq!(table.complete(id), Some("approve-request-7"));
/// // Completing twice (duplicate response) is harmless:
/// assert_eq!(table.complete(id), None);
/// ```
#[derive(Debug)]
pub struct RpcTable<Ctx> {
    next: u64,
    pending: BTreeMap<u64, (SimTime, Ctx)>,
}

impl<Ctx> Default for RpcTable<Ctx> {
    fn default() -> Self {
        Self::new()
    }
}

impl<Ctx> RpcTable<Ctx> {
    /// Creates an empty table.
    pub fn new() -> Self {
        RpcTable { next: 0, pending: BTreeMap::new() }
    }

    /// Registers a new call issued at `now` with the given timeout,
    /// returning its correlation id.
    pub fn begin(&mut self, ctx: Ctx, now: SimTime, timeout: SimDuration) -> CallId {
        let id = self.next;
        self.next += 1;
        self.pending.insert(id, (now.saturating_add(timeout), ctx));
        CallId(id)
    }

    /// Consumes a response: returns the stored context, or `None` for an
    /// unknown/duplicate/expired-and-collected id.
    pub fn complete(&mut self, id: CallId) -> Option<Ctx> {
        self.pending.remove(&id.0).map(|(_, ctx)| ctx)
    }

    /// Harvests every call whose deadline is at or before `now`,
    /// returning their ids and contexts (the caller decides whether to
    /// retry or fail them).
    pub fn expire(&mut self, now: SimTime) -> Vec<(CallId, Ctx)> {
        let expired: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, (deadline, _))| *deadline <= now)
            .map(|(&id, _)| id)
            .collect();
        expired
            .into_iter()
            .filter_map(|id| self.pending.remove(&id).map(|(_, ctx)| (CallId(id), ctx)))
            .collect()
    }

    /// The earliest pending deadline, for scheduling the next expiry
    /// sweep.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.pending.values().map(|(d, _)| *d).min()
    }

    /// Number of in-flight calls.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_increasing() {
        let mut t: RpcTable<u32> = RpcTable::new();
        let a = t.begin(1, SimTime::ZERO, SimDuration::from_secs(1));
        let b = t.begin(2, SimTime::ZERO, SimDuration::from_secs(1));
        assert_ne!(a, b);
        assert!(b.as_u64() > a.as_u64());
        assert_eq!(t.in_flight(), 2);
    }

    #[test]
    fn complete_returns_context_once() {
        let mut t: RpcTable<String> = RpcTable::new();
        let id = t.begin("ctx".into(), SimTime::ZERO, SimDuration::from_secs(1));
        assert_eq!(t.complete(id), Some("ctx".into()));
        assert_eq!(t.complete(id), None);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn expiry_harvests_only_due_calls() {
        let mut t: RpcTable<&str> = RpcTable::new();
        let _a = t.begin("fast", SimTime::ZERO, SimDuration::from_millis(10));
        let b = t.begin("slow", SimTime::ZERO, SimDuration::from_secs(10));
        let expired = t.expire(SimTime::from_millis(10));
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].1, "fast");
        assert_eq!(t.in_flight(), 1);
        assert_eq!(t.complete(b), Some("slow"));
    }

    #[test]
    fn expired_call_cannot_complete() {
        let mut t: RpcTable<u8> = RpcTable::new();
        let id = t.begin(1, SimTime::ZERO, SimDuration::from_millis(5));
        let _ = t.expire(SimTime::from_secs(1));
        assert_eq!(t.complete(id), None);
    }

    #[test]
    fn next_deadline_tracks_minimum() {
        let mut t: RpcTable<u8> = RpcTable::new();
        assert_eq!(t.next_deadline(), None);
        t.begin(1, SimTime::ZERO, SimDuration::from_secs(5));
        t.begin(2, SimTime::ZERO, SimDuration::from_secs(2));
        assert_eq!(t.next_deadline(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn expire_on_empty_is_empty() {
        let mut t: RpcTable<u8> = RpcTable::new();
        assert!(t.expire(SimTime::from_secs(100)).is_empty());
    }
}
