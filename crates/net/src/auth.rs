//! Principal authentication and capability tokens.
//!
//! "Simple, flexible and secure mechanisms for accessing the data" is one
//! of the paper's four delivery requirements (§1), and location data in
//! particular "may be regarded as sensitive and should be protected by
//! additional security mechanisms" (§2). Garnet services therefore check
//! a capability token before serving a consumer.
//!
//! Tokens are MAC-signed by the issuing [`AuthService`] (the MAC reuses
//! the wire crate's keyed XTEA-CBC-MAC), so any service holding the
//! verification key can check a token locally without a round trip.

use core::fmt;
use garnet_wire::crypto::PayloadKey;
use garnet_wire::{SequenceNumber, StreamId};
use serde::{Deserialize, Serialize};

/// A named security principal (a consumer process or service instance).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Principal(String);

impl Principal {
    /// Creates a principal from its registered name.
    pub fn new(name: impl Into<String>) -> Self {
        Principal(name.into())
    }

    /// The registered name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Principal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Principal({})", self.0)
    }
}

impl fmt::Display for Principal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Principal {
    fn from(s: &str) -> Self {
        Principal::new(s)
    }
}

/// One grantable right.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Capability {
    /// Subscribe to data streams.
    Subscribe,
    /// Issue stream update (actuation) requests.
    Actuate,
    /// Supply location hints to the Location Service (§4.2).
    ProvideHints,
    /// Read inferred locations (sensitive; §2).
    ReadLocation,
    /// Report state-change information to the Super Coordinator and be
    /// treated as a "trusted application" able to pre-warn of changing
    /// needs (§9).
    Coordinate,
    /// Administer the middleware (register services, issue tokens).
    Admin,
}

impl Capability {
    const ALL: [Capability; 6] = [
        Capability::Subscribe,
        Capability::Actuate,
        Capability::ProvideHints,
        Capability::ReadLocation,
        Capability::Coordinate,
        Capability::Admin,
    ];

    fn bit(self) -> u8 {
        match self {
            Capability::Subscribe => 1 << 0,
            Capability::Actuate => 1 << 1,
            Capability::ProvideHints => 1 << 2,
            Capability::ReadLocation => 1 << 3,
            Capability::Coordinate => 1 << 4,
            Capability::Admin => 1 << 5,
        }
    }
}

/// A set of capabilities, packed for cheap copying and MAC'ing.
#[derive(Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CapabilitySet(u8);

impl CapabilitySet {
    /// The empty set.
    pub const NONE: CapabilitySet = CapabilitySet(0);

    /// Builds a set from individual capabilities.
    pub fn of(caps: &[Capability]) -> Self {
        CapabilitySet(caps.iter().fold(0, |acc, c| acc | c.bit()))
    }

    /// Every capability (operator tooling).
    pub fn all() -> Self {
        CapabilitySet::of(&Capability::ALL)
    }

    /// True if `cap` is in the set.
    pub fn allows(self, cap: Capability) -> bool {
        self.0 & cap.bit() != 0
    }

    /// Union of two sets.
    #[must_use]
    pub fn union(self, other: CapabilitySet) -> CapabilitySet {
        CapabilitySet(self.0 | other.0)
    }

    fn bits(self) -> u8 {
        self.0
    }
}

impl fmt::Debug for CapabilitySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = Capability::ALL
            .iter()
            .filter(|c| self.allows(**c))
            .map(|c| match c {
                Capability::Subscribe => "Subscribe",
                Capability::Actuate => "Actuate",
                Capability::ProvideHints => "ProvideHints",
                Capability::ReadLocation => "ReadLocation",
                Capability::Coordinate => "Coordinate",
                Capability::Admin => "Admin",
            })
            .collect();
        write!(
            f,
            "CapabilitySet({})",
            if names.is_empty() { "∅".to_owned() } else { names.join("|") }
        )
    }
}

/// A signed grant: *principal P holds capabilities C until expiry E*.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    principal: Principal,
    caps: CapabilitySet,
    expires_at_us: u64,
    mac: [u8; 8],
}

impl Token {
    /// The principal this token authenticates.
    pub fn principal(&self) -> &Principal {
        &self.principal
    }

    /// The granted capabilities.
    pub fn capabilities(&self) -> CapabilitySet {
        self.caps
    }

    /// Expiry instant (µs of middleware time).
    pub fn expires_at_us(&self) -> u64 {
        self.expires_at_us
    }
}

/// Issues and verifies capability tokens.
///
/// # Example
///
/// ```
/// use garnet_net::{AuthService, Capability, CapabilitySet, Principal};
///
/// let auth = AuthService::new([3u8; 16]);
/// let token = auth.issue(
///     Principal::new("flood-watch"),
///     CapabilitySet::of(&[Capability::Subscribe, Capability::Actuate]),
///     1_000_000, // expires at t = 1s
/// );
/// assert!(auth.verify(&token, 500_000, Capability::Subscribe));
/// assert!(!auth.verify(&token, 500_000, Capability::Admin)); // not granted
/// assert!(!auth.verify(&token, 2_000_000, Capability::Subscribe)); // expired
/// ```
pub struct AuthService {
    key: PayloadKey,
}

impl AuthService {
    /// Creates an authority from 16 bytes of key material.
    pub fn new(key: [u8; 16]) -> Self {
        AuthService { key: PayloadKey::from_bytes(key) }
    }

    fn mac_input(principal: &Principal, caps: CapabilitySet, expires_at_us: u64) -> Vec<u8> {
        let mut data = Vec::with_capacity(principal.name().len() + 16);
        data.extend_from_slice(principal.name().as_bytes());
        data.push(0); // separator: names cannot contain NUL meaningfully
        data.push(caps.bits());
        data.extend_from_slice(&expires_at_us.to_be_bytes());
        data
    }

    fn compute_mac(
        &self,
        principal: &Principal,
        caps: CapabilitySet,
        expires_at_us: u64,
    ) -> [u8; 8] {
        // Reuse the keyed MAC by sealing a canonical encoding in a fixed
        // context and keeping only the 8-byte tag.
        let data = Self::mac_input(principal, caps, expires_at_us);
        let sealed = self.key.seal(StreamId::from_raw(0), SequenceNumber::ZERO, &data);
        let mut mac = [0u8; 8];
        mac.copy_from_slice(&sealed[sealed.len() - 8..]);
        mac
    }

    /// Issues a token for `principal` with `caps`, valid until
    /// `expires_at_us` (µs of middleware time).
    pub fn issue(&self, principal: Principal, caps: CapabilitySet, expires_at_us: u64) -> Token {
        let mac = self.compute_mac(&principal, caps, expires_at_us);
        Token { principal, caps, expires_at_us, mac }
    }

    /// Verifies that `token` is authentic, unexpired at `now_us`, and
    /// grants `needed`.
    pub fn verify(&self, token: &Token, now_us: u64, needed: Capability) -> bool {
        if now_us >= token.expires_at_us {
            return false;
        }
        if !token.caps.allows(needed) {
            return false;
        }
        let expected = self.compute_mac(&token.principal, token.caps, token.expires_at_us);
        expected == token.mac
    }
}

impl fmt::Debug for AuthService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AuthService(key hidden)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn auth() -> AuthService {
        AuthService::new(*b"garnet-auth-key!")
    }

    #[test]
    fn issue_and_verify_happy_path() {
        let a = auth();
        let t = a.issue(Principal::new("p1"), CapabilitySet::of(&[Capability::Subscribe]), 1000);
        assert!(a.verify(&t, 0, Capability::Subscribe));
        assert_eq!(t.principal().name(), "p1");
    }

    #[test]
    fn expiry_is_exclusive() {
        let a = auth();
        let t = a.issue(Principal::new("p"), CapabilitySet::all(), 1000);
        assert!(a.verify(&t, 999, Capability::Admin));
        assert!(!a.verify(&t, 1000, Capability::Admin));
        assert!(!a.verify(&t, 1001, Capability::Admin));
    }

    #[test]
    fn missing_capability_denied() {
        let a = auth();
        let t = a.issue(Principal::new("p"), CapabilitySet::of(&[Capability::Subscribe]), 1000);
        for cap in [Capability::Actuate, Capability::Admin, Capability::ReadLocation] {
            assert!(!a.verify(&t, 0, cap));
        }
    }

    #[test]
    fn forged_capabilities_rejected() {
        let a = auth();
        let t = a.issue(Principal::new("p"), CapabilitySet::of(&[Capability::Subscribe]), 1000);
        // Attacker inflates the capability set without re-MACing.
        let forged = Token { caps: CapabilitySet::all(), ..t };
        assert!(!a.verify(&forged, 0, Capability::Admin));
        assert!(!a.verify(&forged, 0, Capability::Subscribe), "tampered token must fail entirely");
    }

    #[test]
    fn forged_expiry_rejected() {
        let a = auth();
        let t = a.issue(Principal::new("p"), CapabilitySet::all(), 1000);
        let forged = Token { expires_at_us: u64::MAX, ..t };
        assert!(!a.verify(&forged, 5000, Capability::Subscribe));
    }

    #[test]
    fn token_from_other_authority_rejected() {
        let a = auth();
        let b = AuthService::new(*b"different-key-!!");
        let t = b.issue(Principal::new("p"), CapabilitySet::all(), 1000);
        assert!(!a.verify(&t, 0, Capability::Subscribe));
    }

    #[test]
    fn principal_name_is_bound() {
        let a = auth();
        let t = a.issue(Principal::new("alice"), CapabilitySet::all(), 1000);
        let stolen = Token { principal: Principal::new("bob"), ..t };
        assert!(!a.verify(&stolen, 0, Capability::Subscribe));
    }

    #[test]
    fn capability_set_operations() {
        let s = CapabilitySet::of(&[Capability::Subscribe, Capability::ProvideHints]);
        assert!(s.allows(Capability::Subscribe));
        assert!(!s.allows(Capability::Actuate));
        let u = s.union(CapabilitySet::of(&[Capability::Actuate]));
        assert!(u.allows(Capability::Actuate));
        assert!(u.allows(Capability::Subscribe));
        assert!(!CapabilitySet::NONE.allows(Capability::Subscribe));
    }

    #[test]
    fn debug_output_lists_caps_and_hides_keys() {
        let s = format!("{:?}", CapabilitySet::of(&[Capability::Actuate]));
        assert!(s.contains("Actuate"));
        assert_eq!(format!("{:?}", CapabilitySet::NONE), "CapabilitySet(∅)");
        assert_eq!(format!("{:?}", auth()), "AuthService(key hidden)");
    }

    #[test]
    fn name_separator_prevents_concatenation_confusion() {
        // ("ab", caps=c) must not MAC equal to ("a", "b..."-ish splice).
        let a = auth();
        let t1 = a.issue(Principal::new("ab"), CapabilitySet::NONE, 7);
        let t2 = a.issue(Principal::new("a"), CapabilitySet::NONE, 7);
        assert_ne!(t1.mac, t2.mac);
    }
}
