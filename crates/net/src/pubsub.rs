//! The publish/subscribe subscription table.
//!
//! "Consumer processes use a publish/subscribe mechanism to access data
//! streams, which permits un-configured data streams to be detected"
//! (§4.2). The table maps a published [`StreamId`] to the set of
//! subscribers that should receive it; an empty match is exactly the
//! "unclaimed data" signal that routes a message to the Orphanage.
//!
//! Filters come in three granularities: one stream, every stream of one
//! sensor, or everything (wiretaps, loggers, the Orphanage itself).
//! Matching is O(subscribers-on-topic), not O(all-subscribers), so
//! dispatch cost scales with fan-out rather than population — the
//! property experiment E5 measures.
//!
//! Subscription tables mutate orders of magnitude less often than
//! frames arrive, so the table carries a monotonic **epoch** stamped
//! per key range (one stream, one sensor, the `All` set) on every
//! actual mutation. A [`MatchCache`] memoises the resolved match set
//! per stream as a shared `Arc<[SubscriberId]>` slice and revalidates
//! against those stamps: a steady-state hit is one hash lookup plus one
//! refcount bump — no allocation, no set union. Experiment E23 prices
//! the difference.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use core::fmt;
use garnet_wire::{SensorId, StreamId};
use serde::{Deserialize, Serialize};

/// Identifier of one subscriber (assigned by the Dispatching Service at
/// registration).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SubscriberId(u32);

impl SubscriberId {
    /// Creates a subscriber id.
    pub const fn new(raw: u32) -> Self {
        SubscriberId(raw)
    }

    /// The raw value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for SubscriberId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SubscriberId({})", self.0)
    }
}

impl fmt::Display for SubscriberId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sub{}", self.0)
    }
}

/// What a subscription matches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TopicFilter {
    /// Exactly one stream.
    Stream(StreamId),
    /// Every internal stream of one sensor.
    Sensor(SensorId),
    /// Every stream in the system.
    All,
}

impl TopicFilter {
    /// True if the filter matches `stream`.
    pub fn matches(&self, stream: StreamId) -> bool {
        match *self {
            TopicFilter::Stream(s) => s == stream,
            TopicFilter::Sensor(id) => stream.sensor() == id,
            TopicFilter::All => true,
        }
    }
}

/// Inserts `id` into an ascending-sorted vec; `true` if it was new.
fn sorted_insert(set: &mut Vec<SubscriberId>, id: SubscriberId) -> bool {
    match set.binary_search(&id) {
        Ok(_) => false,
        Err(pos) => {
            set.insert(pos, id);
            true
        }
    }
}

/// Removes `id` from an ascending-sorted vec; `true` if it was present.
fn sorted_remove(set: &mut Vec<SubscriberId>, id: SubscriberId) -> bool {
    match set.binary_search(&id) {
        Ok(pos) => {
            set.remove(pos);
            true
        }
        Err(_) => false,
    }
}

/// The subscription table.
///
/// The hot indexes (`by_stream`, `by_sensor`, `all`) are
/// ascending-sorted vecs behind hash maps: lookups never walk a tree,
/// and the sorted-on-insert invariant keeps every match set in the
/// deterministic ascending-id order that dispatch relies on.
///
/// # Example
///
/// ```
/// use garnet_net::{SubscriberId, SubscriptionTable, TopicFilter};
/// use garnet_wire::{SensorId, StreamId};
///
/// let mut table = SubscriptionTable::new();
/// let alice = SubscriberId::new(1);
/// table.subscribe(alice, TopicFilter::Sensor(SensorId::new(7)?));
/// let stream = StreamId::from_raw((7 << 8) | 0);
/// assert_eq!(table.match_subscribers(stream), vec![alice]);
/// # Ok::<(), garnet_wire::WireError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct SubscriptionTable {
    by_stream: HashMap<u32, Vec<SubscriberId>>,
    by_sensor: HashMap<u32, Vec<SubscriberId>>,
    all: Vec<SubscriberId>,
    // Reverse index so unsubscribe-all is O(own subscriptions).
    filters: BTreeMap<SubscriberId, BTreeSet<TopicFilter>>,
    // Monotonic mutation counter, bumped on every *actual* change
    // (idempotent re-subscribes and no-op unsubscribes do not count).
    epoch: u64,
    // Per-key-range stamps: the epoch of the last mutation touching
    // that key. A cached match set built at epoch `b` for some stream
    // is valid iff `b >= mutation_stamp(stream)` — mutations to other
    // sensors/streams never invalidate it.
    all_epoch: u64,
    sensor_epochs: HashMap<u32, u64>,
    stream_epochs: HashMap<u32, u64>,
}

impl SubscriptionTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `filter`'s key range just mutated.
    fn note_mutation(&mut self, filter: TopicFilter) {
        self.epoch += 1;
        match filter {
            TopicFilter::Stream(s) => {
                self.stream_epochs.insert(s.to_raw(), self.epoch);
            }
            TopicFilter::Sensor(id) => {
                self.sensor_epochs.insert(id.as_u32(), self.epoch);
            }
            TopicFilter::All => self.all_epoch = self.epoch,
        }
    }

    /// The monotonic mutation counter. Bumped once per actual
    /// subscribe/unsubscribe; idempotent calls leave it unchanged.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The epoch of the last mutation that could change the match set
    /// of `stream`: the max over its three key ranges (exact stream,
    /// owning sensor, the `All` set). A cached set built at or after
    /// this stamp is still valid.
    pub fn mutation_stamp(&self, stream: StreamId) -> u64 {
        let sensor = self.sensor_epochs.get(&stream.sensor().as_u32()).copied().unwrap_or(0);
        let exact = self.stream_epochs.get(&stream.to_raw()).copied().unwrap_or(0);
        self.all_epoch.max(sensor).max(exact)
    }

    /// Adds a subscription. Returns `true` if it was new.
    pub fn subscribe(&mut self, subscriber: SubscriberId, filter: TopicFilter) -> bool {
        let inserted = match filter {
            TopicFilter::Stream(s) => {
                sorted_insert(self.by_stream.entry(s.to_raw()).or_default(), subscriber)
            }
            TopicFilter::Sensor(id) => {
                sorted_insert(self.by_sensor.entry(id.as_u32()).or_default(), subscriber)
            }
            TopicFilter::All => sorted_insert(&mut self.all, subscriber),
        };
        let reverse_inserted = self.filters.entry(subscriber).or_default().insert(filter);
        debug_assert_eq!(
            inserted, reverse_inserted,
            "forward and reverse indexes disagree on subscribe({subscriber}, {filter:?})"
        );
        if inserted {
            self.note_mutation(filter);
        }
        inserted
    }

    /// Removes one subscription. Returns `true` if it existed.
    pub fn unsubscribe(&mut self, subscriber: SubscriberId, filter: TopicFilter) -> bool {
        let removed = match filter {
            TopicFilter::Stream(s) => {
                let raw = s.to_raw();
                if let Some(set) = self.by_stream.get_mut(&raw) {
                    let removed = sorted_remove(set, subscriber);
                    if set.is_empty() {
                        self.by_stream.remove(&raw);
                    }
                    removed
                } else {
                    false
                }
            }
            TopicFilter::Sensor(id) => {
                let raw = id.as_u32();
                if let Some(set) = self.by_sensor.get_mut(&raw) {
                    let removed = sorted_remove(set, subscriber);
                    if set.is_empty() {
                        self.by_sensor.remove(&raw);
                    }
                    removed
                } else {
                    false
                }
            }
            TopicFilter::All => sorted_remove(&mut self.all, subscriber),
        };
        let mut removed_reverse = false;
        if let Some(fs) = self.filters.get_mut(&subscriber) {
            removed_reverse = fs.remove(&filter);
            if fs.is_empty() {
                self.filters.remove(&subscriber);
            }
        }
        debug_assert_eq!(
            removed, removed_reverse,
            "forward and reverse indexes disagree on unsubscribe({subscriber}, {filter:?})"
        );
        if removed {
            self.note_mutation(filter);
        }
        removed
    }

    /// Removes every subscription held by `subscriber` (consumer
    /// departure). Returns how many were removed.
    pub fn unsubscribe_all(&mut self, subscriber: SubscriberId) -> usize {
        let Some(filters) = self.filters.remove(&subscriber) else {
            return 0;
        };
        let n = filters.len();
        for f in filters {
            let removed = match f {
                TopicFilter::Stream(s) => {
                    let raw = s.to_raw();
                    if let Some(set) = self.by_stream.get_mut(&raw) {
                        let removed = sorted_remove(set, subscriber);
                        if set.is_empty() {
                            self.by_stream.remove(&raw);
                        }
                        removed
                    } else {
                        false
                    }
                }
                TopicFilter::Sensor(id) => {
                    let raw = id.as_u32();
                    if let Some(set) = self.by_sensor.get_mut(&raw) {
                        let removed = sorted_remove(set, subscriber);
                        if set.is_empty() {
                            self.by_sensor.remove(&raw);
                        }
                        removed
                    } else {
                        false
                    }
                }
                TopicFilter::All => sorted_remove(&mut self.all, subscriber),
            };
            debug_assert!(
                removed,
                "reverse index held {f:?} for {subscriber} but the forward index did not"
            );
            self.note_mutation(f);
        }
        n
    }

    /// Calls `f` once per matching subscriber, deduplicated, in
    /// ascending id order — a 3-way merge over the sorted `all` /
    /// sensor / stream slices, allocating nothing.
    fn for_each_match(&self, stream: StreamId, mut f: impl FnMut(SubscriberId)) {
        let a = self.all.as_slice();
        let b =
            self.by_sensor.get(&stream.sensor().as_u32()).map(Vec::as_slice).unwrap_or_default();
        let c = self.by_stream.get(&stream.to_raw()).map(Vec::as_slice).unwrap_or_default();
        let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
        while i < a.len() || j < b.len() || k < c.len() {
            let mut min = SubscriberId::new(u32::MAX);
            if i < a.len() {
                min = min.min(a[i]);
            }
            if j < b.len() {
                min = min.min(b[j]);
            }
            if k < c.len() {
                min = min.min(c[k]);
            }
            // Advance every cursor sitting on the minimum: overlapping
            // filters deduplicate here.
            if i < a.len() && a[i] == min {
                i += 1;
            }
            if j < b.len() && b[j] == min {
                j += 1;
            }
            if k < c.len() && c[k] == min {
                k += 1;
            }
            f(min);
        }
    }

    /// Writes the subscribers that should receive a message on `stream`
    /// into `out` (cleared first), deduplicated, in ascending id order —
    /// the scratch-buffer form for cold-path union building.
    pub fn match_subscribers_into(&self, stream: StreamId, out: &mut Vec<SubscriberId>) {
        out.clear();
        self.for_each_match(stream, |s| out.push(s));
    }

    /// The subscribers that should receive a message on `stream`,
    /// deduplicated, in ascending id order (deterministic dispatch).
    pub fn match_subscribers(&self, stream: StreamId) -> Vec<SubscriberId> {
        let mut out = Vec::new();
        self.match_subscribers_into(stream, &mut out);
        out
    }

    /// How many subscribers [`SubscriptionTable::match_subscribers`]
    /// would return for `stream`, without materialising the list — the
    /// allocation-free form for paths that only account fan-out. Linear
    /// in the matched sets; [`MatchCache::match_count`] makes it O(1)
    /// on a cache hit.
    pub fn match_count(&self, stream: StreamId) -> usize {
        let mut count = 0usize;
        self.for_each_match(stream, |_| count += 1);
        count
    }

    /// True if no subscription matches `stream` — the message is
    /// *unclaimed* and belongs to the Orphanage.
    pub fn is_unclaimed(&self, stream: StreamId) -> bool {
        if !self.all.is_empty() {
            return false;
        }
        if self.by_sensor.get(&stream.sensor().as_u32()).is_some_and(|s| !s.is_empty()) {
            return false;
        }
        self.by_stream.get(&stream.to_raw()).is_none_or(|s| s.is_empty())
    }

    /// Number of distinct subscribers with at least one subscription.
    pub fn subscriber_count(&self) -> usize {
        self.filters.len()
    }

    /// The filters `subscriber` currently holds, ascending.
    pub fn filters_of(&self, subscriber: SubscriberId) -> impl Iterator<Item = TopicFilter> + '_ {
        self.filters.get(&subscriber).into_iter().flat_map(|fs| fs.iter().copied())
    }

    /// Every subscriber with at least one subscription, ascending.
    pub fn subscriber_ids(&self) -> impl Iterator<Item = SubscriberId> + '_ {
        self.filters.keys().copied()
    }

    /// Total number of live subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.filters.values().map(|f| f.len()).sum()
    }
}

/// Configuration of the per-shard dispatch [`MatchCache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DispatchCacheConfig {
    /// Whether match sets are memoised at all. Off, every resolve
    /// rebuilds from the table (the pre-cache behaviour).
    pub enabled: bool,
    /// Residency bound: the maximum number of distinct streams cached
    /// per shard. Inserting a new stream into a full cache clears it
    /// wholesale (deterministic, no recency bookkeeping on the hot
    /// path). Clamped to at least 1.
    pub capacity: usize,
}

impl DispatchCacheConfig {
    /// Default residency bound (streams per dispatch shard).
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// A disabled cache: every resolve rebuilds from the table.
    pub fn disabled() -> Self {
        DispatchCacheConfig { enabled: false, capacity: Self::DEFAULT_CAPACITY }
    }
}

impl Default for DispatchCacheConfig {
    /// Enabled at [`DispatchCacheConfig::DEFAULT_CAPACITY`], unless the
    /// `GARNET_TEST_MATCH_CACHE` environment variable is set to `0`,
    /// `off` or `false` — the escape hatch ci.sh uses to rerun the
    /// determinism suites uncached.
    fn default() -> Self {
        let enabled = match std::env::var("GARNET_TEST_MATCH_CACHE") {
            Ok(v) => {
                !(v == "0" || v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false"))
            }
            Err(_) => true,
        };
        DispatchCacheConfig { enabled, capacity: Self::DEFAULT_CAPACITY }
    }
}

/// Counters of one [`MatchCache`] (or the fold over every shard's).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MatchCacheStats {
    /// Resolves answered from a valid cached entry.
    pub hits: u64,
    /// Resolves for a stream never seen (or evicted) — built cold.
    pub misses: u64,
    /// Resolves that found a cached entry staled by a subscription
    /// mutation — rebuilt.
    pub invalidations: u64,
    /// Entries currently resident.
    pub resident: u64,
}

impl MatchCacheStats {
    /// Accumulates `other` into `self` (summing every field), for
    /// folding per-shard stats into one engine-wide view.
    pub fn absorb(&mut self, other: MatchCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.invalidations += other.invalidations;
        self.resident += other.resident;
    }
}

#[derive(Clone, Debug)]
struct CacheEntry {
    /// The table epoch when this set was built.
    built_at: u64,
    set: Arc<[SubscriberId]>,
}

/// Memoises resolved match sets per stream as shared
/// `Arc<[SubscriberId]>` slices.
///
/// Each dispatch shard owns one, keyed by its own (partitioned or
/// shared) [`SubscriptionTable`]. An entry is valid while the table's
/// [`mutation_stamp`](SubscriptionTable::mutation_stamp) for the stream
/// is at or below the epoch the entry was built at, so a mutation only
/// invalidates the key ranges it touches (`All` mutations stale
/// everything). A steady-state hit is one hash lookup plus one Arc
/// refcount bump — zero heap allocations, which E23's alloc-counter
/// harness proves.
#[derive(Clone, Debug, Default)]
pub struct MatchCache {
    config: DispatchCacheConfig,
    entries: HashMap<u32, CacheEntry>,
    // Reused across misses so cold-path union building settles into
    // zero steady-state growth too.
    scratch: Vec<SubscriberId>,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl MatchCache {
    /// Creates an empty cache under `config`.
    pub fn new(config: DispatchCacheConfig) -> Self {
        MatchCache { config, ..Default::default() }
    }

    /// The configuration this cache runs under.
    pub fn config(&self) -> DispatchCacheConfig {
        self.config
    }

    /// Resolves the match set for `stream` against `table`. Returns the
    /// shared slice and whether it was (re)built on this call — `false`
    /// on a cache hit *and* whenever the cache is disabled, so rebuild
    /// traces stay identical between cached-off runs of both engines.
    pub fn resolve(
        &mut self,
        table: &SubscriptionTable,
        stream: StreamId,
    ) -> (Arc<[SubscriberId]>, bool) {
        if !self.config.enabled {
            table.match_subscribers_into(stream, &mut self.scratch);
            return (Arc::from(self.scratch.as_slice()), false);
        }
        let key = stream.to_raw();
        let stamp = table.mutation_stamp(stream);
        match self.entries.get(&key) {
            Some(entry) if entry.built_at >= stamp => {
                self.hits += 1;
                return (Arc::clone(&entry.set), false);
            }
            Some(_) => self.invalidations += 1,
            None => {
                self.misses += 1;
                if self.entries.len() >= self.config.capacity.max(1) {
                    // Full and a new stream wants in: deterministic
                    // wholesale reset instead of hot-path recency.
                    self.entries.clear();
                }
            }
        }
        table.match_subscribers_into(stream, &mut self.scratch);
        let set: Arc<[SubscriberId]> = Arc::from(self.scratch.as_slice());
        self.entries.insert(key, CacheEntry { built_at: table.epoch(), set: Arc::clone(&set) });
        (set, true)
    }

    /// Fan-out accounting: the length of the resolved match set. O(1)
    /// on a cache hit; falls back to the table's merge-count when the
    /// cache is disabled.
    pub fn match_count(&mut self, table: &SubscriptionTable, stream: StreamId) -> usize {
        if !self.config.enabled {
            return table.match_count(stream);
        }
        self.resolve(table, stream).0.len()
    }

    /// Snapshot of this cache's counters.
    pub fn stats(&self) -> MatchCacheStats {
        MatchCacheStats {
            hits: self.hits,
            misses: self.misses,
            invalidations: self.invalidations,
            resident: self.entries.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(sensor: u32, idx: u8) -> StreamId {
        StreamId::new(SensorId::new(sensor).unwrap(), garnet_wire::StreamIndex::new(idx))
    }

    #[test]
    fn exact_stream_subscription() {
        let mut t = SubscriptionTable::new();
        let a = SubscriberId::new(1);
        assert!(t.subscribe(a, TopicFilter::Stream(stream(5, 0))));
        assert_eq!(t.match_subscribers(stream(5, 0)), vec![a]);
        assert!(t.match_subscribers(stream(5, 1)).is_empty());
        assert!(t.match_subscribers(stream(6, 0)).is_empty());
    }

    #[test]
    fn sensor_subscription_matches_all_indices() {
        let mut t = SubscriptionTable::new();
        let a = SubscriberId::new(1);
        t.subscribe(a, TopicFilter::Sensor(SensorId::new(5).unwrap()));
        assert_eq!(t.match_subscribers(stream(5, 0)), vec![a]);
        assert_eq!(t.match_subscribers(stream(5, 255)), vec![a]);
        assert!(t.match_subscribers(stream(4, 0)).is_empty());
    }

    #[test]
    fn all_subscription_matches_everything() {
        let mut t = SubscriptionTable::new();
        let a = SubscriberId::new(9);
        t.subscribe(a, TopicFilter::All);
        assert_eq!(t.match_subscribers(stream(1, 1)), vec![a]);
        assert!(!t.is_unclaimed(stream(123, 9)));
    }

    #[test]
    fn overlapping_filters_deduplicate() {
        let mut t = SubscriptionTable::new();
        let a = SubscriberId::new(1);
        t.subscribe(a, TopicFilter::Stream(stream(5, 0)));
        t.subscribe(a, TopicFilter::Sensor(SensorId::new(5).unwrap()));
        t.subscribe(a, TopicFilter::All);
        assert_eq!(t.match_subscribers(stream(5, 0)), vec![a]);
    }

    #[test]
    fn match_order_is_ascending_and_deterministic() {
        let mut t = SubscriptionTable::new();
        for id in [30u32, 10, 20] {
            t.subscribe(SubscriberId::new(id), TopicFilter::Stream(stream(1, 0)));
        }
        let ids: Vec<u32> = t.match_subscribers(stream(1, 0)).iter().map(|s| s.as_u32()).collect();
        assert_eq!(ids, vec![10, 20, 30]);
    }

    #[test]
    fn match_count_agrees_with_match_subscribers() {
        let mut t = SubscriptionTable::new();
        t.subscribe(SubscriberId::new(1), TopicFilter::All);
        t.subscribe(SubscriberId::new(1), TopicFilter::Sensor(SensorId::new(5).unwrap()));
        t.subscribe(SubscriberId::new(2), TopicFilter::Sensor(SensorId::new(5).unwrap()));
        t.subscribe(SubscriberId::new(2), TopicFilter::Stream(stream(5, 0)));
        t.subscribe(SubscriberId::new(3), TopicFilter::Stream(stream(5, 0)));
        t.subscribe(SubscriberId::new(4), TopicFilter::Stream(stream(7, 1)));
        for s in [stream(5, 0), stream(5, 1), stream(7, 1), stream(9, 0)] {
            assert_eq!(
                t.match_count(s),
                t.match_subscribers(s).len(),
                "count diverged from the materialised match for {s:?}"
            );
        }
        assert_eq!(t.match_count(stream(5, 0)), 3);
        let empty = SubscriptionTable::new();
        assert_eq!(empty.match_count(stream(1, 0)), 0);
    }

    #[test]
    fn duplicate_subscribe_is_idempotent() {
        let mut t = SubscriptionTable::new();
        let a = SubscriberId::new(1);
        assert!(t.subscribe(a, TopicFilter::All));
        assert!(!t.subscribe(a, TopicFilter::All));
        assert_eq!(t.subscription_count(), 1);
    }

    #[test]
    fn unsubscribe_restores_unclaimed() {
        let mut t = SubscriptionTable::new();
        let a = SubscriberId::new(1);
        let f = TopicFilter::Stream(stream(2, 3));
        t.subscribe(a, f);
        assert!(!t.is_unclaimed(stream(2, 3)));
        assert!(t.unsubscribe(a, f));
        assert!(t.is_unclaimed(stream(2, 3)));
        assert!(!t.unsubscribe(a, f), "second unsubscribe is a no-op");
        assert_eq!(t.subscriber_count(), 0);
    }

    #[test]
    fn unsubscribe_all_removes_everything() {
        let mut t = SubscriptionTable::new();
        let a = SubscriberId::new(1);
        let b = SubscriberId::new(2);
        t.subscribe(a, TopicFilter::Stream(stream(1, 0)));
        t.subscribe(a, TopicFilter::Sensor(SensorId::new(2).unwrap()));
        t.subscribe(a, TopicFilter::All);
        t.subscribe(b, TopicFilter::All);
        assert_eq!(t.unsubscribe_all(a), 3);
        assert_eq!(t.match_subscribers(stream(1, 0)), vec![b]);
        assert_eq!(t.subscriber_count(), 1);
        assert_eq!(t.unsubscribe_all(a), 0);
    }

    #[test]
    fn unclaimed_logic() {
        let mut t = SubscriptionTable::new();
        assert!(t.is_unclaimed(stream(9, 9)));
        let a = SubscriberId::new(1);
        t.subscribe(a, TopicFilter::Sensor(SensorId::new(9).unwrap()));
        assert!(!t.is_unclaimed(stream(9, 9)));
        assert!(t.is_unclaimed(stream(8, 0)));
    }

    #[test]
    fn filter_matches_directly() {
        assert!(TopicFilter::All.matches(stream(1, 1)));
        assert!(TopicFilter::Sensor(SensorId::new(1).unwrap()).matches(stream(1, 9)));
        assert!(!TopicFilter::Sensor(SensorId::new(2).unwrap()).matches(stream(1, 9)));
        assert!(TopicFilter::Stream(stream(3, 3)).matches(stream(3, 3)));
        assert!(!TopicFilter::Stream(stream(3, 3)).matches(stream(3, 4)));
    }

    #[test]
    fn large_population_small_fanout_matching() {
        // 10k subscribers on other streams must not appear in a match.
        let mut t = SubscriptionTable::new();
        for i in 0..10_000u32 {
            t.subscribe(SubscriberId::new(i), TopicFilter::Stream(stream(i % 1000, 0)));
        }
        let m = t.match_subscribers(stream(7, 0));
        assert_eq!(m.len(), 10); // ids 7, 1007, 2007, ...
        for s in m {
            assert_eq!(s.as_u32() % 1000, 7);
        }
    }

    #[test]
    fn epoch_bumps_only_on_actual_mutation() {
        let mut t = SubscriptionTable::new();
        let a = SubscriberId::new(1);
        assert_eq!(t.epoch(), 0);
        t.subscribe(a, TopicFilter::All);
        assert_eq!(t.epoch(), 1);
        t.subscribe(a, TopicFilter::All); // idempotent: no bump
        assert_eq!(t.epoch(), 1);
        t.unsubscribe(a, TopicFilter::Stream(stream(1, 0))); // no-op
        assert_eq!(t.epoch(), 1);
        t.unsubscribe(a, TopicFilter::All);
        assert_eq!(t.epoch(), 2);
        assert_eq!(t.unsubscribe_all(a), 0); // gone: no bump
        assert_eq!(t.epoch(), 2);
    }

    #[test]
    fn mutation_stamp_is_per_key_range() {
        let mut t = SubscriptionTable::new();
        t.subscribe(SubscriberId::new(1), TopicFilter::Stream(stream(5, 0)));
        let stamp_5 = t.mutation_stamp(stream(5, 0));
        // A mutation on another sensor leaves sensor 5's stamp alone.
        t.subscribe(SubscriberId::new(2), TopicFilter::Sensor(SensorId::new(9).unwrap()));
        assert_eq!(t.mutation_stamp(stream(5, 0)), stamp_5);
        assert!(t.mutation_stamp(stream(9, 0)) > stamp_5);
        // Sibling stream of the same sensor: exact-stream mutation on
        // (5,0) does not stamp (5,1).
        assert_eq!(t.mutation_stamp(stream(5, 1)), 0);
        // An All mutation stamps everything.
        t.subscribe(SubscriberId::new(3), TopicFilter::All);
        let e = t.epoch();
        assert_eq!(t.mutation_stamp(stream(5, 0)), e);
        assert_eq!(t.mutation_stamp(stream(123, 45)), e);
    }

    #[test]
    fn cache_hits_after_first_resolve() {
        let mut t = SubscriptionTable::new();
        t.subscribe(SubscriberId::new(1), TopicFilter::Sensor(SensorId::new(5).unwrap()));
        let mut c = MatchCache::new(DispatchCacheConfig::default());
        let (first, rebuilt) = c.resolve(&t, stream(5, 0));
        assert!(rebuilt);
        assert_eq!(&*first, &[SubscriberId::new(1)]);
        let (second, rebuilt) = c.resolve(&t, stream(5, 0));
        assert!(!rebuilt);
        assert!(Arc::ptr_eq(&first, &second), "a hit returns the same shared slice");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.invalidations, s.resident), (1, 1, 0, 1));
    }

    #[test]
    fn cache_invalidation_is_fine_grained() {
        let mut t = SubscriptionTable::new();
        t.subscribe(SubscriberId::new(1), TopicFilter::Sensor(SensorId::new(5).unwrap()));
        t.subscribe(SubscriberId::new(2), TopicFilter::Sensor(SensorId::new(9).unwrap()));
        let mut c = MatchCache::new(DispatchCacheConfig::default());
        c.resolve(&t, stream(5, 0));
        c.resolve(&t, stream(9, 0));
        // Mutating sensor 9 must not stale sensor 5's entry.
        t.subscribe(SubscriberId::new(3), TopicFilter::Sensor(SensorId::new(9).unwrap()));
        let (_, rebuilt) = c.resolve(&t, stream(5, 0));
        assert!(!rebuilt, "unrelated mutation invalidated a cached stream");
        let (set, rebuilt) = c.resolve(&t, stream(9, 0));
        assert!(rebuilt);
        assert_eq!(set.len(), 2);
        assert_eq!(c.stats().invalidations, 1);
        // An All mutation stales every entry.
        t.subscribe(SubscriberId::new(4), TopicFilter::All);
        assert!(c.resolve(&t, stream(5, 0)).1);
        assert!(c.resolve(&t, stream(9, 0)).1);
    }

    #[test]
    fn cache_capacity_clears_wholesale() {
        let mut t = SubscriptionTable::new();
        t.subscribe(SubscriberId::new(1), TopicFilter::All);
        let mut c = MatchCache::new(DispatchCacheConfig { enabled: true, capacity: 2 });
        c.resolve(&t, stream(1, 0));
        c.resolve(&t, stream(2, 0));
        assert_eq!(c.stats().resident, 2);
        c.resolve(&t, stream(3, 0)); // full: wholesale clear, then insert
        assert_eq!(c.stats().resident, 1);
        let (_, rebuilt) = c.resolve(&t, stream(3, 0));
        assert!(!rebuilt, "the newly inserted entry survives the clear");
    }

    #[test]
    fn disabled_cache_rebuilds_quietly() {
        let mut t = SubscriptionTable::new();
        t.subscribe(SubscriberId::new(1), TopicFilter::All);
        let mut c = MatchCache::new(DispatchCacheConfig::disabled());
        let (set, rebuilt) = c.resolve(&t, stream(1, 0));
        assert_eq!(&*set, &[SubscriberId::new(1)]);
        assert!(!rebuilt, "disabled caches never report rebuilds");
        c.resolve(&t, stream(1, 0));
        assert_eq!(c.stats(), MatchCacheStats::default());
        assert_eq!(c.match_count(&t, stream(1, 0)), 1);
    }

    #[test]
    fn cached_match_count_tracks_mutations() {
        let mut t = SubscriptionTable::new();
        let mut c = MatchCache::new(DispatchCacheConfig::default());
        assert_eq!(c.match_count(&t, stream(5, 0)), 0);
        t.subscribe(SubscriberId::new(1), TopicFilter::Sensor(SensorId::new(5).unwrap()));
        assert_eq!(c.match_count(&t, stream(5, 0)), 1);
        t.subscribe(SubscriberId::new(2), TopicFilter::Stream(stream(5, 0)));
        assert_eq!(c.match_count(&t, stream(5, 0)), 2);
        t.unsubscribe_all(SubscriberId::new(1));
        assert_eq!(c.match_count(&t, stream(5, 0)), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_filter() -> impl Strategy<Value = TopicFilter> {
        prop_oneof![
            (0u32..50, 0u8..4).prop_map(|(s, i)| TopicFilter::Stream(StreamId::new(
                SensorId::new(s).unwrap(),
                garnet_wire::StreamIndex::new(i)
            ))),
            (0u32..50).prop_map(|s| TopicFilter::Sensor(SensorId::new(s).unwrap())),
            Just(TopicFilter::All),
        ]
    }

    proptest! {
        #[test]
        fn match_equals_bruteforce(
            subs in proptest::collection::vec((0u32..30, arb_filter()), 0..60),
            sensor in 0u32..50,
            idx in 0u8..4,
        ) {
            let mut t = SubscriptionTable::new();
            for (id, f) in &subs {
                t.subscribe(SubscriberId::new(*id), *f);
            }
            let stream = StreamId::new(SensorId::new(sensor).unwrap(), garnet_wire::StreamIndex::new(idx));
            let got = t.match_subscribers(stream);
            let mut want: Vec<SubscriberId> = subs
                .iter()
                .filter(|(_, f)| f.matches(stream))
                .map(|(id, _)| SubscriberId::new(*id))
                .collect();
            want.sort();
            want.dedup();
            prop_assert_eq!(got.clone(), want);
            prop_assert_eq!(t.is_unclaimed(stream), got.is_empty());
        }

        #[test]
        fn subscribe_unsubscribe_is_identity(
            subs in proptest::collection::vec((0u32..20, arb_filter()), 0..40),
        ) {
            let mut t = SubscriptionTable::new();
            for (id, f) in &subs {
                t.subscribe(SubscriberId::new(*id), *f);
            }
            for (id, f) in &subs {
                t.unsubscribe(SubscriberId::new(*id), *f);
            }
            prop_assert_eq!(t.subscriber_count(), 0);
            prop_assert_eq!(t.subscription_count(), 0);
            let probe = StreamId::from_raw(0x0000_0100);
            prop_assert!(t.is_unclaimed(probe));
        }

        /// `match_count` agrees with the materialised match under
        /// arbitrary subscribe/unsubscribe interleavings, whether read
        /// through a hot cache, a cold cache, or no cache at all.
        #[test]
        fn match_count_agrees_under_mutation(
            ops in proptest::collection::vec((proptest::bool::ANY, 0u32..20, arb_filter()), 0..60),
            sensor in 0u32..50,
            idx in 0u8..4,
        ) {
            let mut t = SubscriptionTable::new();
            let stream = StreamId::new(SensorId::new(sensor).unwrap(), garnet_wire::StreamIndex::new(idx));
            let mut hot = MatchCache::new(DispatchCacheConfig { enabled: true, capacity: 64 });
            let mut off = MatchCache::new(DispatchCacheConfig::disabled());
            for (sub, id, f) in &ops {
                if *sub {
                    t.subscribe(SubscriberId::new(*id), *f);
                } else {
                    t.unsubscribe(SubscriberId::new(*id), *f);
                }
                // Hot: the same cache across every mutation — it must
                // revalidate. Cold: a fresh cache every probe.
                let want = t.match_subscribers(stream).len();
                prop_assert_eq!(t.match_count(stream), want);
                prop_assert_eq!(hot.match_count(&t, stream), want);
                prop_assert_eq!(off.match_count(&t, stream), want);
                let mut cold = MatchCache::new(DispatchCacheConfig::default());
                prop_assert_eq!(cold.match_count(&t, stream), want);
            }
        }

        /// Forward (by_stream/by_sensor/all) and reverse (filters)
        /// indexes stay in lockstep under arbitrary mutation sequences:
        /// the table's observable state equals a naive model's.
        #[test]
        fn forward_and_reverse_indexes_stay_in_lockstep(
            ops in proptest::collection::vec(
                (prop_oneof![Just(0u8), Just(1), Just(2)], 0u32..15, arb_filter()),
                0..60,
            ),
        ) {
            let mut t = SubscriptionTable::new();
            let mut model: BTreeMap<SubscriberId, BTreeSet<TopicFilter>> = BTreeMap::new();
            for (op, id, f) in &ops {
                let sub = SubscriberId::new(*id);
                match op {
                    0 => {
                        let was_new = model.entry(sub).or_default().insert(*f);
                        prop_assert_eq!(t.subscribe(sub, *f), was_new);
                    }
                    1 => {
                        let existed = model.get_mut(&sub).is_some_and(|fs| fs.remove(f));
                        if model.get(&sub).is_some_and(|fs| fs.is_empty()) {
                            model.remove(&sub);
                        }
                        prop_assert_eq!(t.unsubscribe(sub, *f), existed);
                    }
                    _ => {
                        let n = model.remove(&sub).map_or(0, |fs| fs.len());
                        prop_assert_eq!(t.unsubscribe_all(sub), n);
                    }
                }
            }
            // Reverse index ≡ model.
            prop_assert_eq!(t.subscriber_count(), model.len());
            prop_assert_eq!(
                t.subscription_count(),
                model.values().map(|fs| fs.len()).sum::<usize>()
            );
            for (sub, fs) in &model {
                let got: BTreeSet<TopicFilter> = t.filters_of(*sub).collect();
                prop_assert_eq!(&got, fs);
            }
            // Forward indexes ≡ model: every probe stream matches
            // exactly the subscribers whose model filters claim it.
            for sensor in 0u32..50 {
                for idx in 0u8..4 {
                    let s = StreamId::new(
                        SensorId::new(sensor).unwrap(),
                        garnet_wire::StreamIndex::new(idx),
                    );
                    let want: Vec<SubscriberId> = model
                        .iter()
                        .filter(|(_, fs)| fs.iter().any(|f| f.matches(s)))
                        .map(|(id, _)| *id)
                        .collect();
                    prop_assert_eq!(t.match_subscribers(s), want);
                }
            }
        }
    }
}
