//! The publish/subscribe subscription table.
//!
//! "Consumer processes use a publish/subscribe mechanism to access data
//! streams, which permits un-configured data streams to be detected"
//! (§4.2). The table maps a published [`StreamId`] to the set of
//! subscribers that should receive it; an empty match is exactly the
//! "unclaimed data" signal that routes a message to the Orphanage.
//!
//! Filters come in three granularities: one stream, every stream of one
//! sensor, or everything (wiretaps, loggers, the Orphanage itself).
//! Matching is O(subscribers-on-topic), not O(all-subscribers), so
//! dispatch cost scales with fan-out rather than population — the
//! property experiment E5 measures.

use std::collections::{BTreeMap, BTreeSet};

use core::fmt;
use garnet_wire::{SensorId, StreamId};
use serde::{Deserialize, Serialize};

/// Identifier of one subscriber (assigned by the Dispatching Service at
/// registration).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SubscriberId(u32);

impl SubscriberId {
    /// Creates a subscriber id.
    pub const fn new(raw: u32) -> Self {
        SubscriberId(raw)
    }

    /// The raw value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for SubscriberId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SubscriberId({})", self.0)
    }
}

impl fmt::Display for SubscriberId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sub{}", self.0)
    }
}

/// What a subscription matches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TopicFilter {
    /// Exactly one stream.
    Stream(StreamId),
    /// Every internal stream of one sensor.
    Sensor(SensorId),
    /// Every stream in the system.
    All,
}

impl TopicFilter {
    /// True if the filter matches `stream`.
    pub fn matches(&self, stream: StreamId) -> bool {
        match *self {
            TopicFilter::Stream(s) => s == stream,
            TopicFilter::Sensor(id) => stream.sensor() == id,
            TopicFilter::All => true,
        }
    }
}

/// The subscription table.
///
/// # Example
///
/// ```
/// use garnet_net::{SubscriberId, SubscriptionTable, TopicFilter};
/// use garnet_wire::{SensorId, StreamId};
///
/// let mut table = SubscriptionTable::new();
/// let alice = SubscriberId::new(1);
/// table.subscribe(alice, TopicFilter::Sensor(SensorId::new(7)?));
/// let stream = StreamId::from_raw((7 << 8) | 0);
/// assert_eq!(table.match_subscribers(stream), vec![alice]);
/// # Ok::<(), garnet_wire::WireError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct SubscriptionTable {
    by_stream: BTreeMap<u32, BTreeSet<SubscriberId>>,
    by_sensor: BTreeMap<u32, BTreeSet<SubscriberId>>,
    all: BTreeSet<SubscriberId>,
    // Reverse index so unsubscribe-all is O(own subscriptions).
    filters: BTreeMap<SubscriberId, BTreeSet<TopicFilter>>,
}

impl SubscriptionTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a subscription. Returns `true` if it was new.
    pub fn subscribe(&mut self, subscriber: SubscriberId, filter: TopicFilter) -> bool {
        let inserted = match filter {
            TopicFilter::Stream(s) => {
                self.by_stream.entry(s.to_raw()).or_default().insert(subscriber)
            }
            TopicFilter::Sensor(id) => {
                self.by_sensor.entry(id.as_u32()).or_default().insert(subscriber)
            }
            TopicFilter::All => self.all.insert(subscriber),
        };
        self.filters.entry(subscriber).or_default().insert(filter);
        inserted
    }

    /// Removes one subscription. Returns `true` if it existed.
    pub fn unsubscribe(&mut self, subscriber: SubscriberId, filter: TopicFilter) -> bool {
        let removed = match filter {
            TopicFilter::Stream(s) => {
                let raw = s.to_raw();
                if let Some(set) = self.by_stream.get_mut(&raw) {
                    let removed = set.remove(&subscriber);
                    if set.is_empty() {
                        self.by_stream.remove(&raw);
                    }
                    removed
                } else {
                    false
                }
            }
            TopicFilter::Sensor(id) => {
                let raw = id.as_u32();
                if let Some(set) = self.by_sensor.get_mut(&raw) {
                    let removed = set.remove(&subscriber);
                    if set.is_empty() {
                        self.by_sensor.remove(&raw);
                    }
                    removed
                } else {
                    false
                }
            }
            TopicFilter::All => self.all.remove(&subscriber),
        };
        if let Some(fs) = self.filters.get_mut(&subscriber) {
            fs.remove(&filter);
            if fs.is_empty() {
                self.filters.remove(&subscriber);
            }
        }
        removed
    }

    /// Removes every subscription held by `subscriber` (consumer
    /// departure). Returns how many were removed.
    pub fn unsubscribe_all(&mut self, subscriber: SubscriberId) -> usize {
        let Some(filters) = self.filters.remove(&subscriber) else {
            return 0;
        };
        let n = filters.len();
        for f in filters {
            match f {
                TopicFilter::Stream(s) => {
                    if let Some(set) = self.by_stream.get_mut(&s.to_raw()) {
                        set.remove(&subscriber);
                        if set.is_empty() {
                            self.by_stream.remove(&s.to_raw());
                        }
                    }
                }
                TopicFilter::Sensor(id) => {
                    if let Some(set) = self.by_sensor.get_mut(&id.as_u32()) {
                        set.remove(&subscriber);
                        if set.is_empty() {
                            self.by_sensor.remove(&id.as_u32());
                        }
                    }
                }
                TopicFilter::All => {
                    self.all.remove(&subscriber);
                }
            }
        }
        n
    }

    /// The subscribers that should receive a message on `stream`,
    /// deduplicated, in ascending id order (deterministic dispatch).
    pub fn match_subscribers(&self, stream: StreamId) -> Vec<SubscriberId> {
        let mut out: BTreeSet<SubscriberId> = self.all.clone();
        if let Some(set) = self.by_sensor.get(&stream.sensor().as_u32()) {
            out.extend(set.iter().copied());
        }
        if let Some(set) = self.by_stream.get(&stream.to_raw()) {
            out.extend(set.iter().copied());
        }
        out.into_iter().collect()
    }

    /// How many subscribers [`SubscriptionTable::match_subscribers`]
    /// would return for `stream`, without materialising the list — the
    /// allocation-free form for hot paths that only account fan-out.
    pub fn match_count(&self, stream: StreamId) -> usize {
        let by_sensor = self.by_sensor.get(&stream.sensor().as_u32());
        let by_stream = self.by_stream.get(&stream.to_raw());
        // The three indexes can overlap (one subscriber holding All and
        // a Sensor filter, say), so the union size counts each narrower
        // set's members not already claimed by a wider one.
        let mut count = self.all.len();
        if let Some(set) = by_sensor {
            count += set.iter().filter(|s| !self.all.contains(s)).count();
        }
        if let Some(set) = by_stream {
            count += set
                .iter()
                .filter(|s| !self.all.contains(s) && by_sensor.is_none_or(|x| !x.contains(s)))
                .count();
        }
        count
    }

    /// True if no subscription matches `stream` — the message is
    /// *unclaimed* and belongs to the Orphanage.
    pub fn is_unclaimed(&self, stream: StreamId) -> bool {
        if !self.all.is_empty() {
            return false;
        }
        if self.by_sensor.get(&stream.sensor().as_u32()).is_some_and(|s| !s.is_empty()) {
            return false;
        }
        self.by_stream.get(&stream.to_raw()).is_none_or(|s| s.is_empty())
    }

    /// Number of distinct subscribers with at least one subscription.
    pub fn subscriber_count(&self) -> usize {
        self.filters.len()
    }

    /// The filters `subscriber` currently holds, ascending.
    pub fn filters_of(&self, subscriber: SubscriberId) -> impl Iterator<Item = TopicFilter> + '_ {
        self.filters.get(&subscriber).into_iter().flat_map(|fs| fs.iter().copied())
    }

    /// Every subscriber with at least one subscription, ascending.
    pub fn subscriber_ids(&self) -> impl Iterator<Item = SubscriberId> + '_ {
        self.filters.keys().copied()
    }

    /// Total number of live subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.filters.values().map(|f| f.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(sensor: u32, idx: u8) -> StreamId {
        StreamId::new(SensorId::new(sensor).unwrap(), garnet_wire::StreamIndex::new(idx))
    }

    #[test]
    fn exact_stream_subscription() {
        let mut t = SubscriptionTable::new();
        let a = SubscriberId::new(1);
        assert!(t.subscribe(a, TopicFilter::Stream(stream(5, 0))));
        assert_eq!(t.match_subscribers(stream(5, 0)), vec![a]);
        assert!(t.match_subscribers(stream(5, 1)).is_empty());
        assert!(t.match_subscribers(stream(6, 0)).is_empty());
    }

    #[test]
    fn sensor_subscription_matches_all_indices() {
        let mut t = SubscriptionTable::new();
        let a = SubscriberId::new(1);
        t.subscribe(a, TopicFilter::Sensor(SensorId::new(5).unwrap()));
        assert_eq!(t.match_subscribers(stream(5, 0)), vec![a]);
        assert_eq!(t.match_subscribers(stream(5, 255)), vec![a]);
        assert!(t.match_subscribers(stream(4, 0)).is_empty());
    }

    #[test]
    fn all_subscription_matches_everything() {
        let mut t = SubscriptionTable::new();
        let a = SubscriberId::new(9);
        t.subscribe(a, TopicFilter::All);
        assert_eq!(t.match_subscribers(stream(1, 1)), vec![a]);
        assert!(!t.is_unclaimed(stream(123, 9)));
    }

    #[test]
    fn overlapping_filters_deduplicate() {
        let mut t = SubscriptionTable::new();
        let a = SubscriberId::new(1);
        t.subscribe(a, TopicFilter::Stream(stream(5, 0)));
        t.subscribe(a, TopicFilter::Sensor(SensorId::new(5).unwrap()));
        t.subscribe(a, TopicFilter::All);
        assert_eq!(t.match_subscribers(stream(5, 0)), vec![a]);
    }

    #[test]
    fn match_order_is_ascending_and_deterministic() {
        let mut t = SubscriptionTable::new();
        for id in [30u32, 10, 20] {
            t.subscribe(SubscriberId::new(id), TopicFilter::Stream(stream(1, 0)));
        }
        let ids: Vec<u32> = t.match_subscribers(stream(1, 0)).iter().map(|s| s.as_u32()).collect();
        assert_eq!(ids, vec![10, 20, 30]);
    }

    #[test]
    fn match_count_agrees_with_match_subscribers() {
        let mut t = SubscriptionTable::new();
        t.subscribe(SubscriberId::new(1), TopicFilter::All);
        t.subscribe(SubscriberId::new(1), TopicFilter::Sensor(SensorId::new(5).unwrap()));
        t.subscribe(SubscriberId::new(2), TopicFilter::Sensor(SensorId::new(5).unwrap()));
        t.subscribe(SubscriberId::new(2), TopicFilter::Stream(stream(5, 0)));
        t.subscribe(SubscriberId::new(3), TopicFilter::Stream(stream(5, 0)));
        t.subscribe(SubscriberId::new(4), TopicFilter::Stream(stream(7, 1)));
        for s in [stream(5, 0), stream(5, 1), stream(7, 1), stream(9, 0)] {
            assert_eq!(
                t.match_count(s),
                t.match_subscribers(s).len(),
                "count diverged from the materialised match for {s:?}"
            );
        }
        assert_eq!(t.match_count(stream(5, 0)), 3);
        let empty = SubscriptionTable::new();
        assert_eq!(empty.match_count(stream(1, 0)), 0);
    }

    #[test]
    fn duplicate_subscribe_is_idempotent() {
        let mut t = SubscriptionTable::new();
        let a = SubscriberId::new(1);
        assert!(t.subscribe(a, TopicFilter::All));
        assert!(!t.subscribe(a, TopicFilter::All));
        assert_eq!(t.subscription_count(), 1);
    }

    #[test]
    fn unsubscribe_restores_unclaimed() {
        let mut t = SubscriptionTable::new();
        let a = SubscriberId::new(1);
        let f = TopicFilter::Stream(stream(2, 3));
        t.subscribe(a, f);
        assert!(!t.is_unclaimed(stream(2, 3)));
        assert!(t.unsubscribe(a, f));
        assert!(t.is_unclaimed(stream(2, 3)));
        assert!(!t.unsubscribe(a, f), "second unsubscribe is a no-op");
        assert_eq!(t.subscriber_count(), 0);
    }

    #[test]
    fn unsubscribe_all_removes_everything() {
        let mut t = SubscriptionTable::new();
        let a = SubscriberId::new(1);
        let b = SubscriberId::new(2);
        t.subscribe(a, TopicFilter::Stream(stream(1, 0)));
        t.subscribe(a, TopicFilter::Sensor(SensorId::new(2).unwrap()));
        t.subscribe(a, TopicFilter::All);
        t.subscribe(b, TopicFilter::All);
        assert_eq!(t.unsubscribe_all(a), 3);
        assert_eq!(t.match_subscribers(stream(1, 0)), vec![b]);
        assert_eq!(t.subscriber_count(), 1);
        assert_eq!(t.unsubscribe_all(a), 0);
    }

    #[test]
    fn unclaimed_logic() {
        let mut t = SubscriptionTable::new();
        assert!(t.is_unclaimed(stream(9, 9)));
        let a = SubscriberId::new(1);
        t.subscribe(a, TopicFilter::Sensor(SensorId::new(9).unwrap()));
        assert!(!t.is_unclaimed(stream(9, 9)));
        assert!(t.is_unclaimed(stream(8, 0)));
    }

    #[test]
    fn filter_matches_directly() {
        assert!(TopicFilter::All.matches(stream(1, 1)));
        assert!(TopicFilter::Sensor(SensorId::new(1).unwrap()).matches(stream(1, 9)));
        assert!(!TopicFilter::Sensor(SensorId::new(2).unwrap()).matches(stream(1, 9)));
        assert!(TopicFilter::Stream(stream(3, 3)).matches(stream(3, 3)));
        assert!(!TopicFilter::Stream(stream(3, 3)).matches(stream(3, 4)));
    }

    #[test]
    fn large_population_small_fanout_matching() {
        // 10k subscribers on other streams must not appear in a match.
        let mut t = SubscriptionTable::new();
        for i in 0..10_000u32 {
            t.subscribe(SubscriberId::new(i), TopicFilter::Stream(stream(i % 1000, 0)));
        }
        let m = t.match_subscribers(stream(7, 0));
        assert_eq!(m.len(), 10); // ids 7, 1007, 2007, ...
        for s in m {
            assert_eq!(s.as_u32() % 1000, 7);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_filter() -> impl Strategy<Value = TopicFilter> {
        prop_oneof![
            (0u32..50, 0u8..4).prop_map(|(s, i)| TopicFilter::Stream(StreamId::new(
                SensorId::new(s).unwrap(),
                garnet_wire::StreamIndex::new(i)
            ))),
            (0u32..50).prop_map(|s| TopicFilter::Sensor(SensorId::new(s).unwrap())),
            Just(TopicFilter::All),
        ]
    }

    proptest! {
        #[test]
        fn match_equals_bruteforce(
            subs in proptest::collection::vec((0u32..30, arb_filter()), 0..60),
            sensor in 0u32..50,
            idx in 0u8..4,
        ) {
            let mut t = SubscriptionTable::new();
            for (id, f) in &subs {
                t.subscribe(SubscriberId::new(*id), *f);
            }
            let stream = StreamId::new(SensorId::new(sensor).unwrap(), garnet_wire::StreamIndex::new(idx));
            let got = t.match_subscribers(stream);
            let mut want: Vec<SubscriberId> = subs
                .iter()
                .filter(|(_, f)| f.matches(stream))
                .map(|(id, _)| SubscriberId::new(*id))
                .collect();
            want.sort();
            want.dedup();
            prop_assert_eq!(got.clone(), want);
            prop_assert_eq!(t.is_unclaimed(stream), got.is_empty());
        }

        #[test]
        fn subscribe_unsubscribe_is_identity(
            subs in proptest::collection::vec((0u32..20, arb_filter()), 0..40),
        ) {
            let mut t = SubscriptionTable::new();
            for (id, f) in &subs {
                t.subscribe(SubscriberId::new(*id), *f);
            }
            for (id, f) in &subs {
                t.unsubscribe(SubscriberId::new(*id), *f);
            }
            prop_assert_eq!(t.subscriber_count(), 0);
            prop_assert_eq!(t.subscription_count(), 0);
            let probe = StreamId::from_raw(0x0000_0100);
            prop_assert!(t.is_unclaimed(probe));
        }
    }
}
