//! The asynchronous message bus for live (threaded) deployments.
//!
//! Experiments run on the deterministic `garnet-simkit` event queue; the
//! live examples run each middleware service on its own thread,
//! exchanging messages through this bus. Endpoints are registered by
//! name; any holder of the bus can send to any endpoint — exactly the
//! paper's "asynchronous message exchange" (§3) with no further delivery
//! guarantees layered on top.

use std::collections::HashMap;
use std::sync::Arc;

use core::fmt;
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use parking_lot::RwLock;

/// Errors raised by bus operations.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum BusError {
    /// No endpoint is registered under the requested name.
    UnknownEndpoint(String),
    /// The endpoint's queue is full (bounded endpoints only).
    Backpressure(String),
    /// The endpoint's receiver was dropped.
    Disconnected(String),
    /// An endpoint with this name is already registered.
    DuplicateEndpoint(String),
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusError::UnknownEndpoint(n) => write!(f, "no endpoint named {n:?}"),
            BusError::Backpressure(n) => write!(f, "endpoint {n:?} queue is full"),
            BusError::Disconnected(n) => write!(f, "endpoint {n:?} receiver was dropped"),
            BusError::DuplicateEndpoint(n) => write!(f, "endpoint {n:?} already registered"),
        }
    }
}

impl std::error::Error for BusError {}

/// A clonable handle to the shared bus carrying messages of type `M`.
///
/// # Example
///
/// ```
/// use garnet_net::ThreadedBus;
///
/// let bus: ThreadedBus<String> = ThreadedBus::new();
/// let inbox = bus.register("filtering", 16)?;
/// bus.send("filtering", "hello".to_owned())?;
/// assert_eq!(inbox.recv().unwrap(), "hello");
/// # Ok::<(), garnet_net::BusError>(())
/// ```
pub struct ThreadedBus<M> {
    endpoints: Arc<RwLock<HashMap<String, Sender<M>>>>,
}

impl<M> Clone for ThreadedBus<M> {
    fn clone(&self) -> Self {
        ThreadedBus { endpoints: Arc::clone(&self.endpoints) }
    }
}

impl<M> Default for ThreadedBus<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> ThreadedBus<M> {
    /// Creates an empty bus.
    pub fn new() -> Self {
        ThreadedBus { endpoints: Arc::new(RwLock::new(HashMap::new())) }
    }

    /// Registers a named endpoint with a bounded queue of `capacity`
    /// messages (0 = rendezvous), returning its receiving half.
    ///
    /// # Errors
    ///
    /// [`BusError::DuplicateEndpoint`] if the name is taken.
    pub fn register(&self, name: &str, capacity: usize) -> Result<Receiver<M>, BusError> {
        let mut map = self.endpoints.write();
        if map.contains_key(name) {
            return Err(BusError::DuplicateEndpoint(name.to_owned()));
        }
        let (tx, rx) = channel::bounded(capacity);
        map.insert(name.to_owned(), tx);
        Ok(rx)
    }

    /// Removes an endpoint; subsequent sends fail with
    /// [`BusError::UnknownEndpoint`].
    pub fn deregister(&self, name: &str) -> bool {
        self.endpoints.write().remove(name).is_some()
    }

    /// Sends without blocking.
    ///
    /// # Errors
    ///
    /// * [`BusError::UnknownEndpoint`] — name not registered.
    /// * [`BusError::Backpressure`] — queue full (message returned to
    ///   caller inside the error path by value semantics: it is dropped;
    ///   callers needing the value back should clone or use bounded
    ///   retry).
    /// * [`BusError::Disconnected`] — receiver dropped.
    pub fn send(&self, name: &str, message: M) -> Result<(), BusError> {
        let map = self.endpoints.read();
        let Some(tx) = map.get(name) else {
            return Err(BusError::UnknownEndpoint(name.to_owned()));
        };
        match tx.try_send(message) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(BusError::Backpressure(name.to_owned())),
            Err(TrySendError::Disconnected(_)) => Err(BusError::Disconnected(name.to_owned())),
        }
    }

    /// Sends, blocking while the endpoint's queue is full (producer
    /// threads that prefer backpressure to drops).
    ///
    /// # Errors
    ///
    /// * [`BusError::UnknownEndpoint`] — name not registered.
    /// * [`BusError::Disconnected`] — receiver dropped (possibly while
    ///   blocked).
    pub fn send_blocking(&self, name: &str, message: M) -> Result<(), BusError> {
        let tx = {
            let map = self.endpoints.read();
            match map.get(name) {
                Some(tx) => tx.clone(),
                None => return Err(BusError::UnknownEndpoint(name.to_owned())),
            }
        };
        tx.send(message)
            .map_err(|_| BusError::Disconnected(name.to_owned()))
    }

    /// Names of all live endpoints, sorted (diagnostics).
    pub fn endpoint_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.endpoints.read().keys().cloned().collect();
        names.sort();
        names
    }
}

impl<M> fmt::Debug for ThreadedBus<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadedBus")
            .field("endpoints", &self.endpoint_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn register_send_receive() {
        let bus: ThreadedBus<u32> = ThreadedBus::new();
        let rx = bus.register("a", 4).unwrap();
        bus.send("a", 7).unwrap();
        bus.send("a", 8).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.recv().unwrap(), 8);
    }

    #[test]
    fn unknown_endpoint_errors() {
        let bus: ThreadedBus<u32> = ThreadedBus::new();
        assert_eq!(bus.send("nope", 1), Err(BusError::UnknownEndpoint("nope".into())));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let bus: ThreadedBus<u32> = ThreadedBus::new();
        let _rx = bus.register("a", 1).unwrap();
        assert_eq!(bus.register("a", 1).err(), Some(BusError::DuplicateEndpoint("a".into())));
    }

    #[test]
    fn backpressure_on_full_queue() {
        let bus: ThreadedBus<u32> = ThreadedBus::new();
        let _rx = bus.register("a", 1).unwrap();
        bus.send("a", 1).unwrap();
        assert_eq!(bus.send("a", 2), Err(BusError::Backpressure("a".into())));
    }

    #[test]
    fn disconnected_receiver_detected() {
        let bus: ThreadedBus<u32> = ThreadedBus::new();
        let rx = bus.register("a", 1).unwrap();
        drop(rx);
        assert_eq!(bus.send("a", 1), Err(BusError::Disconnected("a".into())));
    }

    #[test]
    fn deregister_removes_endpoint() {
        let bus: ThreadedBus<u32> = ThreadedBus::new();
        let _rx = bus.register("a", 1).unwrap();
        assert!(bus.deregister("a"));
        assert!(!bus.deregister("a"));
        assert!(matches!(bus.send("a", 1), Err(BusError::UnknownEndpoint(_))));
    }

    #[test]
    fn cross_thread_exchange() {
        let bus: ThreadedBus<u64> = ThreadedBus::new();
        let rx = bus.register("svc", 1024).unwrap();
        let sender_bus = bus.clone();
        let producer = thread::spawn(move || {
            for i in 0..1000u64 {
                // Spin on backpressure: bounded queue, same-machine test.
                loop {
                    match sender_bus.send("svc", i) {
                        Ok(()) => break,
                        Err(BusError::Backpressure(_)) => thread::yield_now(),
                        Err(e) => panic!("{e}"),
                    }
                }
            }
        });
        let mut sum = 0u64;
        for _ in 0..1000 {
            sum += rx.recv().unwrap();
        }
        producer.join().unwrap();
        assert_eq!(sum, 999 * 1000 / 2);
    }

    #[test]
    fn send_blocking_waits_for_space() {
        let bus: ThreadedBus<u32> = ThreadedBus::new();
        let rx = bus.register("a", 1).unwrap();
        bus.send("a", 1).unwrap();
        let sender = bus.clone();
        let blocked = thread::spawn(move || sender.send_blocking("a", 2));
        thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(rx.recv().unwrap(), 1); // frees a slot
        blocked.join().unwrap().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn send_blocking_errors_on_unknown_and_disconnected() {
        let bus: ThreadedBus<u32> = ThreadedBus::new();
        assert!(matches!(bus.send_blocking("nope", 1), Err(BusError::UnknownEndpoint(_))));
        let rx = bus.register("a", 1).unwrap();
        drop(rx);
        assert!(matches!(bus.send_blocking("a", 1), Err(BusError::Disconnected(_))));
    }

    #[test]
    fn endpoint_names_sorted() {
        let bus: ThreadedBus<()> = ThreadedBus::new();
        let _a = bus.register("zeta", 1).unwrap();
        let _b = bus.register("alpha", 1).unwrap();
        assert_eq!(bus.endpoint_names(), vec!["alpha".to_owned(), "zeta".to_owned()]);
    }
}
