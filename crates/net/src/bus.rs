//! The asynchronous message bus for live (threaded) deployments.
//!
//! Experiments run on the deterministic `garnet-simkit` event queue; the
//! live examples run each middleware service on its own thread,
//! exchanging messages through this bus. Endpoints are registered by
//! name; any holder of the bus can send to any endpoint — exactly the
//! paper's "asynchronous message exchange" (§3) with no further delivery
//! guarantees layered on top.

use std::collections::HashMap;
use std::sync::Arc;

use core::fmt;
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use parking_lot::RwLock;

/// Errors raised by bus operations.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum BusError {
    /// No endpoint is registered under the requested name.
    UnknownEndpoint(String),
    /// The endpoint's queue is full (bounded endpoints only).
    Backpressure(String),
    /// The endpoint's receiver was dropped.
    Disconnected(String),
    /// An endpoint with this name is already registered.
    DuplicateEndpoint(String),
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusError::UnknownEndpoint(n) => write!(f, "no endpoint named {n:?}"),
            BusError::Backpressure(n) => write!(f, "endpoint {n:?} queue is full"),
            BusError::Disconnected(n) => write!(f, "endpoint {n:?} receiver was dropped"),
            BusError::DuplicateEndpoint(n) => write!(f, "endpoint {n:?} already registered"),
        }
    }
}

impl std::error::Error for BusError {}

/// A clonable handle to the shared bus carrying messages of type `M`.
///
/// # Example
///
/// ```
/// use garnet_net::ThreadedBus;
///
/// let bus: ThreadedBus<String> = ThreadedBus::new();
/// let inbox = bus.register("filtering", 16)?;
/// bus.send("filtering", "hello".to_owned())?;
/// assert_eq!(inbox.recv().unwrap(), "hello");
/// # Ok::<(), garnet_net::BusError>(())
/// ```
pub struct ThreadedBus<M> {
    endpoints: Arc<RwLock<HashMap<String, Sender<M>>>>,
}

impl<M> Clone for ThreadedBus<M> {
    fn clone(&self) -> Self {
        ThreadedBus { endpoints: Arc::clone(&self.endpoints) }
    }
}

impl<M> Default for ThreadedBus<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> ThreadedBus<M> {
    /// Creates an empty bus.
    pub fn new() -> Self {
        ThreadedBus { endpoints: Arc::new(RwLock::new(HashMap::new())) }
    }

    /// Registers a named endpoint with a bounded queue of `capacity`
    /// messages (0 = rendezvous), returning its receiving half.
    ///
    /// # Errors
    ///
    /// [`BusError::DuplicateEndpoint`] if the name is taken.
    pub fn register(&self, name: &str, capacity: usize) -> Result<Receiver<M>, BusError> {
        let mut map = self.endpoints.write();
        if map.contains_key(name) {
            return Err(BusError::DuplicateEndpoint(name.to_owned()));
        }
        let (tx, rx) = channel::bounded(capacity);
        map.insert(name.to_owned(), tx);
        Ok(rx)
    }

    /// Removes an endpoint; subsequent sends fail with
    /// [`BusError::UnknownEndpoint`].
    pub fn deregister(&self, name: &str) -> bool {
        self.endpoints.write().remove(name).is_some()
    }

    /// Sends without blocking.
    ///
    /// # Errors
    ///
    /// * [`BusError::UnknownEndpoint`] — name not registered.
    /// * [`BusError::Backpressure`] — queue full (message returned to
    ///   caller inside the error path by value semantics: it is dropped;
    ///   callers needing the value back should clone or use bounded
    ///   retry).
    /// * [`BusError::Disconnected`] — receiver dropped.
    pub fn send(&self, name: &str, message: M) -> Result<(), BusError> {
        let map = self.endpoints.read();
        let Some(tx) = map.get(name) else {
            return Err(BusError::UnknownEndpoint(name.to_owned()));
        };
        match tx.try_send(message) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(BusError::Backpressure(name.to_owned())),
            Err(TrySendError::Disconnected(_)) => Err(BusError::Disconnected(name.to_owned())),
        }
    }

    /// Sends, blocking while the endpoint's queue is full (producer
    /// threads that prefer backpressure to drops).
    ///
    /// # Errors
    ///
    /// * [`BusError::UnknownEndpoint`] — name not registered.
    /// * [`BusError::Disconnected`] — receiver dropped (possibly while
    ///   blocked).
    pub fn send_blocking(&self, name: &str, message: M) -> Result<(), BusError> {
        let tx = {
            let map = self.endpoints.read();
            match map.get(name) {
                Some(tx) => tx.clone(),
                None => return Err(BusError::UnknownEndpoint(name.to_owned())),
            }
        };
        tx.send(message).map_err(|_| BusError::Disconnected(name.to_owned()))
    }

    /// Names of all live endpoints, sorted (diagnostics).
    pub fn endpoint_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.endpoints.read().keys().cloned().collect();
        names.sort();
        names
    }
}

impl<M> fmt::Debug for ThreadedBus<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadedBus").field("endpoints", &self.endpoint_names()).finish()
    }
}

/// A shard worker died or refused a job: the loss is recorded here
/// instead of silently vanishing (or hanging the submission-order
/// merge on a sequence number that will never arrive).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardFailure {
    /// The shard that lost the job.
    pub shard: usize,
    /// The submission sequence number of the lost job.
    pub seq: u64,
    /// The panic payload, or a synthetic reason for jobs dropped on a
    /// shard that was already poisoned.
    pub reason: String,
}

impl fmt::Display for ShardFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard {} lost job #{}: {}", self.shard, self.seq, self.reason)
    }
}

/// A job handed back by [`ShardPool::try_submit`].
#[derive(Debug)]
pub enum RefusedJob<I> {
    /// The shard's bounded job queue is at capacity (backpressure).
    Full(I),
    /// The shard worker has died; restart it before resubmitting.
    Poisoned(I),
}

/// Automatic shard-restart policy: a poisoned shard is rebuilt from the
/// retained factory as long as the shard has been restarted fewer than
/// `max_restarts` times inside the sliding `window`. Beyond that budget
/// the shard stays poisoned (a crash-looping stage should surface, not
/// flap), and restart returns to the caller via
/// [`ShardPool::restart_shard`].
///
/// Restarts are separated by **exponential backoff**: the n-th restart
/// inside the window waits `base_backoff * 2^n` (capped at
/// `backoff_cap`) after the worker died before rebuilding it. Without
/// backoff a deterministic poison pill burns the whole `max_restarts`
/// budget in microseconds; with it, the budget spans real time and a
/// transient fault gets room to clear.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SupervisionConfig {
    /// Restarts allowed per shard inside the window (0 disables
    /// automatic restart).
    pub max_restarts: u32,
    /// Sliding wall-clock window the budget applies to.
    pub window: std::time::Duration,
    /// Delay before the first restart in a window; doubles per restart.
    /// `Duration::ZERO` restarts as soon as the poisoning is observed.
    pub base_backoff: std::time::Duration,
    /// Upper bound on the doubled backoff delay.
    pub backoff_cap: std::time::Duration,
}

impl Default for SupervisionConfig {
    /// Three restarts per shard per minute, 10 ms first backoff capped
    /// at 5 s — generous enough for a transient poison pill, tight
    /// enough that a deterministic crash loop parks the shard within
    /// seconds instead of exhausting its budget in microseconds.
    fn default() -> Self {
        SupervisionConfig {
            max_restarts: 3,
            window: std::time::Duration::from_secs(60),
            base_backoff: std::time::Duration::from_millis(10),
            backoff_cap: std::time::Duration::from_secs(5),
        }
    }
}

impl SupervisionConfig {
    /// A policy that restarts immediately (no backoff) — the pre-backoff
    /// behaviour, useful in tests that crash shards deterministically.
    pub fn immediate(max_restarts: u32, window: std::time::Duration) -> Self {
        SupervisionConfig {
            max_restarts,
            window,
            base_backoff: std::time::Duration::ZERO,
            backoff_cap: std::time::Duration::ZERO,
        }
    }

    /// The backoff delay applied before the restart that follows
    /// `prior_restarts` earlier restarts inside the current window.
    pub fn restart_delay(&self, prior_restarts: u32) -> std::time::Duration {
        let factor = 1u32 << prior_restarts.min(20);
        self.base_backoff.saturating_mul(factor).min(self.backoff_cap)
    }
}

/// One automatic shard restart performed by the supervision policy,
/// with the backoff delay that was applied before it — surfaced so a
/// driver can put the delay in the restart's trace record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RestartEvent {
    /// The shard that was rebuilt.
    pub shard: usize,
    /// The exponential-backoff delay this restart waited out.
    pub delay: std::time::Duration,
}

/// The scheduling class a submission carries through a pool or edge —
/// the QoS layer's **Control > Actuation > Data** tiers, tagged at the
/// channel boundary so per-class flow through every stage is
/// observable. The tag is accounting, not routing: submission order
/// and the deterministic merge are class-blind (priority is enforced
/// upstream, at the facade scheduler).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeClass {
    /// Graph-keeping jobs (reorder flushes, bookkeeping events).
    Control,
    /// Actuation-chain jobs.
    Actuation,
    /// Data-plane jobs (frames, filtered deliveries) — the default for
    /// untagged submissions.
    Data,
}

impl EdgeClass {
    /// Dense index for per-class arrays (Control, Actuation, Data).
    pub fn index(self) -> usize {
        match self {
            EdgeClass::Control => 0,
            EdgeClass::Actuation => 1,
            EdgeClass::Data => 2,
        }
    }
}

fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with a non-string payload".to_owned()
    }
}

/// One shard's stage function: owns the shard's state, runs on the
/// shard's worker thread.
pub type Stage<I, O> = Box<dyn FnMut(I) -> O + Send>;
type StageFactory<I, O> = Box<dyn FnMut(usize) -> Stage<I, O>>;
/// One result hand-off from a shard worker: every job of one
/// [`JobBatch`] the worker finished, in batch order. Mirroring the job
/// channel's batching on the way back keeps the result channel's
/// send/recv cost per *batch*, not per job.
type ShardResult<O> = (usize, Vec<(u64, Result<O, String>)>);
/// One channel hand-off to a shard worker: a burst of sequenced jobs.
/// Single submissions ride as one-element batches, so the bounded job
/// queue counts hand-offs, and batch submission amortises the channel
/// rendezvous over the burst.
type JobBatch<I> = Vec<(u64, I)>;

/// A fixed pool of shard workers with a deterministic output merge and
/// worker-failure supervision.
///
/// Each shard runs one stateful stage function on its own thread; jobs
/// are tagged with a global submission sequence number and the pool
/// reassembles outputs in exactly that order, so the result stream is
/// **bit-identical regardless of thread scheduling**. This is the
/// threaded driver of the middleware's sharded ingest stage: the caller
/// partitions work (e.g. by sensor id) and the pool guarantees that
/// whatever interleaving the OS produces, downstream observers see the
/// submission order.
///
/// A panicking stage does not wedge the pool: the panic is caught, the
/// shard is marked **poisoned** (its state may be corrupt), and the
/// panicked job — plus anything queued behind it on that shard — is
/// surfaced as a typed [`ShardFailure`] via [`ShardPool::take_failures`]
/// while the merge skips the lost sequence numbers instead of waiting
/// forever. Other shards keep delivering; a poisoned shard can be
/// rebuilt with fresh state via [`ShardPool::restart_shard`].
///
/// Result channels are unbounded so a worker can never block on a slow
/// collector while the submitter blocks on a full job queue (the classic
/// fan-out/fan-in deadlock); memory is bounded by the caller keeping
/// submissions and [`ShardPool::drain`] calls interleaved.
///
/// # Example
///
/// ```
/// use garnet_net::ShardPool;
///
/// let mut pool: ShardPool<u64, u64> = ShardPool::new(4, 16, |_shard| {
///     let mut seen = 0u64; // per-shard state
///     Box::new(move |x| {
///         seen += 1;
///         x * 10 + seen
///     })
/// });
/// for i in 0..8u64 {
///     pool.submit((i % 4) as usize, i);
/// }
/// let (out, failures) = pool.finish();
/// assert!(failures.is_empty(), "no worker died");
/// assert_eq!(out.len(), 8, "submission-order merge, nothing lost");
/// assert_eq!(out[0], 1, "job 0 was shard 0's first job");
/// assert_eq!(out[4], 42, "job 4 was shard 0's second job");
/// ```
pub struct ShardPool<I: Send + 'static, O: Send + 'static> {
    jobs: Vec<Sender<JobBatch<I>>>,
    results: Receiver<ShardResult<O>>,
    result_tx: Sender<ShardResult<O>>,
    workers: Vec<Option<std::thread::JoinHandle<()>>>,
    factory: StageFactory<I, O>,
    capacity: usize,
    next_seq: u64,
    collected: std::collections::BTreeMap<u64, O>,
    next_out: u64,
    /// Seqs submitted per shard and not yet returned (FIFO per shard):
    /// the set a panic takes down with it.
    in_flight: Vec<Vec<u64>>,
    /// Seqs that will never produce an output; the merge skips them.
    failed_seqs: std::collections::BTreeSet<u64>,
    poisoned: Vec<bool>,
    failures: Vec<ShardFailure>,
    supervision: Option<SupervisionConfig>,
    /// Recent restart instants per shard, pruned to the sliding window.
    restart_times: Vec<std::collections::VecDeque<std::time::Instant>>,
    /// When each shard's poisoning was first observed (backoff clock).
    poisoned_at: Vec<Option<std::time::Instant>>,
    restarts: u64,
    restart_events: Vec<RestartEvent>,
    /// Jobs accepted per [`EdgeClass`] (refused try-submissions are not
    /// counted — they consumed no sequence number).
    class_submits: [u64; 3],
}

impl<I: Send + 'static, O: Send + 'static> ShardPool<I, O> {
    /// Spawns `shards` workers (at least one). `factory` is called once
    /// per shard to build that shard's stage function, which owns any
    /// per-shard state; the factory is retained so
    /// [`ShardPool::restart_shard`] can rebuild a poisoned shard with
    /// fresh state. `capacity` bounds each shard's job queue;
    /// [`ShardPool::submit`] blocks when the target shard is that far
    /// behind, [`ShardPool::try_submit`] hands the job back instead.
    pub fn new<F>(shards: usize, capacity: usize, factory: F) -> Self
    where
        F: FnMut(usize) -> Stage<I, O> + 'static,
    {
        Self::with_supervision(shards, capacity, None, factory)
    }

    /// [`ShardPool::new`] with an automatic restart policy: with a
    /// [`SupervisionConfig`], a poisoned shard is rebuilt from the
    /// factory on the next pool interaction instead of waiting for the
    /// caller to notice and call [`ShardPool::restart_shard`]. Jobs
    /// in flight on the dying shard are still surfaced as
    /// [`ShardFailure`]s — supervision bounds the blast radius, it does
    /// not hide the blast.
    pub fn with_supervision<F>(
        shards: usize,
        capacity: usize,
        supervision: Option<SupervisionConfig>,
        mut factory: F,
    ) -> Self
    where
        F: FnMut(usize) -> Stage<I, O> + 'static,
    {
        let shards = shards.max(1);
        let capacity = capacity.max(1);
        let (result_tx, results) = channel::unbounded::<ShardResult<O>>();
        let mut jobs = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = channel::bounded::<JobBatch<I>>(capacity);
            jobs.push(tx);
            workers.push(Some(Self::spawn_worker(shard, rx, result_tx.clone(), factory(shard))));
        }
        ShardPool {
            jobs,
            results,
            result_tx,
            workers,
            factory: Box::new(factory),
            capacity,
            next_seq: 0,
            collected: std::collections::BTreeMap::new(),
            next_out: 0,
            in_flight: (0..shards).map(|_| Vec::new()).collect(),
            failed_seqs: std::collections::BTreeSet::new(),
            poisoned: vec![false; shards],
            failures: Vec::new(),
            supervision,
            restart_times: (0..shards).map(|_| std::collections::VecDeque::new()).collect(),
            poisoned_at: vec![None; shards],
            restarts: 0,
            restart_events: Vec::new(),
            class_submits: [0; 3],
        }
    }

    /// Applies the automatic restart policy to every poisoned shard.
    /// Called from the public entry points (never from inside
    /// `absorb_ready`, which [`ShardPool::restart_shard`] itself calls).
    fn supervise(&mut self) {
        let Some(cfg) = self.supervision else { return };
        if cfg.max_restarts == 0 {
            return;
        }
        for shard in 0..self.poisoned.len() {
            if !self.poisoned[shard] {
                continue;
            }
            let now = std::time::Instant::now();
            while self.restart_times[shard]
                .front()
                .is_some_and(|&t| now.duration_since(t) > cfg.window)
            {
                self.restart_times[shard].pop_front();
            }
            if self.restart_times[shard].len() >= cfg.max_restarts as usize {
                continue; // budget exhausted: stay poisoned, stay loud
            }
            // Exponential backoff from the moment the poisoning was
            // observed: the shard stays down until the delay elapses.
            let since_death = *self.poisoned_at[shard].get_or_insert(now);
            let delay = cfg.restart_delay(self.restart_times[shard].len() as u32);
            if now.duration_since(since_death) < delay {
                continue; // too soon: let the backoff clock run
            }
            self.restart_times[shard].push_back(now);
            self.restarts += 1;
            self.restart_events.push(RestartEvent { shard, delay });
            self.restart_shard(shard);
        }
    }

    /// Shard restarts performed by the automatic supervision policy
    /// (manual [`ShardPool::restart_shard`] calls are not counted).
    pub fn restart_count(&self) -> u64 {
        self.restarts
    }

    /// Takes the automatic restarts performed since the last call,
    /// oldest first, each with the backoff delay it waited out.
    pub fn take_restart_events(&mut self) -> Vec<RestartEvent> {
        std::mem::take(&mut self.restart_events)
    }

    /// Jobs accepted per [`EdgeClass`], indexed by [`EdgeClass::index`]
    /// (untagged submissions count as [`EdgeClass::Data`]).
    pub fn class_submits(&self) -> [u64; 3] {
        self.class_submits
    }

    fn spawn_worker(
        shard: usize,
        rx: Receiver<JobBatch<I>>,
        out: Sender<ShardResult<O>>,
        mut stage: Stage<I, O>,
    ) -> std::thread::JoinHandle<()> {
        std::thread::Builder::new()
            .name(format!("garnet-shard-{shard}"))
            .spawn(move || {
                while let Ok(batch) = rx.recv() {
                    let mut results: Vec<(u64, Result<O, String>)> =
                        Vec::with_capacity(batch.len());
                    let mut poisoned = false;
                    for (seq, job) in batch {
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| stage(job)))
                        {
                            Ok(o) => results.push((seq, Ok(o))),
                            Err(payload) => {
                                // The stage's state may be half-mutated:
                                // report the loss and exit so the shard
                                // is poisoned rather than corrupt (jobs
                                // later in this batch strand with the
                                // queued ones).
                                results.push((seq, Err(panic_reason(payload.as_ref()))));
                                poisoned = true;
                                break;
                            }
                        }
                    }
                    if out.send((shard, results)).is_err() || poisoned {
                        return; // collector gone, or this shard just died
                    }
                }
            })
            .expect("spawn shard worker")
    }

    /// Number of shard workers.
    pub fn shard_count(&self) -> usize {
        self.jobs.len()
    }

    /// Submits a job to `shard` (modulo the shard count), blocking while
    /// that shard's queue is full. Jobs submitted to the same shard are
    /// processed in submission order. A job submitted to a dead shard is
    /// not silently lost: it is recorded as a [`ShardFailure`] and the
    /// merge skips its slot. Returns the job's sequence number.
    pub fn submit(&mut self, shard: usize, job: I) -> u64 {
        self.submit_tagged(shard, job, EdgeClass::Data)
    }

    /// [`ShardPool::submit`] carrying an explicit [`EdgeClass`] tag,
    /// counted in [`ShardPool::class_submits`].
    pub fn submit_tagged(&mut self, shard: usize, job: I, class: EdgeClass) -> u64 {
        self.class_submits[class.index()] += 1;
        self.absorb_ready();
        self.supervise();
        let idx = shard % self.jobs.len();
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.jobs[idx].send(vec![(seq, job)]).is_ok() {
            self.in_flight[idx].push(seq);
        } else {
            self.note_lost(idx, seq, "submitted to a poisoned shard".to_owned());
        }
        seq
    }

    /// Submits a burst of jobs to `shard` as **one** channel hand-off,
    /// blocking while the shard's queue is full. The jobs take
    /// consecutive sequence numbers in order (the returned range), so
    /// the submission-order merge treats them exactly as if each had
    /// been [`ShardPool::submit`]ted individually — the batch only
    /// amortises the per-job rendezvous with the worker.
    pub fn submit_batch(&mut self, shard: usize, jobs: Vec<I>) -> std::ops::Range<u64> {
        self.submit_batch_tagged(shard, jobs, EdgeClass::Data)
    }

    /// [`ShardPool::submit_batch`] carrying an explicit [`EdgeClass`]
    /// tag for the whole burst.
    pub fn submit_batch_tagged(
        &mut self,
        shard: usize,
        jobs: Vec<I>,
        class: EdgeClass,
    ) -> std::ops::Range<u64> {
        self.class_submits[class.index()] += jobs.len() as u64;
        self.absorb_ready();
        self.supervise();
        let idx = shard % self.jobs.len();
        let first = self.next_seq;
        if jobs.is_empty() {
            return first..first;
        }
        self.next_seq += jobs.len() as u64;
        let batch: JobBatch<I> = (first..self.next_seq).zip(jobs).collect();
        if self.jobs[idx].send(batch).is_ok() {
            self.in_flight[idx].extend(first..self.next_seq);
        } else {
            for seq in first..self.next_seq {
                self.note_lost(idx, seq, "submitted to a poisoned shard".to_owned());
            }
        }
        first..self.next_seq
    }

    /// Non-blocking submission for callers that shed instead of stall:
    /// at capacity (or on a dead shard) the job is handed back in a
    /// [`RefusedJob`] and **no sequence number is consumed**, so refused
    /// jobs leave no gap in the merge.
    pub fn try_submit(&mut self, shard: usize, job: I) -> Result<u64, RefusedJob<I>> {
        self.try_submit_tagged(shard, job, EdgeClass::Data)
    }

    /// [`ShardPool::try_submit`] carrying an explicit [`EdgeClass`] tag
    /// (counted only when the job is accepted).
    pub fn try_submit_tagged(
        &mut self,
        shard: usize,
        job: I,
        class: EdgeClass,
    ) -> Result<u64, RefusedJob<I>> {
        let seq = self.try_submit_inner(shard, job)?;
        self.class_submits[class.index()] += 1;
        Ok(seq)
    }

    fn try_submit_inner(&mut self, shard: usize, job: I) -> Result<u64, RefusedJob<I>> {
        self.absorb_ready();
        self.supervise();
        let idx = shard % self.jobs.len();
        if self.poisoned[idx] {
            return Err(RefusedJob::Poisoned(job));
        }
        let seq = self.next_seq;
        let unwrap_one =
            |mut batch: JobBatch<I>| batch.pop().expect("refused batch holds the one job").1;
        match self.jobs[idx].try_send(vec![(seq, job)]) {
            Ok(()) => {
                self.next_seq += 1;
                self.in_flight[idx].push(seq);
                Ok(seq)
            }
            Err(TrySendError::Full(batch)) => Err(RefusedJob::Full(unwrap_one(batch))),
            Err(TrySendError::Disconnected(batch)) => {
                if !self.poisoned[idx] {
                    self.poisoned_at[idx] = Some(std::time::Instant::now());
                }
                self.poisoned[idx] = true;
                Err(RefusedJob::Poisoned(unwrap_one(batch)))
            }
        }
    }

    fn note_lost(&mut self, shard: usize, seq: u64, reason: String) {
        if !self.poisoned[shard] {
            self.poisoned_at[shard] = Some(std::time::Instant::now());
        }
        self.poisoned[shard] = true;
        self.failed_seqs.insert(seq);
        self.failures.push(ShardFailure { shard, seq, reason });
    }

    fn absorb_ready(&mut self) {
        while let Ok((shard, results)) = self.results.try_recv() {
            for (seq, res) in results {
                if let Some(pos) = self.in_flight[shard].iter().position(|&s| s == seq) {
                    self.in_flight[shard].remove(pos);
                }
                match res {
                    Ok(o) => {
                        self.collected.insert(seq, o);
                    }
                    Err(reason) => {
                        // The worker exited after this panic, taking
                        // every job still queued behind it on this
                        // shard.
                        let stranded = std::mem::take(&mut self.in_flight[shard]);
                        self.note_lost(shard, seq, reason);
                        for s in stranded {
                            self.note_lost(shard, s, "stranded behind a shard panic".to_owned());
                        }
                    }
                }
            }
        }
    }

    /// Returns the outputs that are ready *and* form a gap-free prefix of
    /// the submission order (sequence numbers lost to a shard failure
    /// are skipped, not waited on). Outputs held back here are released
    /// by a later `drain` or by [`ShardPool::finish`].
    pub fn drain(&mut self) -> Vec<O> {
        self.absorb_ready();
        self.supervise();
        let mut out = Vec::new();
        loop {
            if let Some(o) = self.collected.remove(&self.next_out) {
                out.push(o);
            } else if !self.failed_seqs.remove(&self.next_out) {
                break;
            }
            self.next_out += 1;
        }
        out
    }

    /// The submission sequence number up to which outputs have been
    /// merged and released (exclusive): everything below it is fully
    /// accounted for — delivered, or recorded as a [`ShardFailure`].
    /// Callers keeping per-job side tables can prune below this mark.
    pub fn merged_watermark(&self) -> u64 {
        self.next_out
    }

    /// Takes the failures recorded so far (panicked jobs, jobs stranded
    /// behind a panic, jobs submitted to a dead shard), oldest first.
    pub fn take_failures(&mut self) -> Vec<ShardFailure> {
        self.absorb_ready();
        std::mem::take(&mut self.failures)
    }

    /// Shards whose worker has died and not been restarted.
    pub fn poisoned_shards(&mut self) -> Vec<usize> {
        self.absorb_ready();
        (0..self.poisoned.len()).filter(|&s| self.poisoned[s]).collect()
    }

    /// Tears down `shard`'s worker (dead or alive) and rebuilds it with
    /// fresh state from the retained factory. Jobs still unaccounted
    /// for on that shard are recorded as [`ShardFailure`]s — a restart
    /// never silently loses work it can't finish.
    pub fn restart_shard(&mut self, shard: usize) {
        let idx = shard % self.jobs.len();
        let (tx, rx) = channel::bounded::<JobBatch<I>>(self.capacity);
        // Dropping the old sender makes a live worker drain its queue
        // and exit; a panicked worker is already gone.
        drop(std::mem::replace(&mut self.jobs[idx], tx));
        if let Some(w) = self.workers[idx].take() {
            let _ = w.join();
        }
        self.absorb_ready();
        for seq in std::mem::take(&mut self.in_flight[idx]) {
            self.failed_seqs.insert(seq);
            self.failures.push(ShardFailure {
                shard: idx,
                seq,
                reason: "dropped during shard restart".to_owned(),
            });
        }
        self.workers[idx] =
            Some(Self::spawn_worker(idx, rx, self.result_tx.clone(), (self.factory)(idx)));
        self.poisoned[idx] = false;
        self.poisoned_at[idx] = None;
    }

    /// Closes the job queues, waits for every worker to finish, and
    /// returns all remaining outputs in submission order together with
    /// every recorded [`ShardFailure`] — a panicked shard neither hangs
    /// the join nor goes unaccounted.
    pub fn finish(mut self) -> (Vec<O>, Vec<ShardFailure>) {
        self.jobs.clear(); // drop senders: workers drain and exit
        for w in self.workers.drain(..).flatten() {
            let _ = w.join();
        }
        self.absorb_ready();
        // Anything still in flight at this point can only be a job a
        // worker dropped on its way out; account for it.
        for shard in 0..self.in_flight.len() {
            for seq in std::mem::take(&mut self.in_flight[shard]) {
                self.failures.push(ShardFailure {
                    shard,
                    seq,
                    reason: "dropped at pool shutdown".to_owned(),
                });
            }
        }
        let collected = std::mem::take(&mut self.collected);
        (collected.into_values().collect(), std::mem::take(&mut self.failures))
    }
}

impl<I: Send + 'static, O: Send + 'static> fmt::Debug for ShardPool<I, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardPool")
            .field("shards", &self.jobs.len())
            .field("submitted", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn register_send_receive() {
        let bus: ThreadedBus<u32> = ThreadedBus::new();
        let rx = bus.register("a", 4).unwrap();
        bus.send("a", 7).unwrap();
        bus.send("a", 8).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.recv().unwrap(), 8);
    }

    #[test]
    fn unknown_endpoint_errors() {
        let bus: ThreadedBus<u32> = ThreadedBus::new();
        assert_eq!(bus.send("nope", 1), Err(BusError::UnknownEndpoint("nope".into())));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let bus: ThreadedBus<u32> = ThreadedBus::new();
        let _rx = bus.register("a", 1).unwrap();
        assert_eq!(bus.register("a", 1).err(), Some(BusError::DuplicateEndpoint("a".into())));
    }

    #[test]
    fn backpressure_on_full_queue() {
        let bus: ThreadedBus<u32> = ThreadedBus::new();
        let _rx = bus.register("a", 1).unwrap();
        bus.send("a", 1).unwrap();
        assert_eq!(bus.send("a", 2), Err(BusError::Backpressure("a".into())));
    }

    #[test]
    fn disconnected_receiver_detected() {
        let bus: ThreadedBus<u32> = ThreadedBus::new();
        let rx = bus.register("a", 1).unwrap();
        drop(rx);
        assert_eq!(bus.send("a", 1), Err(BusError::Disconnected("a".into())));
    }

    #[test]
    fn deregister_removes_endpoint() {
        let bus: ThreadedBus<u32> = ThreadedBus::new();
        let _rx = bus.register("a", 1).unwrap();
        assert!(bus.deregister("a"));
        assert!(!bus.deregister("a"));
        assert!(matches!(bus.send("a", 1), Err(BusError::UnknownEndpoint(_))));
    }

    #[test]
    fn cross_thread_exchange() {
        let bus: ThreadedBus<u64> = ThreadedBus::new();
        let rx = bus.register("svc", 1024).unwrap();
        let sender_bus = bus.clone();
        let producer = thread::spawn(move || {
            for i in 0..1000u64 {
                // Spin on backpressure: bounded queue, same-machine test.
                loop {
                    match sender_bus.send("svc", i) {
                        Ok(()) => break,
                        Err(BusError::Backpressure(_)) => thread::yield_now(),
                        Err(e) => panic!("{e}"),
                    }
                }
            }
        });
        let mut sum = 0u64;
        for _ in 0..1000 {
            sum += rx.recv().unwrap();
        }
        producer.join().unwrap();
        assert_eq!(sum, 999 * 1000 / 2);
    }

    #[test]
    fn send_blocking_waits_for_space() {
        let bus: ThreadedBus<u32> = ThreadedBus::new();
        let rx = bus.register("a", 1).unwrap();
        bus.send("a", 1).unwrap();
        let sender = bus.clone();
        let blocked = thread::spawn(move || sender.send_blocking("a", 2));
        thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(rx.recv().unwrap(), 1); // frees a slot
        blocked.join().unwrap().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn send_blocking_errors_on_unknown_and_disconnected() {
        let bus: ThreadedBus<u32> = ThreadedBus::new();
        assert!(matches!(bus.send_blocking("nope", 1), Err(BusError::UnknownEndpoint(_))));
        let rx = bus.register("a", 1).unwrap();
        drop(rx);
        assert!(matches!(bus.send_blocking("a", 1), Err(BusError::Disconnected(_))));
    }

    #[test]
    fn shard_pool_merges_in_submission_order() {
        // Workers that sleep *inversely* to their shard index, so later
        // submissions finish first — the merge must still be in
        // submission order.
        let mut pool: ShardPool<u32, u32> = ShardPool::new(3, 8, |shard| {
            Box::new(move |x| {
                thread::sleep(std::time::Duration::from_micros((3 - shard as u64) * 200));
                x
            })
        });
        for i in 0..30u32 {
            pool.submit((i % 3) as usize, i);
        }
        let (out, failures) = pool.finish();
        assert_eq!(out, (0..30).collect::<Vec<u32>>());
        assert!(failures.is_empty());
    }

    #[test]
    fn shard_pool_batch_submission_matches_individual_submission() {
        // The same jobs through submit_batch must merge in the same
        // order and with the same per-shard state evolution as
        // one-at-a-time submission.
        let factory = |_shard: usize| -> Stage<u32, u64> {
            let mut n = 0u64;
            Box::new(move |x| {
                n += 1;
                u64::from(x) * 100 + n
            })
        };
        let mut single: ShardPool<u32, u64> = ShardPool::new(2, 8, factory);
        let mut batched: ShardPool<u32, u64> = ShardPool::new(2, 8, factory);
        for chunk in (0..24u32).collect::<Vec<_>>().chunks(6) {
            for &x in chunk {
                single.submit((x % 2) as usize, x);
            }
            // Mirror the interleaving per shard: evens to 0, odds to 1.
            for shard in 0..2u32 {
                let jobs: Vec<u32> = chunk.iter().copied().filter(|x| x % 2 == shard).collect();
                let seqs = batched.submit_batch(shard as usize, jobs);
                assert_eq!(seqs.end - seqs.start, 3);
            }
        }
        let (a, fa) = single.finish();
        let (b, fb) = batched.finish();
        assert!(fa.is_empty() && fb.is_empty());
        // Per-shard sequences are identical; the global interleave
        // differs only by the within-chunk submission order we chose.
        let per_shard = |v: &[u64], shard: u64| -> Vec<u64> {
            v.iter().copied().filter(|o| (o / 100) % 2 == shard).collect()
        };
        for shard in 0..2u64 {
            assert_eq!(per_shard(&a, shard), per_shard(&b, shard), "shard {shard}");
        }
    }

    #[test]
    fn shard_pool_empty_batch_is_a_no_op() {
        let mut pool: ShardPool<u32, u32> = ShardPool::new(1, 4, |_| Box::new(|x| x));
        let seqs = pool.submit_batch(0, Vec::new());
        assert!(seqs.is_empty());
        pool.submit(0, 7);
        let (out, failures) = pool.finish();
        assert_eq!(out, vec![7], "empty batch consumed no sequence number");
        assert!(failures.is_empty());
    }

    #[test]
    fn shard_pool_state_is_per_shard() {
        let mut pool: ShardPool<(), u64> = ShardPool::new(2, 4, |_| {
            let mut n = 0u64;
            Box::new(move |()| {
                n += 1;
                n
            })
        });
        for i in 0..6 {
            pool.submit(i % 2, ());
        }
        // Each shard saw 3 jobs: counters run 1..=3 independently.
        assert_eq!(pool.finish().0, vec![1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn shard_pool_drain_releases_gap_free_prefix() {
        let mut pool: ShardPool<u32, u32> = ShardPool::new(2, 4, |_| Box::new(|x| x));
        for i in 0..4u32 {
            pool.submit(i as usize % 2, i);
        }
        let mut got = Vec::new();
        while got.len() < 4 {
            got.extend(pool.drain());
        }
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert!(pool.finish().0.is_empty());
    }

    /// Runs `f` with the default panic hook silenced, so tests that
    /// deliberately panic a shard worker don't spray backtraces.
    fn quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = f();
        std::panic::set_hook(prev);
        r
    }

    #[test]
    fn shard_pool_survives_worker_panic() {
        quiet_panics(|| {
            let mut pool: ShardPool<u32, u32> = ShardPool::new(2, 8, |_| {
                Box::new(|x| {
                    if x == 13 {
                        panic!("unlucky job");
                    }
                    x
                })
            });
            // Shard 1 gets the poison pill between two good jobs.
            pool.submit(0, 1);
            pool.submit(1, 13);
            pool.submit(0, 2);
            let mut got = Vec::new();
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
            while got.len() < 2 {
                got.extend(pool.drain());
                assert!(std::time::Instant::now() < deadline, "merge hung on the lost seq");
            }
            assert_eq!(got, vec![1, 2], "healthy shard kept delivering across the gap");
            let failures = pool.take_failures();
            assert_eq!(failures.len(), 1);
            assert_eq!(failures[0].shard, 1);
            assert_eq!(failures[0].seq, 1);
            assert_eq!(failures[0].reason, "unlucky job");
            assert_eq!(pool.poisoned_shards(), vec![1]);
            let (rest, more) = pool.finish();
            assert!(rest.is_empty() && more.is_empty());
        });
    }

    #[test]
    fn restart_revives_a_poisoned_shard_with_fresh_state() {
        quiet_panics(|| {
            let mut pool: ShardPool<u32, u32> = ShardPool::new(1, 8, |_| {
                let mut count = 0u32;
                Box::new(move |x| {
                    if x == 99 {
                        panic!("boom");
                    }
                    count += 1;
                    count * 100 + x
                })
            });
            pool.submit(0, 1);
            pool.submit(0, 99);
            while pool.poisoned_shards().is_empty() {
                std::thread::yield_now();
            }
            pool.restart_shard(0);
            assert!(pool.poisoned_shards().is_empty());
            pool.submit(0, 2);
            let (out, failures) = pool.finish();
            // The restarted stage counts from zero again.
            assert_eq!(out, vec![101, 102]);
            assert_eq!(failures.len(), 1);
            assert_eq!(failures[0].reason, "boom");
        });
    }

    #[test]
    fn try_submit_sheds_on_full_and_poisoned() {
        let mut pool: ShardPool<u32, u32> = ShardPool::new(1, 1, |_| {
            Box::new(|x| {
                thread::sleep(std::time::Duration::from_millis(50));
                x
            })
        });
        pool.submit(0, 0); // worker picks this up and sleeps
                           // Fill the single-slot queue, then overflow it.
        let mut refused = 0;
        for i in 1..20u32 {
            match pool.try_submit(0, i) {
                Ok(_) => {}
                Err(RefusedJob::Full(job)) => {
                    assert_eq!(job, i, "refused job handed back");
                    refused += 1;
                }
                Err(RefusedJob::Poisoned(_)) => panic!("worker is healthy"),
            }
        }
        assert!(refused > 0, "a 1-deep queue must refuse some of 19 rapid submissions");
        let (out, failures) = pool.finish();
        assert_eq!(out.len(), 19 - refused + 1, "accepted jobs all completed, no gaps");
        assert!(failures.is_empty());
    }

    #[test]
    fn supervision_restarts_a_poisoned_shard_automatically() {
        quiet_panics(|| {
            let mut pool: ShardPool<u32, u32> =
                ShardPool::with_supervision(1, 8, Some(SupervisionConfig::default()), |_| {
                    Box::new(|x| {
                        if x == 99 {
                            panic!("boom");
                        }
                        x + 1
                    })
                });
            pool.submit(0, 1);
            pool.submit(0, 99);
            // Wait for the panic to land, then keep interacting until
            // the supervised restart fires (the default policy backs
            // off 10 ms after the worker's death before rebuilding).
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
            while pool.take_failures().is_empty() {
                std::thread::yield_now();
                assert!(std::time::Instant::now() < deadline, "panic never surfaced");
            }
            let mut got = Vec::new();
            while !pool.poisoned_shards().is_empty() {
                got.extend(pool.drain()); // supervise() runs here
                std::thread::yield_now();
                assert!(std::time::Instant::now() < deadline, "shard never restarted");
            }
            assert_eq!(pool.restart_count(), 1);
            let events = pool.take_restart_events();
            assert_eq!(events.len(), 1);
            assert_eq!(events[0].shard, 0);
            assert_eq!(events[0].delay, SupervisionConfig::default().base_backoff);
            pool.submit(0, 2);
            let (rest, failures) = pool.finish();
            got.extend(rest);
            assert_eq!(got, vec![2, 3]);
            assert!(failures.is_empty(), "failure was already taken");
        });
    }

    #[test]
    fn supervision_budget_exhausts_and_shard_stays_poisoned() {
        quiet_panics(|| {
            let cfg = SupervisionConfig::immediate(1, std::time::Duration::from_secs(3600));
            let mut pool: ShardPool<u32, u32> =
                ShardPool::with_supervision(1, 8, Some(cfg), |_| {
                    Box::new(|x| {
                        if x == 99 {
                            panic!("boom");
                        }
                        x
                    })
                });
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
            let crash = |pool: &mut ShardPool<u32, u32>| {
                pool.submit(0, 99);
                while pool.poisoned_shards().is_empty() {
                    std::thread::yield_now();
                    assert!(std::time::Instant::now() < deadline, "panic never surfaced");
                }
            };
            crash(&mut pool);
            pool.submit(0, 1); // first crash: restarted under budget
            assert_eq!(pool.restart_count(), 1);
            crash(&mut pool);
            pool.drain(); // second crash: budget spent, stays poisoned
            assert_eq!(pool.restart_count(), 1);
            assert_eq!(pool.poisoned_shards(), vec![0]);
        });
    }

    #[test]
    fn supervision_backoff_delays_restarts_and_doubles() {
        quiet_panics(|| {
            let cfg = SupervisionConfig {
                max_restarts: 3,
                window: std::time::Duration::from_secs(3600),
                base_backoff: std::time::Duration::from_millis(100),
                backoff_cap: std::time::Duration::from_secs(5),
            };
            let mut pool: ShardPool<u32, u32> =
                ShardPool::with_supervision(1, 8, Some(cfg), |_| {
                    Box::new(|x| {
                        if x == 99 {
                            panic!("boom");
                        }
                        x
                    })
                });
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            let crash = |pool: &mut ShardPool<u32, u32>| {
                pool.submit(0, 99);
                while pool.poisoned_shards().is_empty() {
                    std::thread::yield_now();
                    assert!(std::time::Instant::now() < deadline, "panic never surfaced");
                }
            };

            crash(&mut pool);
            // Interacting right after the death must NOT restart: the
            // pre-backoff behaviour burned the whole budget here.
            pool.drain();
            assert_eq!(pool.restart_count(), 0, "restart fired before the backoff elapsed");
            while pool.restart_count() == 0 {
                pool.drain();
                std::thread::yield_now();
                assert!(std::time::Instant::now() < deadline, "first restart never fired");
            }

            crash(&mut pool);
            pool.drain();
            assert_eq!(pool.restart_count(), 1, "second restart skipped its longer backoff");
            while pool.restart_count() == 1 {
                pool.drain();
                std::thread::yield_now();
                assert!(std::time::Instant::now() < deadline, "second restart never fired");
            }

            let events = pool.take_restart_events();
            let delays: Vec<_> = events.iter().map(|e| e.delay).collect();
            assert_eq!(
                delays,
                vec![std::time::Duration::from_millis(100), std::time::Duration::from_millis(200)],
                "backoff doubles per restart in the window"
            );
            let _ = pool.take_failures();
            drop(pool.finish());
        });
    }

    #[test]
    fn restart_delay_doubles_and_caps() {
        let cfg = SupervisionConfig {
            max_restarts: 10,
            window: std::time::Duration::from_secs(3600),
            base_backoff: std::time::Duration::from_millis(10),
            backoff_cap: std::time::Duration::from_millis(45),
        };
        let ms = |n: u64| std::time::Duration::from_millis(n);
        assert_eq!(cfg.restart_delay(0), ms(10));
        assert_eq!(cfg.restart_delay(1), ms(20));
        assert_eq!(cfg.restart_delay(2), ms(40));
        assert_eq!(cfg.restart_delay(3), ms(45), "capped");
        assert_eq!(cfg.restart_delay(63), ms(45), "huge exponents stay capped");
        assert_eq!(SupervisionConfig::immediate(3, ms(1000)).restart_delay(5), ms(0));
    }

    #[test]
    fn endpoint_names_sorted() {
        let bus: ThreadedBus<()> = ThreadedBus::new();
        let _a = bus.register("zeta", 1).unwrap();
        let _b = bus.register("alpha", 1).unwrap();
        assert_eq!(bus.endpoint_names(), vec!["alpha".to_owned(), "zeta".to_owned()]);
    }
}
