//! The asynchronous message bus for live (threaded) deployments.
//!
//! Experiments run on the deterministic `garnet-simkit` event queue; the
//! live examples run each middleware service on its own thread,
//! exchanging messages through this bus. Endpoints are registered by
//! name; any holder of the bus can send to any endpoint — exactly the
//! paper's "asynchronous message exchange" (§3) with no further delivery
//! guarantees layered on top.

use std::collections::HashMap;
use std::sync::Arc;

use core::fmt;
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use parking_lot::RwLock;

/// Errors raised by bus operations.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum BusError {
    /// No endpoint is registered under the requested name.
    UnknownEndpoint(String),
    /// The endpoint's queue is full (bounded endpoints only).
    Backpressure(String),
    /// The endpoint's receiver was dropped.
    Disconnected(String),
    /// An endpoint with this name is already registered.
    DuplicateEndpoint(String),
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusError::UnknownEndpoint(n) => write!(f, "no endpoint named {n:?}"),
            BusError::Backpressure(n) => write!(f, "endpoint {n:?} queue is full"),
            BusError::Disconnected(n) => write!(f, "endpoint {n:?} receiver was dropped"),
            BusError::DuplicateEndpoint(n) => write!(f, "endpoint {n:?} already registered"),
        }
    }
}

impl std::error::Error for BusError {}

/// A clonable handle to the shared bus carrying messages of type `M`.
///
/// # Example
///
/// ```
/// use garnet_net::ThreadedBus;
///
/// let bus: ThreadedBus<String> = ThreadedBus::new();
/// let inbox = bus.register("filtering", 16)?;
/// bus.send("filtering", "hello".to_owned())?;
/// assert_eq!(inbox.recv().unwrap(), "hello");
/// # Ok::<(), garnet_net::BusError>(())
/// ```
pub struct ThreadedBus<M> {
    endpoints: Arc<RwLock<HashMap<String, Sender<M>>>>,
}

impl<M> Clone for ThreadedBus<M> {
    fn clone(&self) -> Self {
        ThreadedBus { endpoints: Arc::clone(&self.endpoints) }
    }
}

impl<M> Default for ThreadedBus<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> ThreadedBus<M> {
    /// Creates an empty bus.
    pub fn new() -> Self {
        ThreadedBus { endpoints: Arc::new(RwLock::new(HashMap::new())) }
    }

    /// Registers a named endpoint with a bounded queue of `capacity`
    /// messages (0 = rendezvous), returning its receiving half.
    ///
    /// # Errors
    ///
    /// [`BusError::DuplicateEndpoint`] if the name is taken.
    pub fn register(&self, name: &str, capacity: usize) -> Result<Receiver<M>, BusError> {
        let mut map = self.endpoints.write();
        if map.contains_key(name) {
            return Err(BusError::DuplicateEndpoint(name.to_owned()));
        }
        let (tx, rx) = channel::bounded(capacity);
        map.insert(name.to_owned(), tx);
        Ok(rx)
    }

    /// Removes an endpoint; subsequent sends fail with
    /// [`BusError::UnknownEndpoint`].
    pub fn deregister(&self, name: &str) -> bool {
        self.endpoints.write().remove(name).is_some()
    }

    /// Sends without blocking.
    ///
    /// # Errors
    ///
    /// * [`BusError::UnknownEndpoint`] — name not registered.
    /// * [`BusError::Backpressure`] — queue full (message returned to
    ///   caller inside the error path by value semantics: it is dropped;
    ///   callers needing the value back should clone or use bounded
    ///   retry).
    /// * [`BusError::Disconnected`] — receiver dropped.
    pub fn send(&self, name: &str, message: M) -> Result<(), BusError> {
        let map = self.endpoints.read();
        let Some(tx) = map.get(name) else {
            return Err(BusError::UnknownEndpoint(name.to_owned()));
        };
        match tx.try_send(message) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(BusError::Backpressure(name.to_owned())),
            Err(TrySendError::Disconnected(_)) => Err(BusError::Disconnected(name.to_owned())),
        }
    }

    /// Sends, blocking while the endpoint's queue is full (producer
    /// threads that prefer backpressure to drops).
    ///
    /// # Errors
    ///
    /// * [`BusError::UnknownEndpoint`] — name not registered.
    /// * [`BusError::Disconnected`] — receiver dropped (possibly while
    ///   blocked).
    pub fn send_blocking(&self, name: &str, message: M) -> Result<(), BusError> {
        let tx = {
            let map = self.endpoints.read();
            match map.get(name) {
                Some(tx) => tx.clone(),
                None => return Err(BusError::UnknownEndpoint(name.to_owned())),
            }
        };
        tx.send(message).map_err(|_| BusError::Disconnected(name.to_owned()))
    }

    /// Names of all live endpoints, sorted (diagnostics).
    pub fn endpoint_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.endpoints.read().keys().cloned().collect();
        names.sort();
        names
    }
}

impl<M> fmt::Debug for ThreadedBus<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadedBus").field("endpoints", &self.endpoint_names()).finish()
    }
}

/// A fixed pool of shard workers with a deterministic output merge.
///
/// Each shard runs one stateful stage function on its own thread; jobs
/// are tagged with a global submission sequence number and the pool
/// reassembles outputs in exactly that order, so the result stream is
/// **bit-identical regardless of thread scheduling**. This is the
/// threaded driver of the middleware's sharded ingest stage: the caller
/// partitions work (e.g. by sensor id) and the pool guarantees that
/// whatever interleaving the OS produces, downstream observers see the
/// submission order.
///
/// Result channels are unbounded so a worker can never block on a slow
/// collector while the submitter blocks on a full job queue (the classic
/// fan-out/fan-in deadlock); memory is bounded by the caller keeping
/// submissions and [`ShardPool::drain`] calls interleaved.
///
/// # Example
///
/// ```
/// use garnet_net::ShardPool;
///
/// let mut pool: ShardPool<u64, u64> = ShardPool::new(4, 16, |_shard| {
///     let mut seen = 0u64; // per-shard state
///     Box::new(move |x| {
///         seen += 1;
///         x * 10 + seen
///     })
/// });
/// for i in 0..8u64 {
///     pool.submit((i % 4) as usize, i);
/// }
/// let out = pool.finish();
/// assert_eq!(out.len(), 8, "submission-order merge, nothing lost");
/// assert_eq!(out[0], 1, "job 0 was shard 0's first job");
/// assert_eq!(out[4], 42, "job 4 was shard 0's second job");
/// ```
pub struct ShardPool<I: Send + 'static, O: Send + 'static> {
    jobs: Vec<Sender<(u64, I)>>,
    results: Receiver<(u64, O)>,
    workers: Vec<std::thread::JoinHandle<()>>,
    next_seq: u64,
    collected: std::collections::BTreeMap<u64, O>,
    next_out: u64,
}

impl<I: Send + 'static, O: Send + 'static> ShardPool<I, O> {
    /// Spawns `shards` workers (at least one). `factory` is called once
    /// per shard to build that shard's stage function, which owns any
    /// per-shard state. `capacity` bounds each shard's job queue;
    /// submission blocks when the target shard is that far behind.
    pub fn new<F>(shards: usize, capacity: usize, mut factory: F) -> Self
    where
        F: FnMut(usize) -> Box<dyn FnMut(I) -> O + Send>,
    {
        let shards = shards.max(1);
        let (result_tx, results) = channel::unbounded::<(u64, O)>();
        let mut jobs = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = channel::bounded::<(u64, I)>(capacity.max(1));
            let out = result_tx.clone();
            let mut stage = factory(shard);
            jobs.push(tx);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("garnet-shard-{shard}"))
                    .spawn(move || {
                        while let Ok((seq, job)) = rx.recv() {
                            if out.send((seq, stage(job))).is_err() {
                                break; // collector gone; shutting down
                            }
                        }
                    })
                    .expect("spawn shard worker"),
            );
        }
        ShardPool {
            jobs,
            results,
            workers,
            next_seq: 0,
            collected: std::collections::BTreeMap::new(),
            next_out: 0,
        }
    }

    /// Number of shard workers.
    pub fn shard_count(&self) -> usize {
        self.jobs.len()
    }

    /// Submits a job to `shard` (modulo the shard count), blocking while
    /// that shard's queue is full. Jobs submitted to the same shard are
    /// processed in submission order.
    pub fn submit(&mut self, shard: usize, job: I) {
        self.absorb_ready();
        let idx = shard % self.jobs.len();
        let seq = self.next_seq;
        self.next_seq += 1;
        self.jobs[idx].send((seq, job)).expect("shard worker exited while pool is live");
    }

    fn absorb_ready(&mut self) {
        while let Ok((seq, out)) = self.results.try_recv() {
            self.collected.insert(seq, out);
        }
    }

    /// Returns the outputs that are ready *and* form a gap-free prefix of
    /// the submission order. Outputs held back here are released by a
    /// later `drain` or by [`ShardPool::finish`].
    pub fn drain(&mut self) -> Vec<O> {
        self.absorb_ready();
        let mut out = Vec::new();
        while let Some(o) = self.collected.remove(&self.next_out) {
            out.push(o);
            self.next_out += 1;
        }
        out
    }

    /// Closes the job queues, waits for every worker to finish, and
    /// returns all remaining outputs in submission order.
    pub fn finish(mut self) -> Vec<O> {
        self.jobs.clear(); // drop senders: workers drain and exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.absorb_ready();
        let collected = std::mem::take(&mut self.collected);
        collected.into_values().collect()
    }
}

impl<I: Send + 'static, O: Send + 'static> fmt::Debug for ShardPool<I, O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardPool")
            .field("shards", &self.jobs.len())
            .field("submitted", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn register_send_receive() {
        let bus: ThreadedBus<u32> = ThreadedBus::new();
        let rx = bus.register("a", 4).unwrap();
        bus.send("a", 7).unwrap();
        bus.send("a", 8).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.recv().unwrap(), 8);
    }

    #[test]
    fn unknown_endpoint_errors() {
        let bus: ThreadedBus<u32> = ThreadedBus::new();
        assert_eq!(bus.send("nope", 1), Err(BusError::UnknownEndpoint("nope".into())));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let bus: ThreadedBus<u32> = ThreadedBus::new();
        let _rx = bus.register("a", 1).unwrap();
        assert_eq!(bus.register("a", 1).err(), Some(BusError::DuplicateEndpoint("a".into())));
    }

    #[test]
    fn backpressure_on_full_queue() {
        let bus: ThreadedBus<u32> = ThreadedBus::new();
        let _rx = bus.register("a", 1).unwrap();
        bus.send("a", 1).unwrap();
        assert_eq!(bus.send("a", 2), Err(BusError::Backpressure("a".into())));
    }

    #[test]
    fn disconnected_receiver_detected() {
        let bus: ThreadedBus<u32> = ThreadedBus::new();
        let rx = bus.register("a", 1).unwrap();
        drop(rx);
        assert_eq!(bus.send("a", 1), Err(BusError::Disconnected("a".into())));
    }

    #[test]
    fn deregister_removes_endpoint() {
        let bus: ThreadedBus<u32> = ThreadedBus::new();
        let _rx = bus.register("a", 1).unwrap();
        assert!(bus.deregister("a"));
        assert!(!bus.deregister("a"));
        assert!(matches!(bus.send("a", 1), Err(BusError::UnknownEndpoint(_))));
    }

    #[test]
    fn cross_thread_exchange() {
        let bus: ThreadedBus<u64> = ThreadedBus::new();
        let rx = bus.register("svc", 1024).unwrap();
        let sender_bus = bus.clone();
        let producer = thread::spawn(move || {
            for i in 0..1000u64 {
                // Spin on backpressure: bounded queue, same-machine test.
                loop {
                    match sender_bus.send("svc", i) {
                        Ok(()) => break,
                        Err(BusError::Backpressure(_)) => thread::yield_now(),
                        Err(e) => panic!("{e}"),
                    }
                }
            }
        });
        let mut sum = 0u64;
        for _ in 0..1000 {
            sum += rx.recv().unwrap();
        }
        producer.join().unwrap();
        assert_eq!(sum, 999 * 1000 / 2);
    }

    #[test]
    fn send_blocking_waits_for_space() {
        let bus: ThreadedBus<u32> = ThreadedBus::new();
        let rx = bus.register("a", 1).unwrap();
        bus.send("a", 1).unwrap();
        let sender = bus.clone();
        let blocked = thread::spawn(move || sender.send_blocking("a", 2));
        thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(rx.recv().unwrap(), 1); // frees a slot
        blocked.join().unwrap().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn send_blocking_errors_on_unknown_and_disconnected() {
        let bus: ThreadedBus<u32> = ThreadedBus::new();
        assert!(matches!(bus.send_blocking("nope", 1), Err(BusError::UnknownEndpoint(_))));
        let rx = bus.register("a", 1).unwrap();
        drop(rx);
        assert!(matches!(bus.send_blocking("a", 1), Err(BusError::Disconnected(_))));
    }

    #[test]
    fn shard_pool_merges_in_submission_order() {
        // Workers that sleep *inversely* to their shard index, so later
        // submissions finish first — the merge must still be in
        // submission order.
        let mut pool: ShardPool<u32, u32> = ShardPool::new(3, 8, |shard| {
            Box::new(move |x| {
                thread::sleep(std::time::Duration::from_micros((3 - shard as u64) * 200));
                x
            })
        });
        for i in 0..30u32 {
            pool.submit((i % 3) as usize, i);
        }
        let out = pool.finish();
        assert_eq!(out, (0..30).collect::<Vec<u32>>());
    }

    #[test]
    fn shard_pool_state_is_per_shard() {
        let mut pool: ShardPool<(), u64> = ShardPool::new(2, 4, |_| {
            let mut n = 0u64;
            Box::new(move |()| {
                n += 1;
                n
            })
        });
        for i in 0..6 {
            pool.submit(i % 2, ());
        }
        // Each shard saw 3 jobs: counters run 1..=3 independently.
        assert_eq!(pool.finish(), vec![1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn shard_pool_drain_releases_gap_free_prefix() {
        let mut pool: ShardPool<u32, u32> = ShardPool::new(2, 4, |_| Box::new(|x| x));
        for i in 0..4u32 {
            pool.submit(i as usize % 2, i);
        }
        let mut got = Vec::new();
        while got.len() < 4 {
            got.extend(pool.drain());
        }
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert!(pool.finish().is_empty());
    }

    #[test]
    fn endpoint_names_sorted() {
        let bus: ThreadedBus<()> = ThreadedBus::new();
        let _a = bus.register("zeta", 1).unwrap();
        let _b = bus.register("alpha", 1).unwrap();
        assert_eq!(bus.endpoint_names(), vec!["alpha".to_owned(), "zeta".to_owned()]);
    }
}
