//! Background archive writer for the threaded deployment.
//!
//! The durable archive (`garnet-store`) is deliberately runtime-free;
//! this module supplies the runtime half for live deployments: a single
//! worker thread that owns a [`FrameArchive`] and drains a bounded
//! command channel of pre-encoded record bytes. The facade encodes
//! records *before* enqueueing, so the bytes that reach the log are
//! independent of worker timing — archive contents stay deterministic
//! even though append completion is not.
//!
//! Back-pressure is explicit and lossy by design: when the queue is
//! full, [`Archiver::try_append`] refuses and the caller counts the
//! record as dropped. Delivery to consumers never waits on storage —
//! the graceful-degradation contract of `GarnetConfig.archive`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use garnet_store::{FrameArchive, StoreError};

/// Commands drained by the worker, in submission order.
enum Cmd {
    /// Append one pre-encoded record.
    Append(Vec<u8>),
    /// Sync the backend and publish the flush id as completed.
    Flush(u64),
    /// Drain, sync, deposit the archive and retire.
    Shutdown,
}

/// Worker-side progress published under the shared mutex.
#[derive(Debug, Default)]
struct WorkerState {
    /// Records durably appended (the caller's `archived` count).
    appended: u64,
    /// Append attempts the store refused or corrupted (counted dropped).
    failed: u64,
    /// Highest flush id whose sync completed (successfully or not).
    flushed: u64,
    /// Flush syncs that returned a store error.
    flush_failures: u64,
    /// Worker has drained, synced and deposited the archive.
    retired: bool,
    /// The archive, handed back at retirement for store recovery.
    archive: Option<FrameArchive>,
    /// Most recent store error, for diagnostics.
    last_error: Option<StoreError>,
}

#[derive(Debug, Default)]
struct Shared {
    state: Mutex<WorkerState>,
    cond: Condvar,
}

/// Point-in-time copy of the worker's progress counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArchiverCounters {
    /// Records durably appended.
    pub appended: u64,
    /// Append attempts that errored at the store.
    pub failed: u64,
    /// Flush syncs that errored at the store.
    pub flush_failures: u64,
}

/// Outcome of a bounded-wait flush.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushOutcome {
    /// All appends enqueued before the flush are durable.
    Flushed,
    /// The sync ran but the backend reported an error.
    Failed,
    /// The worker did not complete the flush within the timeout.
    TimedOut,
}

/// What `shutdown` managed to salvage.
#[derive(Debug)]
pub struct ArchiverShutdown {
    /// The archive (and its backend store), when the worker retired in
    /// time; `None` when it was wedged and had to be abandoned.
    pub archive: Option<FrameArchive>,
    /// True when the worker missed the shutdown deadline.
    pub timed_out: bool,
    /// Final progress counters (best effort when timed out).
    pub counters: ArchiverCounters,
}

/// Handle to the background archive writer.
pub struct Archiver {
    tx: Sender<Cmd>,
    shared: Arc<Shared>,
    next_flush: AtomicU64,
    worker: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Archiver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Archiver").field("counters", &self.counters()).finish()
    }
}

impl Archiver {
    /// Spawns the worker thread around `archive` with a bounded queue
    /// of `queue_capacity` commands (minimum 1).
    pub fn spawn(archive: FrameArchive, queue_capacity: usize) -> Archiver {
        let (tx, rx) = bounded(queue_capacity.max(1));
        let shared = Arc::new(Shared::default());
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("garnet-archiver".into())
            .spawn(move || run_worker(archive, rx, worker_shared))
            .expect("spawn archiver worker");
        Archiver { tx, shared, next_flush: AtomicU64::new(0), worker: Some(worker) }
    }

    /// Enqueues one pre-encoded record. Returns `false` — record
    /// refused, caller counts it dropped — when the queue is full or
    /// the worker is gone.
    pub fn try_append(&self, bytes: Vec<u8>) -> bool {
        match self.tx.try_send(Cmd::Append(bytes)) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => false,
        }
    }

    /// Progress counters published by the worker.
    pub fn counters(&self) -> ArchiverCounters {
        let st = self.shared.state.lock().expect("archiver state");
        ArchiverCounters {
            appended: st.appended,
            failed: st.failed,
            flush_failures: st.flush_failures,
        }
    }

    /// Most recent store error seen by the worker, if any.
    pub fn last_error(&self) -> Option<StoreError> {
        self.shared.state.lock().expect("archiver state").last_error.clone()
    }

    /// Retries `try_send` until `deadline`; the vendored channel has no
    /// timed send, and an unbounded `send` could block forever behind a
    /// wedged worker.
    fn send_until(&self, mut cmd: Cmd, deadline: std::time::Instant) -> bool {
        loop {
            match self.tx.try_send(cmd) {
                Ok(()) => return true,
                Err(TrySendError::Disconnected(_)) => return false,
                Err(TrySendError::Full(back)) => {
                    if std::time::Instant::now() >= deadline {
                        return false;
                    }
                    cmd = back;
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
    }

    /// Waits (bounded) until every append enqueued before this call is
    /// durable, then syncs the backend.
    pub fn flush(&self, timeout: Duration) -> FlushOutcome {
        let id = self.next_flush.fetch_add(1, Ordering::Relaxed) + 1;
        let deadline = std::time::Instant::now() + timeout;
        // A full queue means the flush marker itself cannot be enqueued
        // within the contract's bounded time: report a timeout rather
        // than blocking the caller behind a wedged worker.
        if !self.send_until(Cmd::Flush(id), deadline) {
            return FlushOutcome::TimedOut;
        }
        let mut st = self.shared.state.lock().expect("archiver state");
        loop {
            if st.flushed >= id || st.retired {
                return if st.flush_failures > 0 || st.last_error.is_some() {
                    FlushOutcome::Failed
                } else {
                    FlushOutcome::Flushed
                };
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return FlushOutcome::TimedOut;
            }
            let (guard, _timeout) =
                self.shared.cond.wait_timeout(st, deadline - now).expect("archiver state");
            st = guard;
        }
    }

    /// Retires the worker: drains pending appends, syncs, and hands the
    /// archive back. If the worker misses the deadline (e.g. wedged in
    /// a stalled store write) it is detached and the archive abandoned.
    pub fn shutdown(mut self, timeout: Duration) -> ArchiverShutdown {
        // Best effort: a full queue of a wedged worker must not block
        // shutdown, so the marker send is bounded too. Dropping `tx`
        // (when `self` drops) disconnects the channel, which the worker
        // also treats as shutdown once it unwedges.
        let deadline = std::time::Instant::now() + timeout;
        let _ = self.send_until(Cmd::Shutdown, deadline);
        let (archive, timed_out, counters) = {
            let mut st = self.shared.state.lock().expect("archiver state");
            loop {
                if st.retired {
                    let counters = ArchiverCounters {
                        appended: st.appended,
                        failed: st.failed,
                        flush_failures: st.flush_failures,
                    };
                    break (st.archive.take(), false, counters);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    let counters = ArchiverCounters {
                        appended: st.appended,
                        failed: st.failed,
                        flush_failures: st.flush_failures,
                    };
                    break (None, true, counters);
                }
                let (guard, _timeout) =
                    self.shared.cond.wait_timeout(st, deadline - now).expect("archiver state");
                st = guard;
            }
        };
        if let Some(worker) = self.worker.take() {
            if timed_out {
                // Wedged in the store: detach rather than hang the
                // caller. The thread exits on its own once the store
                // call returns and it sees the disconnected channel.
                drop(worker);
            } else {
                let _ = worker.join();
            }
        }
        ArchiverShutdown { archive, timed_out, counters }
    }
}

fn apply_append(archive: &mut FrameArchive, bytes: &[u8], st: &Mutex<WorkerState>) {
    let result = archive.append_bytes(bytes);
    let mut st = st.lock().expect("archiver state");
    match result {
        Ok(()) => st.appended += 1,
        Err(e) => {
            st.failed += 1;
            st.last_error = Some(e);
        }
    }
}

fn run_worker(mut archive: FrameArchive, rx: Receiver<Cmd>, shared: Arc<Shared>) {
    loop {
        match rx.recv() {
            Ok(Cmd::Append(bytes)) => {
                apply_append(&mut archive, &bytes, &shared.state);
                shared.cond.notify_all();
            }
            Ok(Cmd::Flush(id)) => {
                let result = archive.sync();
                let mut st = shared.state.lock().expect("archiver state");
                if let Err(e) = result {
                    st.flush_failures += 1;
                    st.last_error = Some(e);
                }
                st.flushed = st.flushed.max(id);
                drop(st);
                shared.cond.notify_all();
            }
            Ok(Cmd::Shutdown) | Err(_) => break,
        }
    }
    // Disconnect path: drain whatever was still queued behind the hangup.
    while let Ok(cmd) = rx.try_recv() {
        match cmd {
            Cmd::Append(bytes) => apply_append(&mut archive, &bytes, &shared.state),
            Cmd::Flush(id) => {
                let mut st = shared.state.lock().expect("archiver state");
                st.flushed = st.flushed.max(id);
            }
            Cmd::Shutdown => {}
        }
    }
    let final_sync = archive.sync();
    let mut st = shared.state.lock().expect("archiver state");
    if let Err(e) = final_sync {
        st.flush_failures += 1;
        st.last_error = Some(e);
    }
    st.archive = Some(archive);
    st.retired = true;
    drop(st);
    shared.cond.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use garnet_store::{FaultPlan, FaultyStore, MemStore};

    fn archive() -> FrameArchive {
        FrameArchive::open(Box::new(MemStore::new()), 1 << 20).unwrap().0
    }

    #[test]
    fn appends_flush_and_hand_the_archive_back() {
        let arch = Archiver::spawn(archive(), 64);
        assert!(arch.try_append(vec![1, 2, 3]));
        assert!(arch.try_append(vec![4, 5]));
        assert_eq!(arch.flush(Duration::from_secs(5)), FlushOutcome::Flushed);
        assert_eq!(arch.counters().appended, 2);
        let down = arch.shutdown(Duration::from_secs(5));
        assert!(!down.timed_out);
        let got = down.archive.expect("archive returned");
        assert_eq!(got.appended(), 2);
        let mut store = got.into_store();
        assert_eq!(store.read(0).unwrap(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn wedged_store_times_out_flush_and_shutdown() {
        let plan = FaultPlan {
            stall_after_appends: Some(0),
            stall_sleep: Some(Duration::from_millis(400)),
            ..FaultPlan::default()
        };
        let store = FaultyStore::new(MemStore::new(), plan);
        let (arch, _) = FrameArchive::open(Box::new(store), 1 << 20).unwrap();
        let arch = Archiver::spawn(arch, 4);
        // The worker wedges inside the first append's stall sleep.
        assert!(arch.try_append(vec![0; 8]));
        assert_eq!(arch.flush(Duration::from_millis(50)), FlushOutcome::TimedOut);
        let down = arch.shutdown(Duration::from_millis(50));
        assert!(down.timed_out);
        assert!(down.archive.is_none());
    }

    #[test]
    fn store_errors_are_counted_not_fatal() {
        let plan = FaultPlan { stall_after_appends: Some(1), ..FaultPlan::default() };
        let store = FaultyStore::new(MemStore::new(), plan);
        let (arch, _) = FrameArchive::open(Box::new(store), 1 << 20).unwrap();
        let arch = Archiver::spawn(arch, 16);
        assert!(arch.try_append(vec![1]));
        assert!(arch.try_append(vec![2]));
        let down = arch.shutdown(Duration::from_secs(5));
        assert!(!down.timed_out);
        assert_eq!(down.counters.appended, 1);
        assert_eq!(down.counters.failed, 1);
    }
}
