//! Service advertising, discovery and registration (§3).
//!
//! Garnet's services are "all presented as logically separate and
//! distinct entities" (§3); consumers and services find each other
//! through this registry rather than hard-wired references, which is what
//! lets "mutually-unaware applications" coexist.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::auth::Principal;

/// The role a registered service plays (Figure 1's boxes, plus consumer
/// processes, which also register so derived streams are discoverable).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ServiceKind {
    /// The Filtering Service.
    Filtering,
    /// The Dispatching Service.
    Dispatching,
    /// The Orphanage.
    Orphanage,
    /// The Location Service.
    Location,
    /// The Resource Manager.
    ResourceManager,
    /// The Actuation Service.
    Actuation,
    /// The Message Replicator.
    Replicator,
    /// The Super Coordinator.
    SuperCoordinator,
    /// A consumer process (possibly publishing derived streams).
    Consumer,
}

/// An advertisement: who offers what, where.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceDescriptor {
    /// Unique registered name.
    pub name: String,
    /// Role.
    pub kind: ServiceKind,
    /// Bus endpoint the service listens on.
    pub endpoint: String,
    /// Owning principal.
    pub owner: Principal,
}

/// The registry itself: a deterministic, name-ordered table.
///
/// # Example
///
/// ```
/// use garnet_net::{Principal, ServiceDescriptor, ServiceKind, ServiceRegistry};
///
/// let mut reg = ServiceRegistry::new();
/// reg.advertise(ServiceDescriptor {
///     name: "filtering-0".into(),
///     kind: ServiceKind::Filtering,
///     endpoint: "bus://filtering-0".into(),
///     owner: Principal::new("system"),
/// });
/// assert_eq!(reg.discover_kind(ServiceKind::Filtering).len(), 1);
/// assert!(reg.lookup("filtering-0").is_some());
/// ```
#[derive(Debug, Default)]
pub struct ServiceRegistry {
    services: BTreeMap<String, ServiceDescriptor>,
}

impl ServiceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advertises (or re-advertises) a service. Returns the previous
    /// descriptor under the same name, if any.
    pub fn advertise(&mut self, descriptor: ServiceDescriptor) -> Option<ServiceDescriptor> {
        self.services.insert(descriptor.name.clone(), descriptor)
    }

    /// Removes a service by name, returning its descriptor.
    pub fn withdraw(&mut self, name: &str) -> Option<ServiceDescriptor> {
        self.services.remove(name)
    }

    /// Looks up a service by exact name.
    pub fn lookup(&self, name: &str) -> Option<&ServiceDescriptor> {
        self.services.get(name)
    }

    /// All services of one kind, in name order.
    pub fn discover_kind(&self, kind: ServiceKind) -> Vec<&ServiceDescriptor> {
        self.services.values().filter(|d| d.kind == kind).collect()
    }

    /// All services whose name starts with `prefix`, in name order.
    pub fn discover_prefix(&self, prefix: &str) -> Vec<&ServiceDescriptor> {
        self.services
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .collect()
    }

    /// Number of registered services.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }

    /// Iterates all descriptors in name order.
    pub fn iter(&self) -> impl Iterator<Item = &ServiceDescriptor> {
        self.services.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(name: &str, kind: ServiceKind) -> ServiceDescriptor {
        ServiceDescriptor {
            name: name.into(),
            kind,
            endpoint: format!("bus://{name}"),
            owner: Principal::new("system"),
        }
    }

    #[test]
    fn advertise_lookup_withdraw() {
        let mut r = ServiceRegistry::new();
        assert!(r.is_empty());
        r.advertise(desc("loc", ServiceKind::Location));
        assert_eq!(r.len(), 1);
        assert_eq!(r.lookup("loc").unwrap().kind, ServiceKind::Location);
        let gone = r.withdraw("loc").unwrap();
        assert_eq!(gone.name, "loc");
        assert!(r.lookup("loc").is_none());
    }

    #[test]
    fn re_advertise_replaces_and_returns_old() {
        let mut r = ServiceRegistry::new();
        r.advertise(desc("svc", ServiceKind::Filtering));
        let old = r.advertise(desc("svc", ServiceKind::Dispatching)).unwrap();
        assert_eq!(old.kind, ServiceKind::Filtering);
        assert_eq!(r.lookup("svc").unwrap().kind, ServiceKind::Dispatching);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn discover_by_kind_is_name_ordered() {
        let mut r = ServiceRegistry::new();
        r.advertise(desc("b-consumer", ServiceKind::Consumer));
        r.advertise(desc("a-consumer", ServiceKind::Consumer));
        r.advertise(desc("orphanage", ServiceKind::Orphanage));
        let consumers = r.discover_kind(ServiceKind::Consumer);
        let names: Vec<&str> = consumers.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["a-consumer", "b-consumer"]);
    }

    #[test]
    fn discover_by_prefix() {
        let mut r = ServiceRegistry::new();
        r.advertise(desc("rx-array-north", ServiceKind::Filtering));
        r.advertise(desc("rx-array-south", ServiceKind::Filtering));
        r.advertise(desc("tx-array", ServiceKind::Replicator));
        assert_eq!(r.discover_prefix("rx-").len(), 2);
        assert_eq!(r.discover_prefix("tx-").len(), 1);
        assert!(r.discover_prefix("zz").is_empty());
    }

    #[test]
    fn iteration_is_deterministic() {
        let mut r = ServiceRegistry::new();
        for name in ["z", "m", "a"] {
            r.advertise(desc(name, ServiceKind::Consumer));
        }
        let names: Vec<&str> = r.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
    }
}
