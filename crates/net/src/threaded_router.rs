//! Edge plumbing for a threaded service-graph driver.
//!
//! A threaded router runs each middleware stage on its own worker(s)
//! and moves events between them over bounded FIFO channels. What makes
//! that deterministic is *sequencing*: every event entering the graph
//! at the facade boundary is stamped with a **root sequence number**,
//! and every stage's outputs are merged back in submission order before
//! the driver routes them onward. This module provides the reusable
//! half of that machinery:
//!
//! * [`StageEdge`] — a [`ShardPool`] wrapped with root attribution: the
//!   driver submits `(root, job)` pairs and drains `(root, output)`
//!   pairs in exact submission order, with worker failures attributed
//!   back to the root that lost work.
//!
//! The domain-specific half (which events go to which stage, and what
//! "to quiescence" means for one root) lives in `garnet-core`'s
//! `ThreadedRouter`, which composes three of these edges.

use std::collections::BTreeMap;

use crate::bus::{EdgeClass, RefusedJob, ShardFailure, ShardPool, Stage, SupervisionConfig};

/// A worker failure attributed to the boundary event (root) whose work
/// was lost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RootFailure {
    /// The root sequence number whose job was lost.
    pub root: u64,
    /// The underlying shard failure.
    pub failure: ShardFailure,
}

/// A sharded stage of a threaded service graph, with its outputs and
/// failures keyed by root sequence number.
///
/// Wraps a [`ShardPool`]: jobs are tagged with the root they belong to
/// at submission, and [`StageEdge::drain`] hands back `(root, output)`
/// pairs in exact submission order — the pool's gap-free prefix merge,
/// re-labelled. A job lost to a worker panic surfaces as a
/// [`RootFailure`] so the driver can close out the root's accounting
/// instead of waiting forever.
///
/// Backpressure is the pool's: `submit` blocks while the target shard's
/// bounded queue is full, `try_submit` hands the job back. Which one an
/// edge uses is the driver's admission policy.
pub struct StageEdge<I: Send + 'static, O: Send + 'static> {
    pool: ShardPool<I, O>,
    /// Root owning each in-flight pool sequence number.
    roots: BTreeMap<u64, u64>,
    /// Pool seqs known lost (their failures already reported); the
    /// output-assignment walk skips them.
    failed: std::collections::BTreeSet<u64>,
    /// Next pool seq to assign a drained output to.
    next_assign: u64,
    pending_failures: Vec<RootFailure>,
}

impl<I: Send + 'static, O: Send + 'static> StageEdge<I, O> {
    /// Spawns the stage's workers; see [`ShardPool::with_supervision`]
    /// for the `shards` / `capacity` / `supervision` semantics.
    pub fn new<F>(
        shards: usize,
        capacity: usize,
        supervision: Option<SupervisionConfig>,
        factory: F,
    ) -> Self
    where
        F: FnMut(usize) -> Stage<I, O> + 'static,
    {
        StageEdge {
            pool: ShardPool::with_supervision(shards, capacity, supervision, factory),
            roots: BTreeMap::new(),
            failed: std::collections::BTreeSet::new(),
            next_assign: 0,
            pending_failures: Vec::new(),
        }
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.pool.shard_count()
    }

    /// Submits `job` for `root` on `shard`, blocking while the shard's
    /// queue is full (backpressure propagates to the driver).
    pub fn submit(&mut self, shard: usize, root: u64, job: I) {
        self.submit_classed(shard, root, job, EdgeClass::Data);
    }

    /// [`StageEdge::submit`] carrying an explicit [`EdgeClass`] tag —
    /// the QoS layer's per-class flow accounting at this stage's
    /// channel boundary.
    pub fn submit_classed(&mut self, shard: usize, root: u64, job: I, class: EdgeClass) {
        let seq = self.pool.submit_tagged(shard, job, class);
        self.roots.insert(seq, root);
    }

    /// Submits a burst of `(root, job)` pairs to `shard` as one channel
    /// hand-off (see [`ShardPool::submit_batch`]): the jobs take
    /// consecutive pool sequence numbers in order, so drain order and
    /// root attribution are exactly as if each pair had been
    /// [`StageEdge::submit`]ted individually.
    pub fn submit_batch(&mut self, shard: usize, jobs: Vec<(u64, I)>) {
        self.submit_batch_classed(shard, jobs, EdgeClass::Data);
    }

    /// [`StageEdge::submit_batch`] carrying an explicit [`EdgeClass`]
    /// tag for the whole burst.
    pub fn submit_batch_classed(&mut self, shard: usize, jobs: Vec<(u64, I)>, class: EdgeClass) {
        let mut roots = Vec::with_capacity(jobs.len());
        let mut batch = Vec::with_capacity(jobs.len());
        for (root, job) in jobs {
            roots.push(root);
            batch.push(job);
        }
        let seqs = self.pool.submit_batch_tagged(shard, batch, class);
        for (seq, root) in seqs.zip(roots) {
            self.roots.insert(seq, root);
        }
    }

    /// Non-blocking submission: at capacity (or on a dead,
    /// budget-exhausted shard) the job is handed back and nothing is
    /// recorded for the root.
    pub fn try_submit(&mut self, shard: usize, root: u64, job: I) -> Result<(), RefusedJob<I>> {
        self.try_submit_classed(shard, root, job, EdgeClass::Data)
    }

    /// [`StageEdge::try_submit`] carrying an explicit [`EdgeClass`] tag
    /// (counted only when the job is accepted).
    pub fn try_submit_classed(
        &mut self,
        shard: usize,
        root: u64,
        job: I,
        class: EdgeClass,
    ) -> Result<(), RefusedJob<I>> {
        let seq = self.pool.try_submit_tagged(shard, job, class)?;
        self.roots.insert(seq, root);
        Ok(())
    }

    /// Jobs accepted per [`EdgeClass`] at this edge, indexed by
    /// [`EdgeClass::index`].
    pub fn class_submits(&self) -> [u64; 3] {
        self.pool.class_submits()
    }

    /// Collects newly surfaced worker failures, attributing each to its
    /// root, and marks their pool seqs as gaps for the output walk.
    fn absorb_failures(&mut self) {
        for failure in self.pool.take_failures() {
            let root = self.roots.remove(&failure.seq).unwrap_or(u64::MAX);
            self.failed.insert(failure.seq);
            self.pending_failures.push(RootFailure { root, failure });
        }
    }

    /// Returns the stage outputs that are ready and form a gap-free
    /// prefix of the submission order, each labelled with its root.
    pub fn drain(&mut self) -> Vec<(u64, O)> {
        self.absorb_failures();
        let outs = self.pool.drain();
        // absorb_failures ran inside drain too: pick up anything that
        // surfaced between the two calls before assigning seqs.
        self.absorb_failures();
        let watermark = self.pool.merged_watermark();
        let mut out = Vec::with_capacity(outs.len());
        let mut it = outs.into_iter();
        for seq in self.next_assign..watermark {
            if self.failed.remove(&seq) {
                continue; // a lost job's slot: already reported
            }
            let o = it.next().expect("pool releases one output per non-failed seq");
            let root = self.roots.remove(&seq).expect("every submitted seq has a root");
            out.push((root, o));
        }
        debug_assert!(it.next().is_none(), "outputs beyond the merge watermark");
        self.next_assign = watermark;
        out
    }

    /// Takes the failures recorded so far, oldest first, each attributed
    /// to its root.
    pub fn take_failures(&mut self) -> Vec<RootFailure> {
        self.absorb_failures();
        std::mem::take(&mut self.pending_failures)
    }

    /// Shard restarts performed by the supervision policy.
    pub fn restart_count(&self) -> u64 {
        self.pool.restart_count()
    }

    /// Takes the supervision restarts performed since the last call,
    /// each with its backoff delay (see [`crate::bus::RestartEvent`]).
    pub fn take_restart_events(&mut self) -> Vec<crate::bus::RestartEvent> {
        self.pool.take_restart_events()
    }

    /// Drains remaining work, joins the workers, and returns every
    /// outstanding `(root, output)` in submission order plus every
    /// remaining failure.
    pub fn finish(mut self) -> (Vec<(u64, O)>, Vec<RootFailure>) {
        self.absorb_failures();
        let (outs, late) = self.pool.finish();
        let mut failures = std::mem::take(&mut self.pending_failures);
        for failure in late {
            let root = self.roots.remove(&failure.seq).unwrap_or(u64::MAX);
            self.failed.insert(failure.seq);
            failures.push(RootFailure { root, failure });
        }
        // finish() released everything that wasn't a failure: walk the
        // remaining seqs in order and label them.
        let mut labelled = Vec::with_capacity(outs.len());
        let mut it = outs.into_iter();
        let seqs: Vec<u64> = self.roots.keys().copied().collect();
        for seq in seqs {
            if self.failed.contains(&seq) {
                continue;
            }
            if let Some(o) = it.next() {
                let root = self.roots[&seq];
                labelled.push((root, o));
            }
        }
        (labelled, failures)
    }
}

impl<I: Send + 'static, O: Send + 'static> core::fmt::Debug for StageEdge<I, O> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("StageEdge")
            .field("shards", &self.pool.shard_count())
            .field("in_flight", &self.roots.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_labels_outputs_with_their_roots_in_order() {
        let mut edge: StageEdge<u32, u32> = StageEdge::new(2, 8, None, |_| Box::new(|x| x * 10));
        for (root, x) in [(7u64, 1u32), (7, 2), (9, 3), (11, 4)] {
            edge.submit(x as usize % 2, root, x);
        }
        let mut got = Vec::new();
        while got.len() < 4 {
            got.extend(edge.drain());
        }
        assert_eq!(got, vec![(7, 10), (7, 20), (9, 30), (11, 40)]);
        let (rest, failures) = edge.finish();
        assert!(rest.is_empty() && failures.is_empty());
    }

    #[test]
    fn batch_submission_preserves_root_labels_and_order() {
        let mut edge: StageEdge<u32, u32> = StageEdge::new(2, 8, None, |_| Box::new(|x| x * 10));
        edge.submit(0, 7, 1);
        edge.submit_batch(1, vec![(7, 2), (9, 3)]);
        edge.submit_batch(0, vec![(11, 4)]);
        let mut got = Vec::new();
        while got.len() < 4 {
            got.extend(edge.drain());
        }
        assert_eq!(got, vec![(7, 10), (7, 20), (9, 30), (11, 40)]);
        let (rest, failures) = edge.finish();
        assert!(rest.is_empty() && failures.is_empty());
    }

    #[test]
    fn failures_are_attributed_to_roots_and_skipped_in_the_walk() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut edge: StageEdge<u32, u32> = StageEdge::new(2, 8, None, |_| {
            Box::new(|x| {
                if x == 13 {
                    panic!("bad job");
                }
                x
            })
        });
        edge.submit(0, 100, 1);
        edge.submit(1, 200, 13);
        edge.submit(0, 300, 2);
        let mut got = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while got.len() < 2 {
            got.extend(edge.drain());
            assert!(std::time::Instant::now() < deadline, "drain hung on the lost seq");
        }
        assert_eq!(got, vec![(100, 1), (300, 2)]);
        let failures = edge.take_failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].root, 200);
        assert_eq!(failures[0].failure.reason, "bad job");
        std::panic::set_hook(prev);
    }
}
