//! The fixed-network substrate beneath the Garnet middleware.
//!
//! "At the fixed network, the data is consumed by applications which use
//! typical advertising, discovery, registration, authentication and
//! publish/subscribe mechanisms to identify, subscribe to, and receive
//! data streams of interest. … Unless otherwise indicated, communication
//! is based on asynchronous message exchange" (§3).
//!
//! This crate provides those five mechanisms:
//!
//! * [`registry`] — service **advertising**, **discovery** and
//!   **registration**;
//! * [`auth`] — principal **authentication** via MAC-signed capability
//!   tokens;
//! * [`pubsub`] — the **publish/subscribe** subscription table that the
//!   Dispatching Service consults;
//! * [`bus`] — asynchronous message exchange between services, with a
//!   crossbeam-channel threaded driver for live deployments (experiments
//!   use the deterministic `garnet-simkit` event queue instead);
//! * [`rpc`] — request/response correlation over the bus (the "Remote
//!   Procedure Call" arrows of Figure 1);
//! * [`threaded_router`] — root-attributed stage edges over [`bus`]'s
//!   `ShardPool`, the plumbing under the full threaded service graph;
//! * [`archiver`] — the background writer that drains pre-encoded
//!   archive records into a `garnet-store` log without ever blocking
//!   frame delivery.
//!
//! No async runtime is used: the paper's asynchrony is plain message
//! passing, which channels model directly and deterministically.

pub mod archiver;
pub mod auth;
pub mod bus;
pub mod pubsub;
pub mod registry;
pub mod rpc;
pub mod threaded_router;

pub use archiver::{Archiver, ArchiverCounters, ArchiverShutdown, FlushOutcome};
pub use auth::{AuthService, Capability, CapabilitySet, Principal, Token};
pub use bus::{
    BusError, EdgeClass, RefusedJob, RestartEvent, ShardFailure, ShardPool, Stage,
    SupervisionConfig, ThreadedBus,
};
pub use pubsub::{
    DispatchCacheConfig, MatchCache, MatchCacheStats, SubscriberId, SubscriptionTable, TopicFilter,
};
pub use registry::{ServiceDescriptor, ServiceKind, ServiceRegistry};
pub use rpc::{CallId, RpcTable};
pub use threaded_router::{RootFailure, StageEdge};
