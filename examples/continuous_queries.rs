//! Continuous queries over a shared sensor stream: the Fjords parallel
//! (§7) as running code, plus demand-driven quiescence.
//!
//! ```text
//! cargo run --example continuous_queries
//! ```
//!
//! One temperature sensor serves three continuous queries of very
//! different cadences through a single acquisition stream — the query
//! host asks the Resource Manager for the fastest rate any query needs
//! (exactly what a Fjords sensor proxy would do), and each query's
//! results publish on their own derived stream. A second, unwatched
//! sensor gets quiesced by the middleware to save its battery.

use std::sync::atomic::Ordering;

use garnet::baselines::querydb::{Aggregate, Query};
use garnet::core::middleware::{ActuationOutcome, GarnetConfig, QuiesceConfig};
use garnet::core::pipeline::{PipelineConfig, PipelineSim, SharedCountConsumer};
use garnet::net::TopicFilter;
use garnet::radio::field::Diurnal;
use garnet::radio::geometry::Point;
use garnet::radio::{
    Medium, Propagation, Receiver, SensorCaps, SensorNode, StreamConfig, Transmitter,
};
use garnet::simkit::{SimDuration, SimTime};
use garnet::wire::{ActuationTarget, SensorCommand, SensorId, StreamId, StreamIndex};
use garnet::workloads::ContinuousQueryConsumer;

fn main() {
    println!("Continuous queries — one acquisition stream, three cadences\n");

    let receivers = Receiver::grid(Point::ORIGIN, 2, 2, 120.0, 200.0);
    let transmitters = Transmitter::grid(Point::ORIGIN, 2, 2, 120.0, 200.0);
    let config = PipelineConfig {
        seed: 7,
        medium: Medium::ideal(Propagation::UnitDisk { range_m: 200.0 }),
        garnet: GarnetConfig {
            receivers,
            transmitters,
            quiesce: Some(QuiesceConfig {
                idle_after: SimDuration::from_secs(120),
                slow_interval_ms: 300_000,
                restore_interval_ms: 5_000,
            }),
            ..GarnetConfig::default()
        },
        peer_range_m: None,
    };
    let field = Diurnal { mean: 15.0, amplitude: 8.0, period_s: 86_400.0, gx: 0.0 };
    let mut sim = PipelineSim::new(config, Box::new(field));

    // The watched sensor and a second one nobody subscribes to.
    for (id, pos) in [(1u32, Point::new(60.0, 60.0)), (2, Point::new(120.0, 60.0))] {
        sim.add_sensor(
            SensorNode::new(SensorId::new(id).unwrap(), pos)
                .with_caps(SensorCaps::sophisticated())
                .with_stream(StreamIndex::new(0), StreamConfig::every(SimDuration::from_secs(30))),
        );
    }

    // The query host: three cadences over sensor 1.
    let mut host = ContinuousQueryConsumer::new("query-host");
    let q_fast = host.register(Query::latest_every(SimDuration::from_secs(10)));
    let q_avg =
        host.register(Query { interval: SimDuration::from_secs(60), aggregate: Aggregate::Avg });
    let q_max =
        host.register(Query { interval: SimDuration::from_secs(300), aggregate: Aggregate::Max });
    let acquisition = host.acquisition_interval().expect("queries registered");
    println!("query host needs acquisition every {acquisition} (fastest of 10s/60s/300s queries)");

    let token = sim.garnet_mut().issue_default_token("ops");
    let host_id = sim.garnet_mut().register_consumer(Box::new(host), &token, 2).unwrap();
    let physical = StreamId::new(SensorId::new(1).unwrap(), StreamIndex::new(0));
    sim.garnet_mut().subscribe(host_id, TopicFilter::Stream(physical), &token).unwrap();

    // The host asks the Resource Manager for its acquisition rate — the
    // Fjords-proxy move.
    let now = sim.now();
    let outcome = sim
        .garnet_mut()
        .request_actuation(
            host_id,
            &token,
            ActuationTarget::Stream(physical),
            SensorCommand::SetReportInterval {
                stream: StreamIndex::new(0),
                interval_ms: acquisition.as_millis() as u32,
            },
            now,
        )
        .expect("authorized");
    if let ActuationOutcome::Granted { plan, .. } = outcome {
        sim.carry_out(garnet::core::middleware::StepOutput {
            control: vec![plan],
            ..Default::default()
        });
        println!("acquisition rate granted and transmitted to the sensor\n");
    }

    // Three dashboards, one per result stream.
    let virt = sim.garnet_mut().virtual_sensor(host_id).unwrap();
    let mut dashboards = Vec::new();
    for (label, idx) in [("10s-latest", q_fast), ("60s-avg", q_avg), ("300s-max", q_max)] {
        let (dash, count) = SharedCountConsumer::new(label);
        let id = sim.garnet_mut().register_consumer(Box::new(dash), &token, 0).unwrap();
        sim.garnet_mut()
            .subscribe(id, TopicFilter::Stream(StreamId::new(virt, StreamIndex::new(idx))), &token)
            .unwrap();
        dashboards.push((label, count));
    }

    println!("running 20 simulated minutes…");
    sim.run_until(SimTime::from_secs(1_200));

    println!("\nresults per dashboard:");
    for (label, count) in &dashboards {
        println!("  {label:>10}: {} reports", count.load(Ordering::Relaxed));
    }
    let g = sim.garnet();
    println!("\nmiddleware:");
    println!(
        "  sensor 1 acquisition interval (merged): {:?} ms",
        g.resource().effective_interval_ms(SensorId::new(1).unwrap(), StreamIndex::new(0))
    );
    println!("  sensor 2 quiesced: {} action(s)", g.quiesce_action_count());
    println!(
        "  sensor energy: watched {:.2} mJ, unwatched {:.2} mJ",
        sim.sensors()[0].energy_consumed_nj() as f64 / 1e6,
        sim.sensors()[1].energy_consumed_nj() as f64 / 1e6,
    );
}
