//! Quickstart: one sensor, one consumer, ten simulated seconds.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds the smallest complete Garnet deployment — a single temperature
//! sensor, a 2×2 receiver grid, the full middleware, and a consumer that
//! prints every delivered reading — and runs it for ten simulated
//! seconds.

use garnet::core::consumer::{Consumer, ConsumerCtx};
use garnet::core::filtering::Delivery;
use garnet::core::middleware::GarnetConfig;
use garnet::core::pipeline::{PipelineConfig, PipelineSim};
use garnet::net::TopicFilter;
use garnet::radio::field::Uniform;
use garnet::radio::geometry::Point;
use garnet::radio::{
    Medium, Propagation, Reading, Receiver, SensorNode, StreamConfig, Transmitter,
};
use garnet::simkit::{SimDuration, SimTime};
use garnet::wire::{SensorId, StreamIndex};

/// Prints every delivered reading.
struct Printer;

impl Consumer for Printer {
    fn name(&self) -> &str {
        "printer"
    }

    fn on_data(&mut self, delivery: &Delivery, _ctx: &mut ConsumerCtx) {
        if let Some(reading) = Reading::decode(delivery.msg.payload()) {
            println!(
                "  [{}] stream {} seq {} → {:.2} °C (sensed at {})",
                delivery.delivered_at,
                delivery.msg.stream(),
                delivery.msg.seq(),
                reading.value,
                reading.sensed_at(),
            );
        }
    }
}

fn main() {
    println!("Garnet quickstart — one sensor through the full Figure 1 pipeline\n");

    // The fixed infrastructure: overlapping receivers (duplication!) and
    // one transmitter for the return path.
    let receivers = Receiver::grid(Point::ORIGIN, 2, 2, 60.0, 100.0);
    let transmitters = Transmitter::grid(Point::ORIGIN, 1, 1, 1.0, 150.0);
    let config = PipelineConfig {
        seed: 1,
        medium: Medium::ideal(Propagation::UnitDisk { range_m: 100.0 }),
        garnet: GarnetConfig { receivers, transmitters, ..GarnetConfig::default() },
        peer_range_m: None,
    };

    // The environment and the sensor sampling it.
    let mut sim = PipelineSim::new(config, Box::new(Uniform(21.5)));
    let sensor = SensorNode::new(SensorId::new(1).expect("small id"), Point::new(30.0, 30.0))
        .with_stream(StreamIndex::new(0), StreamConfig::every(SimDuration::from_secs(1)));
    sim.add_sensor(sensor);

    // A consumer subscribes through the middleware's front door.
    let token = sim.garnet_mut().issue_default_token("printer");
    let id = sim
        .garnet_mut()
        .register_consumer(Box::new(Printer), &token, 0)
        .expect("registration succeeds");
    sim.garnet_mut()
        .subscribe(id, TopicFilter::Sensor(SensorId::new(1).unwrap()), &token)
        .expect("subscription succeeds");

    println!("running 10 simulated seconds…");
    sim.run_until(SimTime::from_secs(10));

    let g = sim.garnet();
    println!("\npipeline statistics:");
    println!("  transmissions          {}", sim.transmission_count());
    println!("  receptions (with dups) {}", sim.reception_count());
    println!("  duplicates eliminated  {}", g.filtering().duplicate_count());
    println!("  delivered to consumers {}", g.dispatching().delivery_count());
    println!("  streams catalogued     {}", g.streams().len());
}
