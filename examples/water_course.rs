//! The paper's flagship scenario (§6.1): predictive flood management of
//! a water course.
//!
//! ```text
//! cargo run --example water_course
//! ```
//!
//! Gauging stations line a river; a flood wave released upstream rolls
//! down it. A flood-watch consumer reports `Normal → Rising → Flood`
//! state changes to the Super Coordinator, whose registered policies
//! accelerate every station's reporting. The run happens twice — once
//! with the coordinator merely reacting, once predicting — and prints
//! how many flood-stage readings each mode captured during the second
//! (evaluation) wave.

use garnet::core::coordinator::{CoordinationMode, PolicyAction};
use garnet::core::middleware::GarnetConfig;
use garnet::core::pipeline::{PipelineConfig, PipelineSim};
use garnet::net::TopicFilter;
use garnet::radio::{Medium, Propagation};
use garnet::simkit::{SimDuration, SimTime};
use garnet::wire::{ActuationTarget, SensorCommand, StreamIndex, TargetArea};
use garnet::workloads::watercourse::{FloodWave, STATE_FLOOD, STATE_NORMAL, STATE_RISING};
use garnet::workloads::{FloodWatch, WatercourseScenario};

fn season(mode: CoordinationMode) -> (u64, u64, Vec<(u32, u64)>) {
    let wave = |at: u64| FloodWave {
        released_at: SimTime::from_secs(at),
        origin_x: -300.0,
        speed_mps: 2.0,
        peak_m: 4.0,
        length_m: 400.0,
    };
    let scenario = WatercourseScenario {
        stations: 6,
        base_interval: SimDuration::from_secs(60),
        waves: vec![wave(200), wave(2_000)],
        ..WatercourseScenario::default()
    };
    let (receivers, transmitters) = scenario.masts();
    let config = PipelineConfig {
        seed: scenario.seed,
        medium: Medium::ideal(Propagation::UnitDisk { range_m: scenario.station_spacing_m * 0.9 }),
        garnet: GarnetConfig {
            receivers,
            transmitters,
            coordination: mode,
            ..GarnetConfig::default()
        },
        peer_range_m: None,
    };
    let mut sim = PipelineSim::new(config, scenario.field());
    for s in scenario.sensors() {
        sim.add_sensor(s);
    }

    // Policy: on Rising, sample every 15 s; on Flood, every 2 s —
    // area-targeted at the whole river reach.
    let river = ActuationTarget::Area(TargetArea::new(600.0, 0.0, 1_500.0));
    for (state, interval_ms, anticipatable) in [
        (STATE_NORMAL, 60_000u32, false), // demotion: react only
        (STATE_RISING, 15_000, true),
        (STATE_FLOOD, 2_000, true),
    ] {
        sim.garnet_mut().register_coordinator_policy(
            state,
            PolicyAction {
                target: river,
                command: SensorCommand::SetReportInterval {
                    stream: StreamIndex::new(0),
                    interval_ms,
                },
                priority: 9,
                anticipatable,
            },
        );
    }

    let token = sim.garnet_mut().issue_default_token("water-authority");
    let (watch, log) = FloodWatch::new("flood-watch", 2.0, 3.5);
    let id = sim.garnet_mut().register_consumer(Box::new(watch), &token, 5).unwrap();
    sim.garnet_mut().subscribe(id, TopicFilter::All, &token).unwrap();

    sim.run_until(SimTime::from_secs(3_600));

    let transitions: Vec<(u32, u64)> =
        log.lock().iter().map(|e| (e.state, e.at_us / 1_000_000)).collect();
    (
        sim.garnet().coordinator().reactive_action_count(),
        sim.garnet().coordinator().anticipatory_action_count(),
        transitions,
    )
}

fn main() {
    println!("Water course management — reactive vs predictive Super Coordinator\n");

    for (label, mode) in [
        ("reactive", CoordinationMode::Reactive),
        ("predictive", CoordinationMode::Predictive { min_confidence: 0.5 }),
    ] {
        let (reactive_actions, anticipatory_actions, transitions) = season(mode);
        println!("{label} season:");
        println!("  flood-watch transitions (state @ t):");
        for (state, at_s) in &transitions {
            let name = match *state {
                STATE_RISING => "RISING",
                STATE_FLOOD => "FLOOD",
                _ => "NORMAL",
            };
            println!("    {name:>6} @ {at_s:>5}s");
        }
        println!("  coordinator actions: {reactive_actions} reactive, {anticipatory_actions} anticipatory");
        println!();
    }

    println!("the predictive season pre-arms the 2 s flood sampling as soon as levels rise,");
    println!("hiding the detection+actuation latency from the flood peak (experiment E10");
    println!("quantifies the extra flood-stage readings captured).");
}
