//! Telemetry node: a Garnet deployment exporting windowed snapshots to
//! a JSONL sink directory that `garnetctl` can inspect.
//!
//! ```text
//! cargo run --example telemetry_node -- /tmp/garnet-telemetry
//! cargo run -p garnet-ctl --bin garnetctl -- dump /tmp/garnet-telemetry
//! ```
//!
//! Pushes a bursty multi-sensor workload through the facade with
//! telemetry auto-emission every 5 simulated seconds and a rotating
//! `telemetry-*.jsonl` sink in the given directory (ci.sh points
//! garnetctl at it as the operator-tooling smoke test). The final
//! snapshot, health verdict, and Prometheus exposition are printed to
//! stdout.

use std::path::PathBuf;

use garnet::core::middleware::{Garnet, GarnetConfig};
use garnet::core::pipeline::SharedCountConsumer;
use garnet::core::telemetry::TelemetryConfig;
use garnet::net::TopicFilter;
use garnet::radio::ReceiverId;
use garnet::simkit::{SimDuration, SimTime};
use garnet::wire::{DataMessage, SensorId, SequenceNumber, StreamId, StreamIndex};

fn main() {
    let sink_dir: PathBuf =
        std::env::args().nth(1).unwrap_or_else(|| "telemetry-sink".into()).into();
    println!("Garnet telemetry node — sink: {}\n", sink_dir.display());

    let mut garnet = Garnet::new(GarnetConfig {
        telemetry: TelemetryConfig {
            interval: Some(SimDuration::from_secs(5)),
            sink_dir: Some(sink_dir.clone()),
            rotate_lines: 8,
            ..TelemetryConfig::default()
        },
        ..GarnetConfig::default()
    });
    let token = garnet.issue_default_token("telemetry-node");
    let (consumer, delivered) = SharedCountConsumer::new("telemetry-node");
    let id =
        garnet.register_consumer(Box::new(consumer), &token, 0).expect("registration succeeds");
    garnet.subscribe(id, TopicFilter::All, &token).expect("subscription succeeds");

    // Sixty simulated seconds of bursty traffic from eight sensors: one
    // 16-frame burst per second, so each 5 s telemetry window sees
    // different rates as the burst sizes wobble.
    let mut offered = 0u64;
    for second in 0..60u64 {
        let burst = 8 + ((second % 5) * 4) as u32; // 8..=24 frames
        let frames: Vec<_> = (0..burst)
            .map(|i| {
                let sensor = 1 + (i % 8);
                let stream =
                    StreamId::new(SensorId::new(sensor).expect("small id"), StreamIndex::new(0));
                let msg = DataMessage::builder(stream)
                    .seq(SequenceNumber::new(second as u16))
                    .payload(vec![second as u8, sensor as u8])
                    .build()
                    .expect("valid message")
                    .encode_to_vec();
                (ReceiverId::new(i % 4), -42.0, msg)
            })
            .collect();
        offered += frames.len() as u64;
        garnet.on_frames(frames, SimTime::from_secs(second));
    }
    garnet.on_tick(SimTime::from_secs(60));

    // Close one final explicit window so the sink ends on a fresh line.
    let snapshot = garnet.telemetry(SimTime::from_secs(61));
    if let Some(err) = garnet.telemetry_sink_error() {
        eprintln!("sink error: {err}");
        std::process::exit(1);
    }

    println!(
        "offered {offered} frames, delivered {}",
        delivered.load(std::sync::atomic::Ordering::Relaxed)
    );
    println!(
        "emitted {} telemetry windows; final health: {}",
        snapshot.seq,
        snapshot.health.label()
    );
    println!("\nfinal snapshot (JSONL):\n{}", snapshot.to_jsonl());
    println!("final snapshot (Prometheus):\n{}", snapshot.to_prometheus());
}
