//! Habitat monitoring: the paper's §7 comparison scenario, end to end.
//!
//! ```text
//! cargo run --example habitat_monitoring
//! ```
//!
//! A 6×6 plot of simple, transmit-only microclimate sensors reports
//! through overlapping gateway receivers. Two mutually-unaware consumers
//! run side by side: an *ecologist* averaging the plot temperature into
//! a derived stream (multi-level consumption, §4.2), and a *logger*
//! counting raw deliveries. A third consumer subscribes late to the
//! ecologist's derived stream and still sees data thanks to the
//! Orphanage.

use std::sync::atomic::Ordering;

use garnet::core::consumer::{Consumer, ConsumerCtx};
use garnet::core::filtering::Delivery;
use garnet::core::pipeline::SharedCountConsumer;
use garnet::net::TopicFilter;
use garnet::radio::Reading;
use garnet::simkit::{SimDuration, SimTime};
use garnet::wire::{StreamId, StreamIndex};
use garnet::workloads::HabitatScenario;

/// Averages every window of 36 readings onto derived stream 0.
struct PlotAverager {
    window: Vec<f64>,
    emitted: u64,
}

impl Consumer for PlotAverager {
    fn name(&self) -> &str {
        "plot-averager"
    }

    fn on_data(&mut self, delivery: &Delivery, ctx: &mut ConsumerCtx) {
        if let Some(reading) = Reading::decode(delivery.msg.payload()) {
            self.window.push(reading.value);
            if self.window.len() == 36 {
                let mean = self.window.iter().sum::<f64>() / 36.0;
                self.window.clear();
                self.emitted += 1;
                ctx.publish_derived(StreamIndex::new(0), Reading::new(mean, ctx.now()).encode());
            }
        }
    }
}

fn main() {
    println!("Habitat monitoring — 36 sensors, mutually-unaware consumers, derived streams\n");

    let scenario = HabitatScenario {
        grid_side: 6,
        report_interval: SimDuration::from_secs(10),
        ..HabitatScenario::default()
    };
    let mut sim = scenario.build();
    let token = sim.garnet_mut().issue_default_token("habitat");

    // Consumer 1: the ecologist's averager over every physical sensor.
    let averager_id = sim
        .garnet_mut()
        .register_consumer(Box::new(PlotAverager { window: Vec::new(), emitted: 0 }), &token, 0)
        .unwrap();
    for node in scenario.sensors() {
        sim.garnet_mut().subscribe(averager_id, TopicFilter::Sensor(node.id()), &token).unwrap();
    }
    let derived_stream = StreamId::new(
        sim.garnet_mut().virtual_sensor(averager_id).expect("consumer just registered"),
        StreamIndex::new(0),
    );

    // Consumer 2: a raw logger, unaware of the ecologist. It watches the
    // physical sensors only (an All subscription would claim the derived
    // stream too, and the Orphanage would have nothing to retain).
    let (logger, raw_count) = SharedCountConsumer::new("raw-logger");
    let logger_id = sim.garnet_mut().register_consumer(Box::new(logger), &token, 0).unwrap();
    for node in scenario.sensors() {
        sim.garnet_mut().subscribe(logger_id, TopicFilter::Sensor(node.id()), &token).unwrap();
    }

    println!("phase 1: 5 simulated minutes with the averager publishing unclaimed derived data…");
    sim.run_until(SimTime::from_secs(300));
    let orphaned = sim.garnet().orphanage().stats(derived_stream);
    if let Some(stats) = &orphaned {
        println!(
            "  derived stream {} is unclaimed: {} msgs seen, {} retained by the Orphanage",
            derived_stream, stats.messages_seen, stats.retained
        );
    }

    // Consumer 3 arrives late and subscribes to the derived stream: the
    // Orphanage replays the backlog.
    let (late, late_count) = SharedCountConsumer::new("late-dashboard");
    let late_id = sim.garnet_mut().register_consumer(Box::new(late), &token, 0).unwrap();
    let now = sim.now();
    let (replayed, _) = sim
        .garnet_mut()
        .subscribe_at(late_id, TopicFilter::Stream(derived_stream), &token, now)
        .unwrap();
    println!("  late dashboard subscribed: {replayed} messages replayed from the Orphanage");

    println!("phase 2: 5 more minutes with all three consumers live…");
    sim.run_until(SimTime::from_secs(600));

    let g = sim.garnet();
    println!("\nresults:");
    println!("  raw deliveries to logger      {}", raw_count.load(Ordering::Relaxed));
    println!("  derived msgs at late consumer {}", late_count.load(Ordering::Relaxed));
    println!("  duplicates eliminated         {}", g.filtering().duplicate_count());
    println!("  streams catalogued            {}", g.streams().len());
    println!(
        "  registry knows                {} consumers",
        g.registry().discover_kind(garnet::net::ServiceKind::Consumer).len()
    );
    assert!(late_count.load(Ordering::Relaxed) as usize >= replayed);
}
