//! Reconnaissance with dynamic sensor control: detection, location
//! inference, hints, and the return actuation path.
//!
//! ```text
//! cargo run --example recon_actuation
//! ```
//!
//! A target crosses a field of mostly simple (transmit-only) sensors. A
//! detector consumer publishes a derived detections stream and supplies
//! location hints from its site survey. On first contact, the operator
//! accelerates the sophisticated sensors via the Resource
//! Manager/Actuation Service and reads an inferred sensor location back
//! from the Location Service.

use std::sync::atomic::Ordering;

use garnet::core::middleware::ActuationOutcome;
use garnet::core::pipeline::SharedCountConsumer;
use garnet::net::TopicFilter;
use garnet::simkit::SimTime;
use garnet::wire::{ActuationTarget, SensorCommand, StreamId, StreamIndex};
use garnet::workloads::recon::TargetDetector;
use garnet::workloads::ReconScenario;

fn main() {
    println!("Reconnaissance — detection, derived streams, hints, actuation\n");

    let scenario = ReconScenario::default();
    let survey = scenario.survey();
    let mut sim = scenario.build();
    let token = sim.garnet_mut().issue_default_token("recon-ops");

    // The detector watches every physical sensor.
    let (detector, detections) = TargetDetector::new("detector", 10.0, survey.clone());
    let det_id = sim.garnet_mut().register_consumer(Box::new(detector), &token, 3).unwrap();
    for (sensor, _) in &survey {
        sim.garnet_mut().subscribe(det_id, TopicFilter::Sensor(*sensor), &token).unwrap();
    }

    // An ops console subscribes to the detector's *derived* stream.
    let derived =
        StreamId::new(sim.garnet_mut().virtual_sensor(det_id).unwrap(), StreamIndex::new(0));
    let (console, console_count) = SharedCountConsumer::new("ops-console");
    let console_id = sim.garnet_mut().register_consumer(Box::new(console), &token, 0).unwrap();
    sim.garnet_mut().subscribe(console_id, TopicFilter::Stream(derived), &token).unwrap();

    println!("phase 1: target ingress (40 simulated seconds)…");
    sim.run_until(SimTime::from_secs(40));
    println!("  detections so far: {}", detections.lock().len());
    println!("  location hints supplied: {}", sim.garnet().location().hint_count());

    // On contact, ops accelerates every sophisticated sensor.
    println!("phase 2: accelerating sophisticated sensors to 1 Hz via the actuation path…");
    let now = sim.now();
    let mut granted = 0;
    let sophisticated: Vec<_> =
        scenario.sensors().iter().filter(|s| s.caps().receive_capable).map(|s| s.id()).collect();
    for sensor in &sophisticated {
        let outcome = sim
            .garnet_mut()
            .request_actuation(
                console_id,
                &token,
                ActuationTarget::Sensor(*sensor),
                SensorCommand::SetReportInterval {
                    stream: StreamIndex::new(0),
                    interval_ms: 1_000,
                },
                now,
            )
            .expect("authorized");
        if let ActuationOutcome::Granted { plan, .. } = outcome {
            println!(
                "  {} → {} transmitter(s){}",
                sensor,
                plan.transmitters.len(),
                if plan.flooded { " (flooded: no location fix yet)" } else { " (targeted)" }
            );
            granted += 1;
            sim.carry_out(garnet::core::middleware::StepOutput {
                control: vec![plan],
                ..Default::default()
            });
        }
    }
    println!("  {granted}/{} requests granted by the Resource Manager", sophisticated.len());

    println!("phase 3: target egress (to t=120 s)…");
    sim.run_until(SimTime::from_secs(120));

    // Read an inferred location back (ReadLocation capability).
    let now = sim.now();
    if let Ok(Some(est)) = sim.garnet().locate(&token, sophisticated[0], now) {
        println!(
            "\ninferred location of {}: {} ± {:.0} m from {} sightings",
            sophisticated[0], est.position, est.radius_m, est.evidence_count
        );
    }

    let g = sim.garnet();
    println!("\nresults:");
    println!("  detections               {}", detections.lock().len());
    println!("  derived msgs at console  {}", console_count.load(Ordering::Relaxed));
    println!("  control deliveries       {}", sim.control_delivery_count());
    println!("  actuation acks received  {}", g.actuation().acknowledged_count());
    println!("  duplicates eliminated    {}", g.filtering().duplicate_count());
}
