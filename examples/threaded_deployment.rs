//! Live deployment mode: middleware and receiver feeds on real threads.
//!
//! ```text
//! cargo run --example threaded_deployment
//! ```
//!
//! Experiments run on the deterministic simulator, but a real Garnet
//! installation runs as long-lived processes exchanging messages
//! asynchronously (§3). This example stands up that shape: the
//! middleware owns a bus endpoint on its own thread; two receiver-array
//! threads feed it overlapping frames; an operator thread issues an
//! actuation request mid-run and the middleware's control plan is
//! printed as it would be handed to the transmitter drivers.

use std::sync::atomic::Ordering;
use std::thread;
use std::time::Duration;

use garnet::core::middleware::{ActuationOutcome, Garnet, GarnetConfig};
use garnet::core::pipeline::SharedCountConsumer;
use garnet::net::{ThreadedBus, TopicFilter};
use garnet::radio::geometry::Point;
use garnet::radio::{ReceiverId, Transmitter, TransmitterId};
use garnet::simkit::SimTime;
use garnet::wire::{
    ActuationTarget, DataMessage, SensorCommand, SensorId, SequenceNumber, StreamId, StreamIndex,
};

/// Messages addressed to the middleware endpoint.
enum ToGarnet {
    Frame { receiver: u32, rssi: f64, bytes: Vec<u8>, at_us: u64 },
    Actuate { interval_ms: u32, at_us: u64 },
    Shutdown,
}

fn main() {
    println!("Threaded deployment — Garnet behind the asynchronous bus\n");

    let bus: ThreadedBus<ToGarnet> = ThreadedBus::new();
    let inbox = bus.register("garnet", 4096).unwrap();

    // The middleware thread.
    let (consumer, delivered) = SharedCountConsumer::new("dashboard");
    let middleware = thread::spawn(move || {
        let transmitters = vec![Transmitter::new(TransmitterId::new(0), Point::ORIGIN, 200.0)];
        let mut garnet = Garnet::new(GarnetConfig { transmitters, ..GarnetConfig::default() });
        let token = garnet.issue_default_token("dashboard");
        let id = garnet.register_consumer(Box::new(consumer), &token, 3).unwrap();
        garnet.subscribe(id, TopicFilter::All, &token).unwrap();

        let mut control_plans = 0u64;
        while let Ok(msg) = inbox.recv() {
            match msg {
                ToGarnet::Frame { receiver, rssi, bytes, at_us } => {
                    let out = garnet.on_frame(
                        ReceiverId::new(receiver),
                        rssi,
                        &bytes,
                        SimTime::from_micros(at_us),
                    );
                    control_plans += out.control.len() as u64;
                }
                ToGarnet::Actuate { interval_ms, at_us } => {
                    let outcome = garnet
                        .request_actuation(
                            id,
                            &token,
                            ActuationTarget::Sensor(SensorId::new(7).unwrap()),
                            SensorCommand::SetReportInterval {
                                stream: StreamIndex::new(0),
                                interval_ms,
                            },
                            SimTime::from_micros(at_us),
                        )
                        .expect("authorized");
                    if let ActuationOutcome::Granted { request_id, plan } = outcome {
                        control_plans += 1;
                        println!(
                            "  middleware: actuation {request_id} approved → {} transmitter(s){}",
                            plan.transmitters.len(),
                            if plan.flooded { " (flood)" } else { "" }
                        );
                    }
                }
                ToGarnet::Shutdown => break,
            }
        }
        (garnet.filtering().delivered_count(), garnet.filtering().duplicate_count(), control_plans)
    });

    // Two receiver-array threads feeding overlapping copies.
    let stream = StreamId::new(SensorId::new(7).unwrap(), StreamIndex::new(0));
    let feeders: Vec<_> = (0..2u32)
        .map(|rx| {
            let bus = bus.clone();
            thread::spawn(move || {
                for seq in 0..200u16 {
                    let bytes = DataMessage::builder(stream)
                        .seq(SequenceNumber::new(seq))
                        .payload(
                            garnet::radio::Reading::new(
                                20.0 + f64::from(seq) * 0.01,
                                SimTime::from_millis(u64::from(seq) * 50),
                            )
                            .encode(),
                        )
                        .build()
                        .unwrap()
                        .encode_to_vec();
                    bus.send_blocking(
                        "garnet",
                        ToGarnet::Frame {
                            receiver: rx,
                            rssi: -48.0 - f64::from(rx) * 6.0,
                            bytes,
                            at_us: u64::from(seq) * 50_000,
                        },
                    )
                    .expect("middleware endpoint lives for the run");
                    if seq % 50 == 0 {
                        thread::sleep(Duration::from_millis(1));
                    }
                }
            })
        })
        .collect();

    // The operator: asks for a faster rate partway through.
    let operator = {
        let bus = bus.clone();
        thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            bus.send_blocking("garnet", ToGarnet::Actuate { interval_ms: 250, at_us: 5_000_000 })
                .expect("middleware endpoint lives for the run");
        })
    };

    for f in feeders {
        f.join().unwrap();
    }
    operator.join().unwrap();
    thread::sleep(Duration::from_millis(50));
    bus.send("garnet", ToGarnet::Shutdown).unwrap();
    let (unique, duplicates, plans) = middleware.join().unwrap();

    println!("\nresults:");
    println!("  frames fed            400 (200 × 2 overlapping receivers)");
    println!("  unique delivered      {unique}");
    println!("  duplicates absorbed   {duplicates}");
    println!("  dashboard received    {}", delivered.load(Ordering::Relaxed));
    println!("  control plans issued  {plans}");
    assert_eq!(unique + duplicates, 400);
}
