//! Scale: hundreds of sensors and dozens of mutually-unaware consumers
//! through one middleware instance, with conservation laws checked at
//! the end.

use std::sync::atomic::Ordering;

use garnet::core::middleware::GarnetConfig;
use garnet::core::pipeline::{PipelineConfig, PipelineSim, SharedCountConsumer};
use garnet::net::TopicFilter;
use garnet::radio::field::Gradient;
use garnet::radio::geometry::Point;
use garnet::radio::{Medium, Propagation, Receiver, SensorNode, StreamConfig, Transmitter};
use garnet::simkit::{SimDuration, SimRng, SimTime};
use garnet::wire::{SensorId, StreamIndex};

const SENSORS: u32 = 400;
const CONSUMERS: u32 = 64;

#[test]
fn four_hundred_sensors_sixty_four_consumers() {
    // A 1 km² field with a 5×5 receiver grid.
    let receivers = Receiver::grid(Point::ORIGIN, 5, 5, 250.0, 300.0);
    let transmitters = Transmitter::grid(Point::ORIGIN, 5, 5, 250.0, 300.0);
    let config = PipelineConfig {
        seed: 2026,
        medium: Medium::ideal(Propagation::UnitDisk { range_m: 300.0 }),
        garnet: GarnetConfig { receivers, transmitters, ..GarnetConfig::default() },
        peer_range_m: None,
    };
    let mut sim = PipelineSim::new(config, Box::new(Gradient { base: 10.0, gx: 0.002, gy: 0.001 }));

    let mut rng = SimRng::seed(9).fork("placement");
    for i in 0..SENSORS {
        let pos = Point::new(rng.next_f64() * 1_000.0, rng.next_f64() * 1_000.0);
        sim.add_sensor(
            SensorNode::new(SensorId::new(i + 1).unwrap(), pos)
                .with_stream(StreamIndex::new(0), StreamConfig::every(SimDuration::from_secs(10))),
        );
    }

    // 63 consumers watch disjoint sensor slices; one watches everything.
    let token = sim.garnet_mut().issue_default_token("fleet");
    let mut slices = Vec::new();
    for c in 0..CONSUMERS - 1 {
        let (consumer, count) = SharedCountConsumer::new(format!("slice-{c}"));
        let id = sim.garnet_mut().register_consumer(Box::new(consumer), &token, 0).unwrap();
        for s in 0..SENSORS {
            if s % (CONSUMERS - 1) == c {
                sim.garnet_mut()
                    .subscribe(id, TopicFilter::Sensor(SensorId::new(s + 1).unwrap()), &token)
                    .unwrap();
            }
        }
        slices.push(count);
    }
    let (wiretap, tap_count) = SharedCountConsumer::new("wiretap");
    let tap_id = sim.garnet_mut().register_consumer(Box::new(wiretap), &token, 0).unwrap();
    sim.garnet_mut().subscribe(tap_id, TopicFilter::All, &token).unwrap();

    sim.run_until(SimTime::from_secs(120));
    // Drain the final round's in-flight receptions.
    sim.run_until(SimTime::from_millis(120_100));

    let g = sim.garnet();
    let unique = g.filtering().delivered_count();
    let tap = tap_count.load(Ordering::Relaxed);
    let slices_total: u64 = slices.iter().map(|c| c.load(Ordering::Relaxed)).sum();

    // Conservation laws:
    // 1. Every unique message reaches the wiretap exactly once.
    assert_eq!(tap, unique);
    // 2. Slices partition the sensor space: together they also see every
    //    unique message exactly once.
    assert_eq!(slices_total, unique);
    // 3. Dispatch accounting matches: each message → its slice + the tap.
    assert_eq!(g.dispatching().delivery_count(), unique * 2);
    // 4. Nothing is unclaimed (the wiretap claims all).
    assert_eq!(g.dispatching().unclaimed_count(), 0);
    assert_eq!(g.orphanage().total_taken(), 0);
    // 5. Every reception is accounted for.
    assert_eq!(unique + g.filtering().duplicate_count(), sim.reception_count());

    // Volume sanity: 400 sensors × 12+ rounds, receivers heard most.
    assert!(unique >= 4_400, "unique={unique}");
    assert_eq!(g.streams().len(), SENSORS as usize);
    assert_eq!(g.dispatching().subscriber_count(), CONSUMERS as usize);
}

#[test]
fn scale_run_is_deterministic() {
    let run = || {
        let receivers = Receiver::grid(Point::ORIGIN, 3, 3, 200.0, 250.0);
        let config = PipelineConfig {
            seed: 7,
            medium: Medium::wifi_outdoor(),
            garnet: GarnetConfig { receivers, ..GarnetConfig::default() },
            peer_range_m: None,
        };
        let mut sim = PipelineSim::new(config, Box::new(Gradient { base: 0.0, gx: 0.01, gy: 0.0 }));
        let mut rng = SimRng::seed(3).fork("p");
        for i in 0..100u32 {
            let pos = Point::new(rng.next_f64() * 400.0, rng.next_f64() * 400.0);
            sim.add_sensor(
                SensorNode::new(SensorId::new(i + 1).unwrap(), pos).with_stream(
                    StreamIndex::new(0),
                    StreamConfig::every(SimDuration::from_secs(5)),
                ),
            );
        }
        sim.run_until(SimTime::from_secs(60));
        (
            sim.reception_count(),
            sim.garnet().filtering().delivered_count(),
            sim.garnet().filtering().duplicate_count(),
        )
    };
    assert_eq!(run(), run());
}
