//! Cross-crate integration tests: the whole stack exercised through the
//! public facade, as a downstream user would drive it.

use std::sync::atomic::Ordering;

use garnet::core::middleware::{ActuationOutcome, GarnetConfig, StepOutput};
use garnet::core::pipeline::{LatencyProbe, PipelineConfig, PipelineSim, SharedCountConsumer};
use garnet::net::{Capability, CapabilitySet, Principal, TopicFilter};
use garnet::radio::field::Uniform;
use garnet::radio::geometry::Point;
use garnet::radio::{
    Medium, Propagation, Reading, Receiver, SensorCaps, SensorNode, StreamConfig, Transmitter,
};
use garnet::simkit::{SimDuration, SimTime};
use garnet::wire::crypto::PayloadKey;
use garnet::wire::{ActuationTarget, SensorCommand, SensorId, StreamId, StreamIndex};

fn infrastructure() -> (Vec<Receiver>, Vec<Transmitter>) {
    (
        Receiver::grid(Point::ORIGIN, 2, 2, 80.0, 130.0),
        Transmitter::grid(Point::ORIGIN, 2, 2, 80.0, 130.0),
    )
}

fn pipeline() -> PipelineSim {
    let (receivers, transmitters) = infrastructure();
    PipelineSim::new(
        PipelineConfig {
            seed: 99,
            medium: Medium::ideal(Propagation::UnitDisk { range_m: 130.0 }),
            garnet: GarnetConfig { receivers, transmitters, ..GarnetConfig::default() },
            peer_range_m: None,
        },
        Box::new(Uniform(18.0)),
    )
}

fn basic_sensor(id: u32, interval: SimDuration) -> SensorNode {
    SensorNode::new(SensorId::new(id).unwrap(), Point::new(40.0, 40.0))
        .with_stream(StreamIndex::new(0), StreamConfig::every(interval))
}

#[test]
fn readings_flow_from_field_to_consumer() {
    let mut sim = pipeline();
    sim.add_sensor(basic_sensor(1, SimDuration::from_secs(1)));
    let token = sim.garnet_mut().issue_default_token("app");
    let (probe, hist) = LatencyProbe::new("probe");
    let id = sim.garnet_mut().register_consumer(Box::new(probe), &token, 0).unwrap();
    sim.garnet_mut().subscribe(id, TopicFilter::Sensor(SensorId::new(1).unwrap()), &token).unwrap();
    sim.run_until(SimTime::from_secs(30));

    let h = hist.lock();
    assert!(h.count() >= 29, "delivered={}", h.count());
    assert!(h.p99() < 50_000, "p99={}µs", h.p99());
    // Overlapping receivers duplicated; the filter absorbed every copy.
    assert!(sim.garnet().filtering().duplicate_count() > 0);
    assert_eq!(
        sim.garnet().filtering().delivered_count() + sim.garnet().filtering().duplicate_count(),
        sim.reception_count()
    );
}

#[test]
fn actuation_round_trip_with_acknowledgement() {
    let mut sim = pipeline();
    sim.add_sensor(
        basic_sensor(1, SimDuration::from_secs(2)).with_caps(SensorCaps::sophisticated()),
    );
    let token = sim.garnet_mut().issue_default_token("controller");
    let (consumer, count) = SharedCountConsumer::new("controller");
    let id = sim.garnet_mut().register_consumer(Box::new(consumer), &token, 1).unwrap();
    sim.garnet_mut().subscribe(id, TopicFilter::All, &token).unwrap();

    sim.run_until(SimTime::from_secs(10));
    let before = count.load(Ordering::Relaxed);

    let now = sim.now();
    let outcome = sim
        .garnet_mut()
        .request_actuation(
            id,
            &token,
            ActuationTarget::Sensor(SensorId::new(1).unwrap()),
            SensorCommand::SetReportInterval { stream: StreamIndex::new(0), interval_ms: 500 },
            now,
        )
        .unwrap();
    let ActuationOutcome::Granted { plan, .. } = outcome else {
        panic!("resource manager should grant an unconflicted request");
    };
    sim.carry_out(StepOutput { control: vec![plan], ..StepOutput::default() });

    sim.run_until(SimTime::from_secs(30));
    let after = count.load(Ordering::Relaxed) - before;
    assert!(after >= 35, "4x rate for 20s should yield ≥35 messages, got {after}");
    assert_eq!(sim.garnet().actuation().acknowledged_count(), 1);
    assert_eq!(sim.garnet().actuation().in_flight(), 0);
}

#[test]
fn encrypted_stream_is_opaque_to_middleware_but_readable_by_key_holder() {
    use garnet::core::consumer::{Consumer, ConsumerCtx};
    use garnet::core::filtering::Delivery;
    use parking_lot::Mutex;
    use std::sync::Arc;

    struct KeyedReader {
        key: PayloadKey,
        values: Arc<Mutex<Vec<f64>>>,
        undecodable: Arc<Mutex<u64>>,
    }
    impl Consumer for KeyedReader {
        fn name(&self) -> &str {
            "keyed-reader"
        }
        fn on_data(&mut self, d: &Delivery, _ctx: &mut ConsumerCtx) {
            // The payload is opaque without the key…
            if Reading::decode(d.msg.payload()).is_some() {
                *self.undecodable.lock() += 1; // plaintext leaked!
                return;
            }
            // …but opens for the key holder.
            if let Ok(plain) = self.key.open(d.msg.stream(), d.msg.seq(), d.msg.payload()) {
                if let Some(r) = Reading::decode(&plain) {
                    self.values.lock().push(r.value);
                }
            }
        }
    }

    let key = PayloadKey::from_bytes(*b"shared-field-key");
    let mut sim = pipeline();
    let sensor = basic_sensor(5, SimDuration::from_secs(1))
        .with_caps(SensorCaps::sophisticated())
        .with_stream_key(StreamIndex::new(0), key);
    let sensor_idx = sim.add_sensor(sensor);

    // Enable encryption via the actuation path (as an operator would).
    let token = sim.garnet_mut().issue_default_token("reader");
    let values = Arc::new(Mutex::new(Vec::new()));
    let undecodable = Arc::new(Mutex::new(0u64));
    let reader =
        KeyedReader { key, values: Arc::clone(&values), undecodable: Arc::clone(&undecodable) };
    let id = sim.garnet_mut().register_consumer(Box::new(reader), &token, 0).unwrap();
    sim.garnet_mut().subscribe(id, TopicFilter::Sensor(SensorId::new(5).unwrap()), &token).unwrap();

    let now = sim.now();
    let outcome = sim
        .garnet_mut()
        .request_actuation(
            id,
            &token,
            ActuationTarget::Sensor(SensorId::new(5).unwrap()),
            SensorCommand::SetEncryption { stream: StreamIndex::new(0), enabled: true },
            now,
        )
        .unwrap();
    let ActuationOutcome::Granted { plan, .. } = outcome else {
        panic!("encryption toggle should be granted");
    };
    sim.carry_out(StepOutput { control: vec![plan], ..StepOutput::default() });

    sim.run_until(SimTime::from_secs(20));
    let _ = sensor_idx;
    let decrypted = values.lock();
    assert!(!decrypted.is_empty(), "key holder must read encrypted stream");
    assert!(decrypted.iter().all(|&v| (v - 18.0).abs() < 1e-9));
    // Encrypted payloads never decoded as plaintext readings (16/32-byte
    // plaintext lengths become 24/40-byte sealed payloads).
    assert!(decrypted.len() as u64 >= 15, "most post-toggle messages decrypt: {}", decrypted.len());
}

#[test]
fn capability_scoped_tokens_limit_access() {
    let mut sim = pipeline();
    sim.add_sensor(basic_sensor(1, SimDuration::from_secs(1)));
    let garnet = sim.garnet_mut();

    // A subscribe-only principal.
    let token = garnet.auth().issue(
        Principal::new("readonly"),
        CapabilitySet::of(&[Capability::Subscribe]),
        u64::MAX,
    );
    let (consumer, _count) = SharedCountConsumer::new("readonly");
    let id = garnet.register_consumer(Box::new(consumer), &token, 0).unwrap();
    garnet.subscribe(id, TopicFilter::All, &token).unwrap();

    // Actuation and location reads are refused.
    assert!(garnet
        .request_actuation(
            id,
            &token,
            ActuationTarget::Sensor(SensorId::new(1).unwrap()),
            SensorCommand::Ping,
            SimTime::ZERO,
        )
        .is_err());
    assert!(garnet.locate(&token, SensorId::new(1).unwrap(), SimTime::ZERO).is_err());
    assert!(garnet
        .provide_hint(&token, SensorId::new(1).unwrap(), Point::ORIGIN, 1.0, SimTime::ZERO)
        .is_err());
}

#[test]
fn location_inference_improves_during_operation() {
    let mut sim = pipeline();
    let truth = Point::new(55.0, 25.0);
    sim.add_sensor(
        SensorNode::new(SensorId::new(9).unwrap(), truth)
            .with_stream(StreamIndex::new(0), StreamConfig::every(SimDuration::from_secs(1))),
    );
    let token = sim.garnet_mut().issue_default_token("locator");
    sim.run_until(SimTime::from_secs(20));

    let now = sim.now();
    let est = sim
        .garnet()
        .locate(&token, SensorId::new(9).unwrap(), now)
        .unwrap()
        .expect("sightings accumulated");
    // Unit-disk RSSI is a coarse ramp; accuracy within the receiver
    // footprint is what matters.
    assert!(
        est.position.distance_to(truth) < 80.0,
        "estimate {:?} too far from {truth:?}",
        est.position
    );
    assert!(est.evidence_count > 1);
}

#[test]
fn late_subscriber_receives_orphanage_backlog_through_full_stack() {
    let mut sim = pipeline();
    sim.add_sensor(basic_sensor(3, SimDuration::from_secs(1)));
    // Nobody subscribed for 10 s.
    sim.run_until(SimTime::from_secs(10));
    assert!(sim.garnet().orphanage().total_taken() >= 9);

    let token = sim.garnet_mut().issue_default_token("late");
    let (consumer, count) = SharedCountConsumer::new("late");
    let id = sim.garnet_mut().register_consumer(Box::new(consumer), &token, 0).unwrap();
    let stream = StreamId::new(SensorId::new(3).unwrap(), StreamIndex::new(0));
    let now = sim.now();
    let (replayed, _) =
        sim.garnet_mut().subscribe_at(id, TopicFilter::Stream(stream), &token, now).unwrap();
    assert!(replayed >= 9, "replayed={replayed}");
    sim.run_until(SimTime::from_secs(20));
    assert!(count.load(Ordering::Relaxed) >= replayed as u64 + 9);
}
