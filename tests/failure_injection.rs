//! Failure injection: the middleware under dying sensors, roaming out of
//! coverage, corrupted control paths, token expiry, consumer churn and
//! ingest overload.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use garnet::core::consumer::{Consumer, ConsumerCtx};
use garnet::core::filtering::Delivery;
use garnet::core::middleware::{ActuationOutcome, Garnet, GarnetConfig, StepOutput};
use garnet::core::pipeline::{PipelineConfig, PipelineSim, SharedCountConsumer};
use garnet::core::router::{OverloadConfig, OverloadPolicy};
use garnet::core::{DriverKind, FilterConfig};
use garnet::net::{Capability, CapabilitySet, Principal, TopicFilter};
use garnet::radio::field::Uniform;
use garnet::radio::geometry::Point;
use garnet::radio::{
    EnergyModel, Medium, Mobility, Propagation, Receiver, ReceiverId, SensorCaps, SensorNode,
    StreamConfig, Transmitter,
};
use garnet::simkit::{SimDuration, SimTime};
use garnet::wire::{
    ActuationTarget, DataMessage, SensorCommand, SensorId, SequenceNumber, StreamId, StreamIndex,
};

fn pipeline(seed: u64) -> PipelineSim {
    let receivers = Receiver::grid(Point::ORIGIN, 2, 2, 80.0, 120.0);
    let transmitters = Transmitter::grid(Point::ORIGIN, 2, 2, 80.0, 120.0);
    PipelineSim::new(
        PipelineConfig {
            seed,
            medium: Medium::ideal(Propagation::UnitDisk { range_m: 120.0 }),
            garnet: GarnetConfig { receivers, transmitters, ..GarnetConfig::default() },
            peer_range_m: None,
        },
        Box::new(Uniform(4.0)),
    )
}

#[test]
fn battery_death_silences_stream_without_breaking_others() {
    let mut sim = pipeline(1);
    let model = EnergyModel::microsensor();
    // Frame = 9 hdr + 16 reading + 2 crc = 27 bytes; budget for ~5 frames.
    let budget = model.tx_cost_nj(27) * 5;
    sim.add_sensor(
        SensorNode::new(SensorId::new(1).unwrap(), Point::new(40.0, 40.0))
            .with_stream(StreamIndex::new(0), StreamConfig::every(SimDuration::from_secs(1)))
            .with_energy_budget_nj(budget),
    );
    sim.add_sensor(
        SensorNode::new(SensorId::new(2).unwrap(), Point::new(50.0, 40.0))
            .with_stream(StreamIndex::new(0), StreamConfig::every(SimDuration::from_secs(1))),
    );
    let token = sim.garnet_mut().issue_default_token("t");
    let (c1, n1) = SharedCountConsumer::new("watch-1");
    let (c2, n2) = SharedCountConsumer::new("watch-2");
    let id1 = sim.garnet_mut().register_consumer(Box::new(c1), &token, 0).unwrap();
    let id2 = sim.garnet_mut().register_consumer(Box::new(c2), &token, 0).unwrap();
    sim.garnet_mut()
        .subscribe(id1, TopicFilter::Sensor(SensorId::new(1).unwrap()), &token)
        .unwrap();
    sim.garnet_mut()
        .subscribe(id2, TopicFilter::Sensor(SensorId::new(2).unwrap()), &token)
        .unwrap();

    sim.run_until(SimTime::from_secs(30));
    let dead = n1.load(Ordering::Relaxed);
    let alive = n2.load(Ordering::Relaxed);
    assert_eq!(dead, 5, "sensor 1 died after its budget");
    assert!(alive >= 29, "sensor 2 unaffected: {alive}");
    assert!(sim.sensors()[0].meter().is_exhausted());
    // The dead stream's catalogue entry records its short life.
    let stream = garnet::wire::StreamId::new(SensorId::new(1).unwrap(), StreamIndex::new(0));
    assert_eq!(sim.garnet().streams().info(stream).unwrap().messages, 5);
}

#[test]
fn roaming_out_of_coverage_and_back_resumes_stream() {
    let mut sim = pipeline(2);
    // Walk from inside coverage to 1 km away and back over 120 s.
    let track = Mobility::Waypoints(vec![
        (0, Point::new(40.0, 40.0)),
        (40_000_000, Point::new(1_000.0, 40.0)),
        (80_000_000, Point::new(1_000.0, 40.0)),
        (120_000_000, Point::new(40.0, 40.0)),
    ]);
    sim.add_sensor(
        SensorNode::new(SensorId::new(1).unwrap(), Point::ORIGIN)
            .with_mobility(track)
            .with_stream(StreamIndex::new(0), StreamConfig::every(SimDuration::from_secs(1))),
    );
    let token = sim.garnet_mut().issue_default_token("t");
    let (c, n) = SharedCountConsumer::new("c");
    let id = sim.garnet_mut().register_consumer(Box::new(c), &token, 0).unwrap();
    sim.garnet_mut().subscribe(id, TopicFilter::All, &token).unwrap();

    sim.run_until(SimTime::from_secs(10));
    let early = n.load(Ordering::Relaxed);
    assert!(early >= 5, "in coverage at the start: {early}");

    sim.run_until(SimTime::from_secs(80));
    let mid = n.load(Ordering::Relaxed);

    sim.run_until(SimTime::from_secs(125));
    let late = n.load(Ordering::Relaxed);
    assert!(late > mid, "stream resumes on return: {mid} → {late}");
    // The filtering service saw the gap as loss, not corruption.
    assert_eq!(sim.garnet().filtering().crc_failure_count(), 0);
    assert!(sim.transmission_count() > sim.reception_count() / 4, "messages were lost in the hole");
}

#[test]
fn actuation_to_unreachable_sensor_times_out_cleanly() {
    let mut sim = pipeline(3);
    // A sophisticated sensor far outside every transmitter's range.
    sim.add_sensor(
        SensorNode::new(SensorId::new(1).unwrap(), Point::new(5_000.0, 0.0))
            .with_caps(SensorCaps::sophisticated())
            .with_stream(StreamIndex::new(0), StreamConfig::every(SimDuration::from_secs(1))),
    );
    let token = sim.garnet_mut().issue_default_token("t");
    let (c, _n) = SharedCountConsumer::new("c");
    let id = sim.garnet_mut().register_consumer(Box::new(c), &token, 0).unwrap();
    let now = sim.now();
    let outcome = sim
        .garnet_mut()
        .request_actuation(
            id,
            &token,
            ActuationTarget::Sensor(SensorId::new(1).unwrap()),
            SensorCommand::Ping,
            now,
        )
        .unwrap();
    let ActuationOutcome::Granted { plan, .. } = outcome else {
        panic!("grant expected");
    };
    assert!(plan.flooded, "no location fix for a silent far sensor");
    sim.carry_out(StepOutput { control: vec![plan], ..StepOutput::default() });

    // Default actuation config: 5 s timeout, 2 retries, exponential
    // backoff → deadlines at 5 s, 15 s, 35 s.
    sim.run_until(SimTime::from_secs(40));
    assert_eq!(sim.garnet().actuation().in_flight(), 0, "request fully expired");
    assert_eq!(sim.garnet().actuation().timeout_count(), 1);
    assert_eq!(sim.garnet().actuation().acknowledged_count(), 0);
    assert_eq!(sim.garnet().actuation().retransmission_count(), 2);
    assert_eq!(sim.control_delivery_count(), 0, "nothing ever reached the sensor");
}

#[test]
fn expired_token_is_refused_everywhere() {
    let mut sim = pipeline(4);
    let garnet = sim.garnet_mut();
    let token = garnet.auth().issue(
        Principal::new("short-lived"),
        CapabilitySet::all(),
        1_000_000, // expires at t = 1 s
    );
    let (c, _n) = SharedCountConsumer::new("c");
    let id = garnet.register_consumer(Box::new(c), &token, 0).unwrap();
    // Valid before expiry…
    garnet.subscribe_at(id, TopicFilter::All, &token, SimTime::ZERO).unwrap();
    // …refused after.
    let later = SimTime::from_secs(2);
    assert!(garnet.subscribe_at(id, TopicFilter::All, &token, later).is_err());
    assert!(garnet
        .request_actuation(
            id,
            &token,
            ActuationTarget::Sensor(SensorId::new(1).unwrap()),
            SensorCommand::Ping,
            later,
        )
        .is_err());
    assert!(garnet.locate(&token, SensorId::new(1).unwrap(), later).is_err());
    assert!(matches!(
        garnet.provide_hint(&token, SensorId::new(1).unwrap(), Point::ORIGIN, 1.0, later),
        Err(garnet::core::middleware::GarnetError::NotAuthorized {
            needed: Capability::ProvideHints
        })
    ));
}

#[test]
fn consumer_churn_releases_resources_and_reroutes_data() {
    let mut sim = pipeline(5);
    sim.add_sensor(
        SensorNode::new(SensorId::new(1).unwrap(), Point::new(40.0, 40.0))
            .with_caps(SensorCaps::sophisticated())
            .with_stream(StreamIndex::new(0), StreamConfig::every(SimDuration::from_secs(1))),
    );
    let token = sim.garnet_mut().issue_default_token("t");

    // First consumer demands a fast rate, then leaves.
    let (c1, _n1) = SharedCountConsumer::new("c1");
    let id1 = sim.garnet_mut().register_consumer(Box::new(c1), &token, 0).unwrap();
    sim.garnet_mut().subscribe(id1, TopicFilter::All, &token).unwrap();
    let now = sim.now();
    let _ = sim
        .garnet_mut()
        .request_actuation(
            id1,
            &token,
            ActuationTarget::Sensor(SensorId::new(1).unwrap()),
            SensorCommand::SetReportInterval { stream: StreamIndex::new(0), interval_ms: 200 },
            now,
        )
        .unwrap();
    assert_eq!(
        sim.garnet()
            .resource()
            .effective_interval_ms(SensorId::new(1).unwrap(), StreamIndex::new(0)),
        Some(200)
    );
    sim.garnet_mut().deregister_consumer(id1).unwrap();
    // The departing consumer's demand is released.
    assert_eq!(
        sim.garnet()
            .resource()
            .effective_interval_ms(SensorId::new(1).unwrap(), StreamIndex::new(0)),
        None
    );

    // Its data now orphans until a second consumer claims it.
    sim.run_until(SimTime::from_secs(5));
    assert!(sim.garnet().orphanage().total_taken() > 0);
    let (c2, n2) = SharedCountConsumer::new("c2");
    let id2 = sim.garnet_mut().register_consumer(Box::new(c2), &token, 0).unwrap();
    let now = sim.now();
    let (replayed, _) = sim
        .garnet_mut()
        .subscribe_at(
            id2,
            TopicFilter::Stream(garnet::wire::StreamId::new(
                SensorId::new(1).unwrap(),
                StreamIndex::new(0),
            )),
            &token,
            now,
        )
        .unwrap();
    assert!(replayed > 0);
    sim.run_until(SimTime::from_secs(10));
    assert!(n2.load(Ordering::Relaxed) > replayed as u64);
}

/// One recorded delivery: (raw stream id, sequence, payload bytes).
type DeliveryRecord = (u32, u16, Vec<u8>);
type DeliveryLog = Arc<Mutex<Vec<DeliveryRecord>>>;

/// Consumer that records each delivery's identity, so two runs can be
/// compared message-for-message.
struct RecordingConsumer {
    log: DeliveryLog,
}

impl Consumer for RecordingConsumer {
    fn name(&self) -> &str {
        "recorder"
    }
    fn on_data(&mut self, d: &Delivery, _ctx: &mut ConsumerCtx) {
        self.log.lock().unwrap().push((
            d.msg.stream().to_raw(),
            d.msg.seq().as_u16(),
            d.msg.payload().to_vec(),
        ));
    }
}

/// Runs a 10x-capacity burst (4 streams x 20 sequences = 80 frames)
/// through a facade configured with `overload`, returning the recorded
/// deliveries and the admission ledger for the burst.
fn burst_run(
    overload: Option<OverloadConfig>,
) -> (Vec<DeliveryRecord>, garnet::core::middleware::OverloadStats) {
    burst_run_batched(overload, usize::MAX)
}

/// [`burst_run`], with the burst split into `on_frames` batches of
/// `batch` frames each (`usize::MAX` = the whole burst in one call).
fn burst_run_batched(
    overload: Option<OverloadConfig>,
    batch: usize,
) -> (Vec<DeliveryRecord>, garnet::core::middleware::OverloadStats) {
    let mut g = Garnet::new(GarnetConfig { overload, ..GarnetConfig::default() });
    let token = g.issue_default_token("recorder");
    let log = Arc::new(Mutex::new(Vec::new()));
    let id = g
        .register_consumer(Box::new(RecordingConsumer { log: Arc::clone(&log) }), &token, 0)
        .unwrap();
    g.subscribe(id, TopicFilter::All, &token).unwrap();

    let mut frames = Vec::new();
    for seq in 0..20u16 {
        for sensor in 1..=4u32 {
            let stream = StreamId::new(SensorId::new(sensor).unwrap(), StreamIndex::new(0));
            let bytes = DataMessage::builder(stream)
                .seq(SequenceNumber::new(seq))
                .payload(vec![sensor as u8, seq as u8])
                .build()
                .unwrap()
                .encode_to_vec();
            frames.push((ReceiverId::new(0), -50.0, bytes));
        }
    }
    let mut total = StepOutput::default();
    let chunk = batch.min(frames.len()).max(1);
    for (i, frames) in frames.chunks(chunk).enumerate() {
        total.merge(g.on_frames(frames.to_vec(), SimTime::from_millis(1 + i as u64)));
    }
    // Flush the reorder buffer: shedding leaves per-stream gaps that
    // otherwise hold deliveries back past their reorder deadline.
    g.on_tick(SimTime::from_secs(1));
    let recorded = log.lock().unwrap().clone();
    (recorded, total.overload)
}

/// Runs `f` with the default panic hook silenced, so an *injected*
/// worker panic doesn't spray a backtrace into the test output.
fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(hook);
    out
}

#[test]
fn poisoned_shard_restart_during_batched_ingest_keeps_the_ledger_exact() {
    // A poison frame that panics its filtering worker mid-run must not
    // unbalance the per-frame admission ledger. The burst is ordered
    // sensor-major so each sensor's 20 frames are consecutive, map to
    // one ingest shard and ride the batched `FilterJob::Frames` path as
    // a single multi-frame run; the poisoned run dies with its worker,
    // the supervisor restarts the shard, and every offered frame is
    // still accounted as shed or delivered.
    const POISON: [u8; 4] = [0xDE, 0xAD, 0xBE, 0xEF];
    // Sensors chosen to land on four *distinct* ingest shards (2 and 3
    // collide under `shard_of_sensor`, which would merge their runs),
    // so the blast radius of the poisoned run is exactly one sensor.
    const SENSORS: [u32; 4] = [1, 2, 4, 6];
    let (recorded, out) = with_quiet_panics(|| {
        let mut g = Garnet::new(GarnetConfig {
            driver: DriverKind::Threaded,
            ingest_shards: 4,
            batch_ingest: true,
            filter: FilterConfig { fail_marker: Some(POISON), ..FilterConfig::default() },
            ..GarnetConfig::default()
        });
        let token = g.issue_default_token("recorder");
        let log = Arc::new(Mutex::new(Vec::new()));
        let id = g
            .register_consumer(Box::new(RecordingConsumer { log: Arc::clone(&log) }), &token, 0)
            .unwrap();
        g.subscribe(id, TopicFilter::All, &token).unwrap();

        let mut frames = Vec::new();
        for sensor in SENSORS {
            for seq in 0..20u16 {
                let stream = StreamId::new(SensorId::new(sensor).unwrap(), StreamIndex::new(0));
                let payload = if sensor == 2 && seq == 7 {
                    POISON.to_vec()
                } else {
                    vec![sensor as u8, seq as u8]
                };
                let bytes = DataMessage::builder(stream)
                    .seq(SequenceNumber::new(seq))
                    .payload(payload)
                    .build()
                    .unwrap()
                    .encode_to_vec();
                frames.push((ReceiverId::new(0), -50.0, bytes));
            }
        }
        let mut out = g.on_frames(frames, SimTime::from_millis(1));
        // Supervision applies a wall-clock backoff (10 ms by default)
        // before rebuilding a poisoned shard, and only acts at pool
        // entry points — keep ticking until the restart is performed.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let mut tick = 0u64;
        loop {
            tick += 1;
            out.merge(g.on_tick(SimTime::from_secs(tick)));
            if out.overload.shard_restarts >= 1 {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "poisoned shard never restarted");
            std::thread::sleep(std::time::Duration::from_millis(15));
        }
        let recorded = log.lock().unwrap().clone();
        (recorded, out)
    });

    // The ledger stays in frames even though a whole run died with its
    // worker: offered counts all 80 and balances against shed+delivered
    // (the lost run's frames were popped from admission — the loss is
    // downstream of the ledger and reported via `shard_failures`).
    assert_eq!(out.overload.offered, 80);
    assert_eq!(out.overload.shed + out.overload.delivered, out.overload.offered);
    // The supervisor saw the injected fault and restarted the shard.
    assert!(!out.shard_failures.is_empty(), "the injected fault must surface");
    assert!(
        out.shard_failures.iter().any(|f| f.reason.contains("injected filter fault")),
        "failure reason must carry the injected panic: {:?}",
        out.shard_failures
    );
    assert!(out.overload.shard_restarts >= 1, "the poisoned shard must restart");
    // The blast radius is one run: the other sensors' runs — including
    // later jobs on the restarted shard — deliver in full.
    for sensor in [1u32, 4, 6] {
        let raw = StreamId::new(SensorId::new(sensor).unwrap(), StreamIndex::new(0)).to_raw();
        let n = recorded.iter().filter(|(s, _, _)| *s == raw).count();
        assert_eq!(n, 20, "sensor {sensor} must be untouched by the poisoned shard");
    }
    let poisoned = StreamId::new(SensorId::new(2).unwrap(), StreamIndex::new(0)).to_raw();
    let survivors = recorded.iter().filter(|(s, _, _)| *s == poisoned).count();
    assert!(survivors < 20, "the poisoned run must lose frames, got {survivors}");
}

#[test]
fn burst_overload_policies_bound_the_queue_and_balance_the_ledger() {
    const CAPACITY: usize = 8;
    let (unbounded, base) = burst_run(None);
    assert_eq!(unbounded.len(), 80, "unbounded run delivers the whole burst");
    assert_eq!(base.offered, 80);
    assert_eq!(base.shed, 0);

    for policy in [OverloadPolicy::Shed, OverloadPolicy::CoalesceFrames, OverloadPolicy::Block] {
        let (recorded, stats) = burst_run(Some(OverloadConfig { capacity: CAPACITY, policy }));
        // The ledger balances: every offered frame was either admitted
        // to the queue (and later delivered) or accounted as shed.
        assert_eq!(stats.offered, 80, "{policy:?}");
        assert_eq!(stats.shed + stats.delivered, stats.offered, "{policy:?}");
        // The queue never grew past its bound.
        assert!(
            stats.peak_queue_depth <= CAPACITY as u64,
            "{policy:?}: peak depth {} exceeds capacity {CAPACITY}",
            stats.peak_queue_depth
        );
        // Frames that were not shed come out bit-identical to the
        // unbounded run's copies of the same messages.
        for entry in &recorded {
            assert!(
                unbounded.contains(entry),
                "{policy:?}: delivery {entry:?} not byte-identical to any unbounded delivery"
            );
        }
        match policy {
            OverloadPolicy::Block => {
                // Admission stalls (draining one event) instead of
                // dropping: the full burst flows through untouched.
                assert_eq!(stats.shed, 0);
                assert_eq!(recorded, unbounded, "Block must not reorder or drop anything");
            }
            OverloadPolicy::Shed => {
                // 8 admitted outright, every later admission sheds the
                // oldest queued frame: exactly capacity frames survive.
                assert_eq!(stats.delivered, CAPACITY as u64);
                assert_eq!(stats.shed, 80 - CAPACITY as u64);
            }
            OverloadPolicy::CoalesceFrames => {
                assert_eq!(stats.coalesced, stats.shed, "every drop found a same-stream victim");
                // The newest sequence of every stream survives the
                // coalescing and reaches the consumer.
                for sensor in 1..=4u32 {
                    let raw =
                        StreamId::new(SensorId::new(sensor).unwrap(), StreamIndex::new(0)).to_raw();
                    let newest =
                        recorded.iter().filter(|(s, _, _)| *s == raw).map(|(_, q, _)| *q).max();
                    assert_eq!(newest, Some(19), "stream {sensor} lost its newest frame");
                }
            }
        }
    }
}

#[test]
fn batched_admission_ledger_counts_individual_frames_at_batch_boundaries() {
    // Splitting the burst into `on_frames` batches that straddle the
    // capacity boundary — sub-capacity (3), exact fit (8), mid-batch
    // overflow (13) and the whole burst at once — must keep the ledger
    // in frames, not batches: `offered` counts every frame and
    // `offered == shed + delivered` balances under every policy.
    const CAPACITY: usize = 8;
    for policy in [OverloadPolicy::Shed, OverloadPolicy::CoalesceFrames, OverloadPolicy::Block] {
        for batch in [3usize, 8, 13, usize::MAX] {
            let (recorded, stats) =
                burst_run_batched(Some(OverloadConfig { capacity: CAPACITY, policy }), batch);
            assert_eq!(stats.offered, 80, "{policy:?} batch={batch}: offered counts frames");
            assert_eq!(
                stats.shed + stats.delivered,
                stats.offered,
                "{policy:?} batch={batch}: ledger must balance"
            );
            assert!(
                stats.peak_queue_depth <= CAPACITY as u64,
                "{policy:?} batch={batch}: peak depth {} exceeds capacity",
                stats.peak_queue_depth
            );
            // Every delivery corresponds to a frame the ledger says
            // survived admission.
            assert!(
                (recorded.len() as u64) <= stats.delivered,
                "{policy:?} batch={batch}: more deliveries than admitted frames"
            );
            if policy == OverloadPolicy::Block {
                // Block never sheds, whatever the batching: admission
                // drains the queue frame by frame to make room.
                assert_eq!(stats.shed, 0, "batch={batch}");
                assert_eq!(recorded.len(), 80, "batch={batch}: the full burst flows through");
            }
            // A batch no larger than capacity can never overflow the
            // queue: the facade pumps to quiescence between calls.
            if batch <= CAPACITY {
                assert_eq!(stats.shed, 0, "{policy:?} batch={batch}: sub-capacity batches fit");
            }
        }
    }
}
