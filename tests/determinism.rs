//! Whole-stack determinism: identical seeds reproduce identical runs
//! bit-for-bit, different seeds diverge. This property underwrites every
//! number in EXPERIMENTS.md.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use garnet::core::consumer::{Consumer, ConsumerCtx};
use garnet::core::filtering::Delivery;
use garnet::core::middleware::{Garnet, GarnetConfig};
use garnet::core::pipeline::{PipelineConfig, PipelineSim, SharedCountConsumer};
use garnet::core::{DriverKind, QosConfig, QosMode};
use garnet::net::TopicFilter;
use garnet::radio::field::GaussianPlume;
use garnet::radio::geometry::{Point, Rect};
use garnet::radio::{
    Medium, Mobility, Receiver, ReceiverId, SensorCaps, SensorNode, StreamConfig, Transmitter,
};
use garnet::simkit::{SimDuration, SimRng, SimTime};
use garnet::wire::{DataMessage, SensorId, SequenceNumber, StreamId, StreamIndex};

use proptest::prelude::*;

/// A fingerprint of everything observable about a run.
#[derive(Debug, PartialEq, Eq)]
struct RunFingerprint {
    transmissions: u64,
    receptions: u64,
    delivered: u64,
    duplicates: u64,
    crc_failures: u64,
    consumer_count: u64,
    orphaned: u64,
    metrics_report: String,
}

fn run(seed: u64) -> RunFingerprint {
    run_sharded(seed, 1, 1)
}

fn run_sharded(seed: u64, ingest_shards: usize, dispatch_shards: usize) -> RunFingerprint {
    // `driver` comes from `GarnetConfig::default()`, which honours the
    // `GARNET_TEST_DRIVER` env toggle — ci.sh reruns this whole suite in
    // threaded mode through it.
    run_config(seed, GarnetConfig { ingest_shards, dispatch_shards, ..GarnetConfig::default() })
}

fn run_driver(
    seed: u64,
    driver: DriverKind,
    ingest_shards: usize,
    dispatch_shards: usize,
) -> RunFingerprint {
    run_config(
        seed,
        GarnetConfig { driver, ingest_shards, dispatch_shards, ..GarnetConfig::default() },
    )
}

fn run_config(seed: u64, garnet: GarnetConfig) -> RunFingerprint {
    let receivers = Receiver::grid(Point::ORIGIN, 3, 3, 100.0, 180.0);
    let transmitters = Transmitter::grid(Point::ORIGIN, 3, 3, 100.0, 180.0);
    let mut medium = Medium::wifi_outdoor();
    medium.bit_flip_prob = 0.01; // exercise CRC rejection too
    let config = PipelineConfig {
        seed,
        medium,
        garnet: GarnetConfig { receivers, transmitters, ..garnet },
        peer_range_m: None,
    };
    let field = GaussianPlume {
        origin: Point::new(-50.0, 100.0),
        velocity: (1.5, 0.0),
        amplitude: 40.0,
        sigma_m: 60.0,
        background: 2.0,
    };
    let mut sim = PipelineSim::new(config, Box::new(field));

    let mut placement = SimRng::seed(seed).fork("placement");
    let bounds = Rect::square(200.0);
    for i in 0..12u32 {
        let mobility = if i % 3 == 0 {
            Mobility::random_waypoint(bounds, 1.0, SimTime::from_secs(300), &mut placement)
        } else {
            Mobility::Stationary(Point::new(
                placement.next_f64() * 200.0,
                placement.next_f64() * 200.0,
            ))
        };
        let caps = if i % 4 == 0 { SensorCaps::sophisticated() } else { SensorCaps::simple() };
        sim.add_sensor(
            SensorNode::new(SensorId::new(i + 1).unwrap(), Point::ORIGIN)
                .with_mobility(mobility)
                .with_caps(caps)
                .with_stream(StreamIndex::new(0), StreamConfig::every(SimDuration::from_secs(2))),
        );
    }

    let token = sim.garnet_mut().issue_default_token("app");
    let (consumer, count) = SharedCountConsumer::new("app");
    let id = sim.garnet_mut().register_consumer(Box::new(consumer), &token, 0).unwrap();
    // Subscribe to even sensors only, so odd sensors orphan.
    for s in (2..=12u32).step_by(2) {
        sim.garnet_mut()
            .subscribe(id, TopicFilter::Sensor(SensorId::new(s).unwrap()), &token)
            .unwrap();
    }

    sim.run_until(SimTime::from_secs(120));
    let g = sim.garnet();
    RunFingerprint {
        transmissions: sim.transmission_count(),
        receptions: sim.reception_count(),
        delivered: g.filtering().delivered_count(),
        duplicates: g.filtering().duplicate_count(),
        crc_failures: g.filtering().crc_failure_count(),
        consumer_count: count.load(Ordering::Relaxed),
        orphaned: g.orphanage().total_taken(),
        metrics_report: g.metrics().report(),
    }
}

#[test]
fn same_seed_same_world() {
    let a = run(1234);
    let b = run(1234);
    assert_eq!(a, b);
}

#[test]
fn shard_count_does_not_change_the_world() {
    // Partitioning the ingest and dispatch hot paths must be observably
    // invisible under the simulation driver: every counter and the full
    // metrics report are bit-identical across shard combinations.
    let unsharded = run_sharded(1234, 1, 1);
    for (ingest, dispatch) in [(4, 1), (1, 4), (4, 4), (3, 7)] {
        let sharded = run_sharded(1234, ingest, dispatch);
        assert_eq!(
            unsharded, sharded,
            "ingest_shards={ingest} dispatch_shards={dispatch} diverged"
        );
    }
}

#[test]
fn driver_kind_does_not_change_the_world() {
    // The execution engine is a deployment choice, not a semantic one:
    // the FIFO simulation driver and the hosted threaded graph must
    // agree on every counter and the full metrics report, across every
    // shard combination. This is the facade's bit-identity contract.
    let baseline = run_driver(1234, DriverKind::Fifo, 1, 1);
    for driver in [DriverKind::Fifo, DriverKind::Threaded] {
        for ingest in [1usize, 4] {
            for dispatch in [1usize, 4] {
                if driver == DriverKind::Fifo && ingest == 1 && dispatch == 1 {
                    continue;
                }
                let f = run_driver(1234, driver, ingest, dispatch);
                assert_eq!(
                    baseline, f,
                    "driver={driver:?} ingest={ingest} dispatch={dispatch} diverged"
                );
            }
        }
    }
}

/// Drops the `dispatch.match_cache.*` rows from a metrics report. The
/// cache counters honestly differ between cache-on and cache-off runs
/// (that is their job); every other line must still be bit-identical.
fn strip_cache_rows(report: &str) -> String {
    report.lines().filter(|l| !l.contains("match_cache")).collect::<Vec<_>>().join("\n")
}

#[test]
fn match_cache_toggle_does_not_change_the_world() {
    // The dispatch match cache is a performance artefact, not a semantic
    // one: disabling it must reproduce the cached run bit-for-bit on
    // every observable except the cache's own counters, across the
    // driver × shard matrix.
    let baseline = run_config(1234, GarnetConfig::default());
    for driver in [DriverKind::Fifo, DriverKind::Threaded] {
        for (ingest, dispatch) in [(1usize, 1usize), (4, 1), (1, 4), (4, 4)] {
            let f = run_config(
                1234,
                GarnetConfig {
                    driver,
                    ingest_shards: ingest,
                    dispatch_shards: dispatch,
                    dispatch_cache: garnet::net::DispatchCacheConfig::disabled(),
                    ..GarnetConfig::default()
                },
            );
            let ctx = format!("driver={driver:?} ingest={ingest} dispatch={dispatch}");
            assert_eq!(
                (
                    baseline.transmissions,
                    baseline.receptions,
                    baseline.delivered,
                    baseline.duplicates,
                    baseline.crc_failures,
                    baseline.consumer_count,
                    baseline.orphaned,
                ),
                (
                    f.transmissions,
                    f.receptions,
                    f.delivered,
                    f.duplicates,
                    f.crc_failures,
                    f.consumer_count,
                    f.orphaned,
                ),
                "cache-off counters diverged ({ctx})"
            );
            assert_eq!(
                strip_cache_rows(&baseline.metrics_report),
                strip_cache_rows(&f.metrics_report),
                "cache-off metrics diverged ({ctx})"
            );
        }
    }
}

#[test]
fn batch_ingest_does_not_change_the_world() {
    // Batched admission and pumping is an execution strategy, not a
    // semantic one: with `batch_ingest` forced on, every driver × shard
    // combination reproduces the per-frame run bit-for-bit — counters,
    // consumer deliveries and the full metrics report.
    let baseline =
        run_config(1234, GarnetConfig { batch_ingest: false, ..GarnetConfig::default() });
    for driver in [DriverKind::Fifo, DriverKind::Threaded] {
        for ingest in [1usize, 4] {
            for dispatch in [1usize, 4] {
                let f = run_config(
                    1234,
                    GarnetConfig {
                        driver,
                        ingest_shards: ingest,
                        dispatch_shards: dispatch,
                        batch_ingest: true,
                        ..GarnetConfig::default()
                    },
                );
                assert_eq!(
                    baseline, f,
                    "batched driver={driver:?} ingest={ingest} dispatch={dispatch} diverged \
                     from the per-frame baseline"
                );
            }
        }
    }
}

/// The byte-exact facade delivery log: (raw stream, seq, payload).
type FacadeLog = Vec<(u32, u16, Vec<u8>)>;

struct RecordingConsumer {
    log: Arc<Mutex<FacadeLog>>,
}

impl Consumer for RecordingConsumer {
    fn name(&self) -> &str {
        "recorder"
    }
    fn on_data(&mut self, d: &Delivery, _ctx: &mut ConsumerCtx) {
        self.log.lock().unwrap().push((
            d.msg.stream().to_raw(),
            d.msg.seq().as_u16(),
            d.msg.payload().to_vec(),
        ));
    }
}

/// Everything observable about a facade-level replay. `report` includes
/// the admission queue's peak depth, which legitimately depends on how
/// arrivals are chunked into `on_frames` calls — so split-invariance
/// compares `log` + `counters` only, while engine-invariance (same
/// splits, batched vs per-frame machinery) compares all three.
#[derive(Debug, PartialEq, Eq)]
struct FacadeFingerprint {
    log: FacadeLog,
    counters: (u64, u64, u64, u64),
    report: String,
}

/// Feeds `frames` into a fresh facade as `on_frames` batches sized by
/// cycling through `chunks`, flushes, and fingerprints the run. Even
/// sensors are subscribed; odd sensors orphan.
fn facade_replay(frames: &[Vec<u8>], chunks: &[usize], config: GarnetConfig) -> FacadeFingerprint {
    let mut g = Garnet::new(config);
    let token = g.issue_default_token("recorder");
    let log = Arc::new(Mutex::new(Vec::new()));
    let id = g
        .register_consumer(Box::new(RecordingConsumer { log: Arc::clone(&log) }), &token, 0)
        .unwrap();
    for s in (2..=6u32).step_by(2) {
        g.subscribe(id, TopicFilter::Sensor(SensorId::new(s).unwrap()), &token).unwrap();
    }
    let at = SimTime::from_millis(1);
    let (mut i, mut k) = (0usize, 0usize);
    while i < frames.len() {
        let take = chunks[k % chunks.len()].min(frames.len() - i);
        let batch: Vec<_> =
            frames[i..i + take].iter().map(|b| (ReceiverId::new(0), -45.0, b.clone())).collect();
        g.on_frames(batch, at);
        i += take;
        k += 1;
    }
    g.on_tick(SimTime::from_secs(60));
    let f = g.filtering();
    let counters = (
        f.delivered_count(),
        f.duplicate_count(),
        f.crc_failure_count(),
        g.orphanage().total_taken(),
    );
    let report = g.metrics().report();
    let log = log.lock().unwrap().clone();
    FacadeFingerprint { log, counters, report }
}

/// A messy burst over streams 1..=sensors: drops (reorder gaps) and
/// duplicates steered by the masks, interleaved across sensors.
fn burst_schedule(sensors: u32, n: u16, drop_mask: &[u8], dup_mask: &[u8]) -> Vec<Vec<u8>> {
    let mut frames = Vec::new();
    for seq in 0..n {
        for sensor in 1..=sensors {
            let i = (seq as usize + sensor as usize) % drop_mask.len();
            if drop_mask[i] == 0 {
                continue; // dropped in flight
            }
            let copies = 1 + usize::from(dup_mask[i % dup_mask.len()] % 2);
            let stream = StreamId::new(SensorId::new(sensor).unwrap(), StreamIndex::new(0));
            for _ in 0..copies {
                frames.push(
                    DataMessage::builder(stream)
                        .seq(SequenceNumber::new(seq))
                        .payload(vec![seq as u8, sensor as u8])
                        .build()
                        .unwrap()
                        .encode_to_vec(),
                );
            }
        }
    }
    frames
}

proptest! {
    // Batched admission is bit-identical to per-frame admission across
    // the driver × shard matrix and random batch splits: (1) with the
    // same arrival chunking, the batched and per-frame engines agree on
    // the delivery log, every counter and the full metrics report;
    // (2) how a burst is split into `on_frames` batches is invisible to
    // deliveries and counters.
    #[test]
    fn batched_admission_is_bit_identical_to_per_frame(
        sensors in 2u32..6,
        n in 4u16..24,
        drop_mask in proptest::collection::vec(0u8..8, 32),
        dup_mask in proptest::collection::vec(0u8..4, 32),
        chunks in proptest::collection::vec(1usize..17, 1..24),
        driver_idx in 0usize..2,
        ingest in prop_oneof![Just(1usize), Just(4usize)],
        dispatch in prop_oneof![Just(1usize), Just(4usize)],
        cache_on in proptest::bool::ANY,
    ) {
        let frames = burst_schedule(sensors, n, &drop_mask, &dup_mask);
        if frames.is_empty() {
            return; // masks dropped everything; nothing to compare
        }
        let driver = [DriverKind::Fifo, DriverKind::Threaded][driver_idx];
        let dispatch_cache = if cache_on {
            garnet::net::DispatchCacheConfig::default()
        } else {
            garnet::net::DispatchCacheConfig::disabled()
        };
        let cfg = |batch_ingest| GarnetConfig {
            driver,
            ingest_shards: ingest,
            dispatch_shards: dispatch,
            batch_ingest,
            dispatch_cache,
            ..GarnetConfig::default()
        };
        let batched = facade_replay(&frames, &chunks, cfg(true));
        let per_frame = facade_replay(&frames, &chunks, cfg(false));
        prop_assert_eq!(&batched, &per_frame, "engine diverged ({:?} {}x{} cache={})", driver, ingest, dispatch, cache_on);
        let singles = facade_replay(&frames, &[1], cfg(true));
        prop_assert_eq!(&batched.log, &singles.log, "batch splits changed deliveries");
        prop_assert_eq!(batched.counters, singles.counters, "batch splits changed counters");
        // The cache is invisible to deliveries and counters: toggling it
        // off reproduces the same log and books.
        let uncached = facade_replay(&frames, &chunks, GarnetConfig {
            dispatch_cache: garnet::net::DispatchCacheConfig::disabled(),
            ..cfg(true)
        });
        prop_assert_eq!(&batched.log, &uncached.log, "cache toggle changed deliveries");
        prop_assert_eq!(batched.counters, uncached.counters, "cache toggle changed counters");
    }
}

proptest! {
    // The QoS scheduler only arms when an overload config is present,
    // so on the default (unbounded) facade the Scheduled and Legacy
    // modes must be observably indistinguishable — the delivery log,
    // every counter and the full metrics report are bit-identical
    // across {Fifo,Threaded} × ingest {1,4} × dispatch {1,4} ×
    // {batched,per-frame} and random arrival chunking. This is the
    // `GARNET_TEST_QOS=legacy` contract: turning QoS off cannot change
    // a no-overload world.
    #[test]
    fn qos_does_not_change_the_world(
        sensors in 2u32..6,
        n in 4u16..24,
        drop_mask in proptest::collection::vec(0u8..8, 32),
        dup_mask in proptest::collection::vec(0u8..4, 32),
        chunks in proptest::collection::vec(1usize..17, 1..24),
        driver_idx in 0usize..2,
        ingest in prop_oneof![Just(1usize), Just(4usize)],
        dispatch in prop_oneof![Just(1usize), Just(4usize)],
        batch_ingest in proptest::bool::ANY,
    ) {
        let frames = burst_schedule(sensors, n, &drop_mask, &dup_mask);
        if frames.is_empty() {
            return; // masks dropped everything; nothing to compare
        }
        let driver = [DriverKind::Fifo, DriverKind::Threaded][driver_idx];
        let cfg = |mode| GarnetConfig {
            driver,
            ingest_shards: ingest,
            dispatch_shards: dispatch,
            batch_ingest,
            qos: QosConfig { mode, ..QosConfig::default() },
            ..GarnetConfig::default()
        };
        let scheduled = facade_replay(&frames, &chunks, cfg(QosMode::Scheduled));
        let legacy = facade_replay(&frames, &chunks, cfg(QosMode::Legacy));
        prop_assert_eq!(
            &scheduled,
            &legacy,
            "qos toggle changed an unbounded world ({:?} {}x{} batch={})",
            driver,
            ingest,
            dispatch,
            batch_ingest
        );
    }
}

/// Replays `frames` through a fresh facade (even sensors subscribed, 5-frame
/// `on_frames` batches, a flush tick) and closes one telemetry window at the
/// end, returning the snapshot's JSONL line, its Prometheus exposition, and
/// the final metrics report. With `midrun`, an extra window is emitted
/// between the two halves of the burst — the probe for telemetry being a
/// pure observer.
fn telemetry_replay(
    frames: &[Vec<u8>],
    config: GarnetConfig,
    midrun: bool,
) -> (String, String, String) {
    let mut g = Garnet::new(config);
    let token = g.issue_default_token("recorder");
    let log = Arc::new(Mutex::new(Vec::new()));
    let id = g
        .register_consumer(Box::new(RecordingConsumer { log: Arc::clone(&log) }), &token, 0)
        .unwrap();
    for s in (2..=6u32).step_by(2) {
        g.subscribe(id, TopicFilter::Sensor(SensorId::new(s).unwrap()), &token).unwrap();
    }
    let half = frames.len() / 2;
    for (phase, slice) in [(0u64, &frames[..half]), (1, &frames[half..])] {
        for (i, chunk) in slice.chunks(5).enumerate() {
            let at = SimTime::from_millis(1 + phase * 2_000 + i as u64);
            let batch: Vec<_> =
                chunk.iter().map(|b| (ReceiverId::new(0), -45.0, b.clone())).collect();
            g.on_frames(batch, at);
        }
        if phase == 0 && midrun {
            g.telemetry(SimTime::from_secs(1));
        }
    }
    g.on_tick(SimTime::from_secs(60));
    let snap = g.telemetry(SimTime::from_secs(61));
    (snap.to_jsonl(), snap.to_prometheus(), g.metrics().report())
}

/// Parses a snapshot line back through `garnet_ctl` and normalises it with
/// the per-shard depth gauges removed — the one part of a snapshot that
/// legitimately depends on the shard layout.
fn strip_shard_gauges(jsonl: &str) -> String {
    let mut snap = garnet_ctl::Snapshot::parse(jsonl).expect("facade emits parseable JSONL");
    snap.gauges.retain(|name, _| !name.contains(".shard"));
    format!("{snap:?}")
}

/// Drops the per-shard depth-gauge series from a Prometheus exposition so
/// renderings can be compared across shard layouts.
fn strip_shard_series(prometheus: &str) -> String {
    prometheus
        .lines()
        .filter(|line| !line.contains("queue_depth_shard"))
        .collect::<Vec<_>>()
        .join("\n")
}

// Telemetry is an observer, not a participant. Three claims: (1) the final
// snapshot is bit-identical — modulo per-shard gauge ids — across
// {Fifo,Threaded} × ingest {1,4} × dispatch {1,4} × {batched,per-frame};
// (2) two identical runs render byte-identical JSONL and Prometheus text,
// per-shard series included; (3) emitting a snapshot mid-run leaves the
// world's final books untouched.
#[test]
fn telemetry_does_not_change_the_world() {
    let drop_mask: Vec<u8> = (0..32).map(|i| u8::from(i % 7 != 0)).collect();
    let dup_mask: Vec<u8> = (0..32).map(|i| (i % 3) as u8).collect();
    let frames = burst_schedule(5, 20, &drop_mask, &dup_mask);
    let cfg = |driver, ingest_shards, dispatch_shards, batch_ingest| GarnetConfig {
        driver,
        ingest_shards,
        dispatch_shards,
        batch_ingest,
        ..GarnetConfig::default()
    };

    let (jsonl, prometheus, report) =
        telemetry_replay(&frames, cfg(DriverKind::Fifo, 1, 1, true), false);
    let baseline_snap = strip_shard_gauges(&jsonl);
    let baseline_prom = strip_shard_series(&prometheus);
    for driver in [DriverKind::Fifo, DriverKind::Threaded] {
        for ingest in [1usize, 4] {
            for dispatch in [1usize, 4] {
                for batch in [true, false] {
                    let (j, p, r) =
                        telemetry_replay(&frames, cfg(driver, ingest, dispatch, batch), false);
                    let label = format!("{driver:?} {ingest}x{dispatch} batch={batch}");
                    assert_eq!(
                        strip_shard_gauges(&j),
                        baseline_snap,
                        "snapshot diverged ({label})"
                    );
                    assert_eq!(
                        strip_shard_series(&p),
                        baseline_prom,
                        "exposition diverged ({label})"
                    );
                    assert_eq!(r, report, "metrics report diverged ({label})");
                }
            }
        }
    }

    for driver in [DriverKind::Fifo, DriverKind::Threaded] {
        let first = telemetry_replay(&frames, cfg(driver, 4, 4, true), false);
        let second = telemetry_replay(&frames, cfg(driver, 4, 4, true), false);
        assert_eq!(first.0, second.0, "{driver:?} JSONL not byte-stable across identical runs");
        assert_eq!(
            first.1, second.1,
            "{driver:?} Prometheus not byte-stable across identical runs"
        );
    }

    for driver in [DriverKind::Fifo, DriverKind::Threaded] {
        let (_, _, with_midrun) = telemetry_replay(&frames, cfg(driver, 4, 4, true), true);
        assert_eq!(with_midrun, report, "mid-run telemetry changed the world ({driver:?})");
    }
}

#[test]
fn different_seed_different_world() {
    let a = run(1);
    let b = run(2);
    assert_ne!(a, b);
}

#[test]
fn lossy_noisy_run_still_balances_its_books() {
    let f = run(777);
    // Every reception is accounted for: delivered, duplicate, or CRC-failed,
    // except frames still waiting in a reorder buffer at the end of the run.
    let accounted = f.delivered + f.duplicates + f.crc_failures;
    assert!(accounted <= f.receptions);
    assert!(f.receptions - accounted < 64, "too many unaccounted frames");
    // Odd sensors orphaned, even sensors consumed.
    assert!(f.orphaned > 0);
    assert!(f.consumer_count > 0);
    assert!(f.crc_failures > 0, "bit-flip injection should trip the CRC");
}
