//! The durable archive's end-to-end contract:
//!
//! 1. **Deterministic replay** — the boundary log a live facade writes
//!    replays into a fresh facade and rebuilds dispatch state
//!    bit-identically, across the full `{Fifo,Threaded} × {1,4} ingest
//!    × {1,4} dispatch` matrix, batched and per-frame, regardless of
//!    which configuration wrote the log.
//! 2. **Crash recovery** — a store that dies mid-run loses only the
//!    unacknowledged tail: recovery never loses a frame the store
//!    acknowledged and never resurrects a torn one, and the
//!    `archive.*` ledger accounts for every offered record.
//! 3. **Graceful degradation** — a stalled or failing backend never
//!    stalls delivery, and `Garnet::shutdown` reports a wedged drain as
//!    the typed `GarnetError::ArchiveFlushTimeout`.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use garnet::core::consumer::{Consumer, ConsumerCtx};
use garnet::core::filtering::Delivery;
use garnet::core::middleware::{Garnet, GarnetConfig, GarnetError};
use garnet::core::{store_slot, ArchiveBackend, ArchiveConfig, DriverKind, StoreSlot};
use garnet::net::TopicFilter;
use garnet::radio::ReceiverId;
use garnet::simkit::SimTime;
use garnet::store::{ArchiveRecord, FaultPlan, FaultyStore, FrameArchive, MemStore, SegmentStore};
use garnet::wire::{
    AckStatus, DataMessage, RequestId, SensorId, SequenceNumber, StreamId, StreamIndex,
};

use proptest::prelude::*;

/// The byte-exact facade delivery log: (raw stream, seq, payload).
type FacadeLog = Vec<(u32, u16, Vec<u8>)>;

struct RecordingConsumer {
    log: Arc<Mutex<FacadeLog>>,
}

impl Consumer for RecordingConsumer {
    fn name(&self) -> &str {
        "recorder"
    }
    fn on_data(&mut self, d: &Delivery, _ctx: &mut ConsumerCtx) {
        self.log.lock().unwrap().push((
            d.msg.stream().to_raw(),
            d.msg.seq().as_u16(),
            d.msg.payload().to_vec(),
        ));
    }
}

/// Everything the archive must reconstruct: the byte-exact delivery
/// log and the per-stage counters. (The metrics report's queue-depth
/// high-water legitimately depends on arrival chunking, so dispatch
/// state is compared through log + counters.)
#[derive(Debug, PartialEq, Eq)]
struct DispatchState {
    log: FacadeLog,
    delivered: u64,
    duplicates: u64,
    crc_failures: u64,
    dispatched: u64,
    orphaned: u64,
}

fn frame(sensor: u32, seq: u16) -> Vec<u8> {
    let stream = StreamId::new(SensorId::new(sensor).unwrap(), StreamIndex::new(0));
    DataMessage::builder(stream)
        .seq(SequenceNumber::new(seq))
        .payload(vec![seq as u8, sensor as u8])
        .build()
        .unwrap()
        .encode_to_vec()
}

/// A messy interleaved burst over streams 1..=sensors with drops and
/// duplicates steered by the masks.
fn burst_schedule(sensors: u32, n: u16, drop_mask: &[u8], dup_mask: &[u8]) -> Vec<Vec<u8>> {
    let mut frames = Vec::new();
    for seq in 0..n {
        for sensor in 1..=sensors {
            let i = (seq as usize + sensor as usize) % drop_mask.len();
            if drop_mask[i] == 0 {
                continue;
            }
            let copies = 1 + usize::from(dup_mask[i % dup_mask.len()] % 2);
            for _ in 0..copies {
                frames.push(frame(sensor, seq));
            }
        }
    }
    frames
}

fn config(
    driver: DriverKind,
    ingest: usize,
    dispatch: usize,
    batch: bool,
    archive: Option<ArchiveConfig>,
) -> GarnetConfig {
    GarnetConfig {
        driver,
        ingest_shards: ingest,
        dispatch_shards: dispatch,
        batch_ingest: batch,
        archive,
        ..GarnetConfig::default()
    }
}

fn fresh_garnet(config: GarnetConfig) -> (Garnet, Arc<Mutex<FacadeLog>>) {
    let mut g = Garnet::new(config);
    let token = g.issue_default_token("recorder");
    let log = Arc::new(Mutex::new(Vec::new()));
    let id = g
        .register_consumer(Box::new(RecordingConsumer { log: Arc::clone(&log) }), &token, 0)
        .unwrap();
    for s in (2..=6u32).step_by(2) {
        g.subscribe(id, TopicFilter::Sensor(SensorId::new(s).unwrap()), &token).unwrap();
    }
    (g, log)
}

fn dispatch_state(g: &Garnet, log: &Arc<Mutex<FacadeLog>>) -> DispatchState {
    let f = g.filtering();
    DispatchState {
        log: log.lock().unwrap().clone(),
        delivered: f.delivered_count(),
        duplicates: f.duplicate_count(),
        crc_failures: f.crc_failure_count(),
        dispatched: g.dispatching().dispatched_count(),
        orphaned: g.orphanage().total_taken(),
    }
}

/// Runs a live facade with the archive tap on a slot-planted store:
/// chunked frame bursts (each chunk at its own instant), a standalone
/// ack, a maintenance tick, then a clean shutdown. Returns the
/// recovered boundary records and the live run's dispatch state.
fn live_run(
    cfg: GarnetConfig,
    slot: StoreSlot,
    frames: &[Vec<u8>],
    chunks: &[usize],
) -> (Vec<ArchiveRecord>, DispatchState) {
    let (mut g, log) = fresh_garnet(cfg);
    let (mut i, mut k) = (0usize, 0usize);
    while i < frames.len() {
        let take = chunks[k % chunks.len()].min(frames.len() - i);
        let at = SimTime::from_millis(1 + k as u64);
        let batch: Vec<_> =
            frames[i..i + take].iter().map(|b| (ReceiverId::new(0), -45.0, b.clone())).collect();
        g.on_frames(batch, at);
        i += take;
        k += 1;
    }
    g.on_standalone_ack(RequestId::new(42), AckStatus::Applied, SimTime::from_secs(50));
    g.on_tick(SimTime::from_secs(60));
    let state = dispatch_state(&g, &log);
    g.shutdown(SimTime::from_secs(61)).expect("clean store, shutdown flushes");
    let store = slot.lock().unwrap().take().expect("store returned to the slot");
    let (mut archive, report) = FrameArchive::open(store, 1 << 20).unwrap();
    assert!(report.truncation.is_none(), "clean run must recover without truncation");
    (archive.read_all().unwrap(), state)
}

fn custom_archive(slot: &StoreSlot) -> ArchiveConfig {
    ArchiveConfig { backend: ArchiveBackend::Custom(Arc::clone(slot)), ..ArchiveConfig::default() }
}

proptest! {
    /// The tentpole acceptance property: any configuration's log,
    /// replayed into any configuration's fresh facade, rebuilds the
    /// live run's dispatch state bit-identically — and the replaying
    /// facade's own archive tap writes a record-identical log (replay
    /// of a replay is a fixed point).
    #[test]
    fn replay_rebuilds_dispatch_state_bit_identically(
        sensors in 2u32..6,
        n in 4u16..16,
        drop_mask in proptest::collection::vec(0u8..8, 16),
        dup_mask in proptest::collection::vec(0u8..4, 16),
        chunks in proptest::collection::vec(1usize..9, 1..8),
        writer_driver_idx in 0usize..2,
        writer_batch in proptest::bool::ANY,
        replay_driver_idx in 0usize..2,
        replay_ingest in prop_oneof![Just(1usize), Just(4usize)],
        replay_dispatch in prop_oneof![Just(1usize), Just(4usize)],
        replay_batch in proptest::bool::ANY,
    ) {
        let frames = burst_schedule(sensors, n, &drop_mask, &dup_mask);
        if frames.is_empty() {
            return; // masks dropped everything; nothing to compare
        }
        let writer_driver = [DriverKind::Fifo, DriverKind::Threaded][writer_driver_idx];
        let slot = store_slot(Box::new(MemStore::new()));
        let (records, live) = live_run(
            config(writer_driver, 2, 2, writer_batch, Some(custom_archive(&slot))),
            slot,
            &frames,
            &chunks,
        );

        let replay_driver = [DriverKind::Fifo, DriverKind::Threaded][replay_driver_idx];
        let replay_slot = store_slot(Box::new(MemStore::new()));
        let (mut g, log) = fresh_garnet(config(
            replay_driver,
            replay_ingest,
            replay_dispatch,
            replay_batch,
            Some(custom_archive(&replay_slot)),
        ));
        g.replay_archive(&records);
        let replayed = dispatch_state(&g, &log);
        prop_assert_eq!(
            &live, &replayed,
            "replay diverged (writer {:?} batch={} -> replay {:?} {}x{} batch={})",
            writer_driver, writer_batch, replay_driver, replay_ingest, replay_dispatch,
            replay_batch
        );

        // The replaying facade archived the same boundary inputs: its
        // log is record-identical to the one it was fed.
        g.shutdown(SimTime::from_secs(120)).expect("replay shutdown flushes");
        let store = replay_slot.lock().unwrap().take().expect("replay store returned");
        let (mut archive, _) = FrameArchive::open(store, 1 << 20).unwrap();
        prop_assert_eq!(archive.read_all().unwrap(), records, "re-archived log diverged");
    }

    /// Crash recovery through the facade: a store that tears writes and
    /// then dies mid-run yields a recovered log that is an
    /// order-preserving subsequence of what was offered — acknowledged
    /// frames before the crash survive, torn ones never resurrect —
    /// and the ledger accounts for every offered record.
    #[test]
    fn crash_recovery_never_loses_acknowledged_nor_resurrects_torn_frames(
        seed in 0u64..500,
        torn in 0u16..400,
        die_after in 1u64..60,
        n in 4u16..20,
    ) {
        let faulty = FaultyStore::new(
            MemStore::new(),
            FaultPlan {
                seed,
                torn_write_per_mille: torn,
                stall_after_appends: Some(die_after),
                ..FaultPlan::default()
            },
        );
        let slot = store_slot(Box::new(faulty));
        let frames = burst_schedule(4, n, &[1, 1, 0, 1], &[0, 1]);
        let (mut g, _log) = fresh_garnet(config(
            DriverKind::Fifo,
            1,
            1,
            true,
            Some(custom_archive(&slot)),
        ));
        let offered: Vec<_> = frames
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let at = SimTime::from_millis(1 + i as u64);
                g.on_frames(vec![(ReceiverId::new(0), -45.0, b.clone())], at);
                ArchiveRecord::frame(0, -45.0, b.clone().into(), at)
            })
            .collect();

        let ledger = g.archive_ledger().unwrap();
        prop_assert_eq!(ledger.offered, frames.len() as u64);
        prop_assert_eq!(ledger.archived + ledger.dropped + ledger.pending, ledger.offered);
        prop_assert_eq!(ledger.pending, 0, "inline sink leaves nothing pending");
        // Delivery never stalled on the dying store.
        prop_assert!(g.filtering().delivered_count() > 0);

        // Shutdown may legitimately report the dead store; recover the
        // bytes either way (the slot gets the store back regardless).
        let _ = g.shutdown(SimTime::from_secs(10));
        let store = slot.lock().unwrap().take().expect("store returned to the slot");
        let (mut archive, report) = FrameArchive::open(store, 1 << 20).unwrap();
        let recovered = archive.read_all().unwrap();
        prop_assert!(recovered.len() as u64 <= ledger.archived);
        // Order-preserving subsequence of the offered records: nothing
        // reordered, nothing invented, torn tails truncated away.
        let mut cursor = 0usize;
        for rec in &recovered {
            let pos = offered[cursor..].iter().position(|o| o == rec);
            prop_assert!(pos.is_some(), "recovered a record that was never offered: {:?}", rec);
            cursor += pos.unwrap() + 1;
        }
        // With no faults at all, the acknowledged log IS the offered log.
        if torn == 0 && die_after >= offered.len() as u64 {
            prop_assert_eq!(report.truncation.is_none(), true);
            prop_assert_eq!(recovered, offered);
        }
    }
}

#[test]
fn recovery_reports_per_stream_high_water_marks() {
    let slot = store_slot(Box::new(MemStore::new()));
    let frames: Vec<_> =
        (0..10u16).map(|s| frame(1, s)).chain((0..5u16).map(|s| frame(2, s))).collect();
    let (records, _) = live_run(
        config(DriverKind::Fifo, 1, 1, true, Some(custom_archive(&slot))),
        slot,
        &frames,
        &[3],
    );
    assert!(!records.is_empty());

    // Re-open the log (write it into a fresh store) and inspect marks.
    let mut store = MemStore::new();
    let mut buf = Vec::new();
    for r in &records {
        r.encode_into(&mut buf);
    }
    store.append(0, &buf).unwrap();
    let report = FrameArchive::recover(&mut store).unwrap();
    let s1 = StreamId::new(SensorId::new(1).unwrap(), StreamIndex::new(0)).to_raw();
    let s2 = StreamId::new(SensorId::new(2).unwrap(), StreamIndex::new(0)).to_raw();
    assert_eq!(report.high_water.get(&s1), Some(&9));
    assert_eq!(report.high_water.get(&s2), Some(&4));
}

#[test]
fn stalled_archive_degrades_gracefully_and_ledger_balances() {
    // A backend that refuses every append from the start: the facade
    // keeps delivering, counts every record dropped, and shuts down
    // with the typed error (nothing flushed).
    let faulty = FaultyStore::new(
        MemStore::new(),
        FaultPlan { stall_after_appends: Some(0), ..FaultPlan::default() },
    );
    let slot = store_slot(Box::new(faulty));
    let (mut g, log) =
        fresh_garnet(config(DriverKind::Fifo, 1, 1, true, Some(custom_archive(&slot))));
    let batch: Vec<_> = (0..20u16).map(|s| (ReceiverId::new(0), -45.0, frame(2, s))).collect();
    g.on_frames(batch, SimTime::from_millis(1));

    assert_eq!(log.lock().unwrap().len(), 20, "delivery must not wait on storage");
    let ledger = g.archive_ledger().unwrap();
    assert_eq!(ledger.offered, 20);
    assert_eq!(ledger.archived, 0);
    assert_eq!(ledger.dropped, 20);
    assert_eq!(ledger.pending, 0);

    assert!(matches!(
        g.flush_archive(SimTime::from_millis(2)),
        Err(GarnetError::ArchiveFlushTimeout)
    ));
    assert!(matches!(g.shutdown(SimTime::from_millis(3)), Err(GarnetError::ArchiveFlushTimeout)));
    // The facade still answers reads after the failed drain.
    assert_eq!(g.archive_ledger().unwrap().dropped, 20);
}

#[test]
fn wedged_threaded_writer_times_out_shutdown_with_typed_error() {
    // The worker wedges inside a stalled append (sleeping store); the
    // bounded shutdown drain must give up and surface the typed error
    // rather than hang — and the worker pools still join.
    let faulty = FaultyStore::new(
        MemStore::new(),
        FaultPlan {
            stall_after_appends: Some(0),
            stall_sleep: Some(Duration::from_millis(700)),
            ..FaultPlan::default()
        },
    );
    let slot = store_slot(Box::new(faulty));
    let archive = ArchiveConfig {
        backend: ArchiveBackend::Custom(Arc::clone(&slot)),
        flush_timeout: Duration::from_millis(60),
        ..ArchiveConfig::default()
    };
    let (mut g, log) = fresh_garnet(config(DriverKind::Threaded, 2, 2, true, Some(archive)));
    let batch: Vec<_> = (0..8u16).map(|s| (ReceiverId::new(0), -45.0, frame(2, s))).collect();
    g.on_frames(batch, SimTime::from_millis(1));
    assert_eq!(log.lock().unwrap().len(), 8, "delivery must not wait on the wedged writer");

    let started = std::time::Instant::now();
    assert!(matches!(g.shutdown(SimTime::from_secs(1)), Err(GarnetError::ArchiveFlushTimeout)));
    assert!(started.elapsed() < Duration::from_secs(5), "shutdown drain must stay bounded");
    // The engines are retired: post-shutdown reads still answer.
    let ledger = g.archive_ledger().unwrap();
    assert_eq!(ledger.offered, 8);
    assert_eq!(ledger.archived + ledger.dropped + ledger.pending, 8);
}

#[test]
fn archive_metrics_stage_reports_the_ledger() {
    let slot = store_slot(Box::new(MemStore::new()));
    let (mut g, _log) =
        fresh_garnet(config(DriverKind::Fifo, 1, 1, true, Some(custom_archive(&slot))));
    g.on_frames(vec![(ReceiverId::new(0), -45.0, frame(2, 0))], SimTime::from_millis(1));
    g.on_tick(SimTime::from_secs(1));
    let report = g.metrics().report();
    assert!(report.contains("archive.offered"), "report:\n{report}");
    assert!(report.contains("archive.archived"));
    assert!(report.contains("archive.recovered_records"));
    let ledger = g.archive_ledger().unwrap();
    assert_eq!(ledger.offered, 2, "one frame + one tick");
    assert_eq!(ledger.archived, 2);
}
