//! ThreadedRouter ≡ Router: running the full service graph on per-stage
//! OS workers with sequence-merged edges must produce exactly the output
//! stream of the single-threaded FIFO router, at every shard count, on
//! every run. This is the threaded analogue of `determinism.rs`.

use garnet::core::actuation::{ActuationConfig, ActuationService};
use garnet::core::coordinator::{CoordinationMode, SuperCoordinator};
use garnet::core::filtering::FilterConfig;
use garnet::core::location::{LocationConfig, LocationService};
use garnet::core::orphanage::{Orphanage, OrphanageConfig};
use garnet::core::replicator::MessageReplicator;
use garnet::core::resource::{MediationPolicy, ResourceManager};
use garnet::core::router::{
    ControlGraph, Router, Services, ShardedDispatch, ShardedIngest, ThreadedRouter,
};
use garnet::core::service::{ServiceEvent, ServiceOutput};
use garnet::net::{SubscriberId, SubscriptionTable, TopicFilter};
use garnet::radio::ReceiverId;
use garnet::simkit::SimTime;
use garnet::wire::{DataMessage, SensorId, SequenceNumber, StreamId, StreamIndex};

fn frame(sensor: u32, index: u8, seq: u16) -> garnet::wire::FrameBytes {
    let stream = StreamId::new(SensorId::new(sensor).unwrap(), StreamIndex::new(index));
    DataMessage::builder(stream)
        .seq(SequenceNumber::new(seq))
        .payload(vec![seq as u8, sensor as u8])
        .build()
        .unwrap()
        .encode_to_vec()
        .into()
}

/// One facade-boundary event, with its arrival time.
enum Boundary {
    Frame(garnet::wire::FrameBytes, SimTime),
    Flush(SimTime),
    Tick(SimTime),
}

/// A messy multi-sensor schedule: drops (→ reorder gaps), duplicates,
/// periodic flushes, and a terminal flush + actuation tick.
fn schedule() -> Vec<Boundary> {
    let mut sched = Vec::new();
    let mut t = 0u64;
    for seq in 0..40u16 {
        for sensor in 1..=6u32 {
            if (u32::from(seq) + sensor) % 7 == 0 {
                continue; // dropped in flight
            }
            sched.push(Boundary::Frame(frame(sensor, 0, seq), SimTime::from_millis(t)));
            t += 3;
            if (u32::from(seq) + sensor) % 5 == 0 {
                sched.push(Boundary::Frame(frame(sensor, 0, seq), SimTime::from_millis(t)));
                t += 1;
            }
        }
        if seq % 10 == 9 {
            t += 700;
            sched.push(Boundary::Flush(SimTime::from_millis(t)));
        }
    }
    t += 60_000;
    sched.push(Boundary::Flush(SimTime::from_millis(t)));
    sched.push(Boundary::Tick(SimTime::from_millis(t)));
    sched
}

fn control_graph() -> ControlGraph {
    ControlGraph {
        orphanage: Orphanage::new(OrphanageConfig::default()),
        location: LocationService::new(LocationConfig::default(), &[]),
        resource: ResourceManager::new(MediationPolicy::MergeMax),
        actuation: ActuationService::new(ActuationConfig::default()),
        replicator: MessageReplicator::new(Vec::new()),
        coordinator: SuperCoordinator::new(CoordinationMode::Predictive { min_confidence: 0.6 }),
    }
}

/// Even sensors are claimed (sensor 6 by stream filter), odd orphan.
fn filters() -> Vec<(u32, TopicFilter)> {
    vec![
        (0, TopicFilter::Sensor(SensorId::new(2).unwrap())),
        (1, TopicFilter::Sensor(SensorId::new(4).unwrap())),
        (1, TopicFilter::Stream(StreamId::new(SensorId::new(6).unwrap(), StreamIndex::new(0)))),
    ]
}

fn subscriptions() -> SubscriptionTable {
    let mut table = SubscriptionTable::default();
    for (id, filter) in filters() {
        table.subscribe(SubscriberId::new(id), filter);
    }
    table
}

/// Pumps the schedule through the single-threaded FIFO router, one
/// boundary event to quiescence at a time (exactly the facade's drive
/// loop), and fingerprints every escaped output in order.
fn reference_outputs(sched: &[Boundary]) -> Vec<String> {
    let mut dispatch = ShardedDispatch::new(1);
    // Allocate ids 0 and 1 — matching the raw ids `subscriptions()`
    // builds the threaded snapshot table from.
    dispatch.register_subscriber();
    dispatch.register_subscriber();
    for (id, filter) in filters() {
        dispatch.subscribe(SubscriberId::new(id), filter);
    }
    let services = Services {
        ingest: ShardedIngest::new(FilterConfig::default(), 1),
        dispatch,
        control: control_graph(),
    };
    let mut router = Router::new(services);
    let mut escaped = Vec::new();
    for b in sched {
        let (ev, now) = match b {
            Boundary::Frame(bytes, at) => (
                ServiceEvent::Frame {
                    receiver: ReceiverId::new(0),
                    rssi_dbm: -40.0,
                    frame: bytes.clone(),
                },
                *at,
            ),
            Boundary::Flush(at) => (ServiceEvent::FlushReorder, *at),
            Boundary::Tick(at) => (ServiceEvent::ActuationTick, *at),
        };
        router.enqueue(ev);
        while let Some(outs) = router.step(now) {
            for o in outs {
                match o {
                    ServiceOutput::Emit(ev) => router.enqueue(ev),
                    other => escaped.push(format!("{other:?}")),
                }
            }
        }
    }
    escaped
}

/// The same schedule through the threaded graph, outputs flattened in
/// root order.
fn threaded_outputs(sched: &[Boundary], ingest: usize, dispatch: usize) -> Vec<String> {
    let table = subscriptions();
    let mut tr =
        ThreadedRouter::new(FilterConfig::default(), ingest, dispatch, &table, control_graph);
    let mut roots = Vec::new();
    for b in sched {
        let released = match b {
            Boundary::Frame(bytes, at) => {
                tr.push_frame(ReceiverId::new(0), -40.0, bytes.clone(), *at)
            }
            Boundary::Flush(at) => tr.push_flush(*at),
            Boundary::Tick(at) => tr.push_tick(*at),
        };
        roots.extend(released);
    }
    let offered = tr.offered_frame_count();
    let report = tr.finish();
    assert!(report.failures.is_empty(), "no worker should fail: {:?}", report.failures);
    assert_eq!(report.shed_frames, 0, "Block admission never sheds");
    assert_eq!(report.shard_restarts, 0);
    assert_eq!(report.offered_frames, offered);
    roots.extend(report.outputs);
    // Roots come back strictly in boundary order, gap-free.
    for (i, r) in roots.iter().enumerate() {
        assert_eq!(r.root, i as u64, "root release order broke");
    }
    roots.into_iter().flat_map(|r| r.outputs).map(|o| format!("{o:?}")).collect()
}

#[test]
fn threaded_router_matches_single_threaded_router() {
    let sched = schedule();
    let want = reference_outputs(&sched);
    assert!(
        want.iter().any(|o| o.starts_with("Deliver")),
        "schedule must exercise deliveries, got {want:?}"
    );
    let got = threaded_outputs(&sched, 1, 1);
    assert_eq!(got, want, "1×1 threaded graph diverged from the FIFO router");
}

#[test]
fn threaded_router_output_is_shard_count_invariant() {
    let sched = schedule();
    let base = threaded_outputs(&sched, 1, 1);
    for (ingest, dispatch) in [(4, 1), (1, 4), (4, 3)] {
        let got = threaded_outputs(&sched, ingest, dispatch);
        assert_eq!(got, base, "{ingest}×{dispatch} shards diverged");
    }
}

#[test]
fn threaded_router_is_deterministic_across_runs() {
    let sched = schedule();
    let a = threaded_outputs(&sched, 4, 3);
    let b = threaded_outputs(&sched, 4, 3);
    assert_eq!(a, b);
}
