//! The telemetry plane end to end through the facade: latency spans,
//! windowed snapshots with counter deltas and rates, health scoring,
//! the rotating JSONL sink, and the `garnet-ctl` parser reading it all
//! back. The default config honours `GARNET_TEST_DRIVER` /
//! `GARNET_TEST_BATCH`, so ci.sh reruns this suite on the threaded
//! engine and the per-frame path unchanged.

use garnet::core::middleware::{Garnet, GarnetConfig};
use garnet::core::pipeline::SharedCountConsumer;
use garnet::core::router::{OverloadConfig, OverloadPolicy};
use garnet::core::telemetry::{HealthState, TelemetryConfig};
use garnet::net::TopicFilter;
use garnet::radio::ReceiverId;
use garnet::simkit::{SimDuration, SimTime};
use garnet::wire::{DataMessage, SensorId, SequenceNumber, StreamId, StreamIndex};

/// `frames` data messages round-robined over `sensors` sensors with
/// monotonic per-stream sequence numbers.
fn workload(frames: u32, sensors: u32) -> Vec<Vec<u8>> {
    (0..frames)
        .map(|i| {
            let sensor = 1 + (i % sensors);
            let stream = StreamId::new(SensorId::new(sensor).unwrap(), StreamIndex::new(0));
            DataMessage::builder(stream)
                .seq(SequenceNumber::new((i / sensors) as u16))
                .payload(vec![(i % 251) as u8; 8])
                .build()
                .unwrap()
                .encode_to_vec()
        })
        .collect()
}

/// A facade with one subscribed count-everything consumer.
fn subscribed_garnet(config: GarnetConfig) -> Garnet {
    let mut g = Garnet::new(config);
    let token = g.issue_default_token("telemetry-test");
    let (consumer, _count) = SharedCountConsumer::new("telemetry-test");
    let id = g.register_consumer(Box::new(consumer), &token, 0).unwrap();
    g.subscribe(id, TopicFilter::All, &token).unwrap();
    g
}

fn feed(g: &mut Garnet, frames: &[Vec<u8>], at: SimTime) {
    let batch: Vec<_> = frames.iter().map(|f| (ReceiverId::new(0), -45.0, f.clone())).collect();
    g.on_frames(batch, at);
}

#[test]
fn snapshot_windows_count_deltas_and_rates() {
    let mut g = subscribed_garnet(GarnetConfig::default());
    let frames = workload(40, 4);
    feed(&mut g, &frames[..30], SimTime::from_secs(1));
    let s1 = g.telemetry(SimTime::from_secs(2));
    assert_eq!(s1.seq, 1);
    assert_eq!(s1.window_start_us, 0);
    assert_eq!(s1.window_end_us, 2_000_000);
    assert_eq!(s1.counters["overload.offered"], 30);
    assert_eq!(s1.deltas["overload.offered"], 30);
    assert!((s1.rate_per_sec("overload.offered") - 15.0).abs() < 1e-9);
    assert_eq!(s1.counters["telemetry.windows"], 1);
    assert!(matches!(s1.health.state, HealthState::Healthy));

    feed(&mut g, &frames[30..], SimTime::from_secs(3));
    let s2 = g.telemetry(SimTime::from_secs(4));
    assert_eq!(s2.seq, 2);
    assert_eq!(s2.window_start_us, 2_000_000);
    // Counters are cumulative; deltas are this window's movement only.
    assert_eq!(s2.counters["overload.offered"], 40);
    assert_eq!(s2.deltas["overload.offered"], 10);
    assert_eq!(g.last_telemetry().unwrap().seq, 2);

    // The latency spans saw every delivered frame, at plausible values.
    let e2e = &s2.histograms["pipeline.e2e_latency_us"];
    assert_eq!(e2e.count, 40);
    let filtering = &s2.histograms["filtering.latency_us"];
    assert_eq!(filtering.count, 40);
    // The depth gauge climbed to the largest burst size.
    let depth = &s2.gauges["overload.queue_depth"];
    assert_eq!(depth.max, 30);
    assert_eq!(depth.samples, 40);
    // One shard by default, so exactly one per-shard gauge, mirroring
    // the total.
    assert_eq!(s2.gauges["overload.queue_depth.shard0"].max, 30);
}

#[test]
fn interval_auto_emits_through_facade_calls() {
    let mut g = subscribed_garnet(GarnetConfig {
        telemetry: TelemetryConfig {
            interval: Some(SimDuration::from_secs(10)),
            ..TelemetryConfig::default()
        },
        ..GarnetConfig::default()
    });
    let frames = workload(12, 3);
    feed(&mut g, &frames[..6], SimTime::from_secs(1));
    assert!(g.last_telemetry().is_none(), "interval not yet elapsed");
    feed(&mut g, &frames[6..], SimTime::from_secs(11));
    let first = g.last_telemetry().expect("frame burst past the deadline auto-emits").clone();
    assert_eq!(first.seq, 1);
    assert_eq!(first.window_end_us, 11_000_000);
    g.on_tick(SimTime::from_secs(30));
    let second = g.last_telemetry().unwrap().clone();
    assert_eq!(second.seq, 2, "ticks auto-emit too");
    assert_eq!(second.window_start_us, 11_000_000);
}

#[test]
fn spans_toggle_empties_the_histograms_but_not_the_books() {
    let mut g = subscribed_garnet(GarnetConfig {
        telemetry: TelemetryConfig { spans: false, ..TelemetryConfig::default() },
        ..GarnetConfig::default()
    });
    feed(&mut g, &workload(20, 4), SimTime::from_secs(1));
    let s = g.telemetry(SimTime::from_secs(2));
    assert_eq!(s.histograms["pipeline.e2e_latency_us"].count, 0);
    assert_eq!(s.gauges["overload.queue_depth"].samples, 0);
    // The ledger is untouched by the toggle.
    assert_eq!(s.counters["overload.offered"], 20);
    assert_eq!(s.counters["filtering.delivered"], 20);
}

#[test]
fn shedding_degrades_health_with_reasons() {
    let mut g = subscribed_garnet(GarnetConfig {
        overload: Some(OverloadConfig { capacity: 4, policy: OverloadPolicy::Shed }),
        ..GarnetConfig::default()
    });
    feed(&mut g, &workload(64, 4), SimTime::from_secs(1));
    let s = g.telemetry(SimTime::from_secs(2));
    assert!(s.deltas["overload.shed"] > 0, "the tiny queue must shed");
    let report = &s.health;
    assert!(report.severity() > 0, "shedding past threshold must not score healthy");
    assert!(!report.reasons().is_empty());
    assert!(report.reasons().iter().any(|r| r.contains("shed")), "{:?}", report.reasons());
    // The JSONL line carries the verdict for garnetctl.
    let line = s.to_jsonl();
    assert!(line.contains("\"health\":\"critical\"") || line.contains("\"health\":\"degraded\""));
}

#[test]
fn sink_rotates_and_garnetctl_reads_it_back() {
    let dir = std::env::temp_dir().join(format!("garnet-telemetry-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut g = subscribed_garnet(GarnetConfig {
        telemetry: TelemetryConfig {
            sink_dir: Some(dir.clone()),
            rotate_lines: 2,
            ..TelemetryConfig::default()
        },
        ..GarnetConfig::default()
    });
    let frames = workload(50, 5);
    let mut emitted = Vec::new();
    for (i, chunk) in frames.chunks(10).enumerate() {
        let at = SimTime::from_secs(1 + 2 * i as u64);
        feed(&mut g, chunk, at);
        emitted.push(g.telemetry(SimTime::from_secs(2 + 2 * i as u64)));
    }
    assert!(g.telemetry_sink_error().is_none(), "{:?}", g.telemetry_sink_error());
    // 5 windows at 2 lines/file → 3 files (the last holds 1 line).
    let files = garnet_ctl::sink_files(&dir).unwrap();
    assert_eq!(files.len(), 3, "{files:?}");

    let parsed = garnet_ctl::load_sink(&dir).unwrap();
    assert_eq!(parsed.len(), emitted.len());
    for (snap, orig) in parsed.iter().zip(&emitted) {
        assert_eq!(snap.seq, orig.seq);
        assert_eq!(snap.window_start_us, orig.window_start_us);
        assert_eq!(snap.window_end_us, orig.window_end_us);
        assert_eq!(snap.health, orig.health.label());
        assert_eq!(snap.counters, orig.counters.clone().into_iter().collect());
        assert_eq!(snap.deltas, orig.deltas.clone().into_iter().collect());
        assert_eq!(snap.match_cache_hit_ppm, orig.match_cache_hit_ppm);
        let p99 = snap.histograms["pipeline.e2e_latency_us"].p99;
        assert_eq!(p99, orig.histograms["pipeline.e2e_latency_us"].p99);
        let depth = snap.gauges["overload.queue_depth"];
        let orig_depth = &orig.gauges["overload.queue_depth"];
        assert_eq!(
            (depth.last, depth.min, depth.max, depth.samples),
            (orig_depth.last, orig_depth.min, orig_depth.max, orig_depth.samples)
        );
    }
    // A fresh facade pointed at the same directory resumes after the
    // existing files instead of clobbering them.
    let mut g2 = subscribed_garnet(GarnetConfig {
        telemetry: TelemetryConfig {
            sink_dir: Some(dir.clone()),
            rotate_lines: 2,
            ..TelemetryConfig::default()
        },
        ..GarnetConfig::default()
    });
    feed(&mut g2, &frames[..10], SimTime::from_secs(100));
    g2.telemetry(SimTime::from_secs(101));
    let after_restart = garnet_ctl::load_sink(&dir).unwrap();
    assert_eq!(after_restart.len(), emitted.len() + 1);
    assert_eq!(after_restart.last().unwrap().seq, 1, "new node restarts its own sequence");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn prometheus_exposition_is_complete_and_stable() {
    let run = || {
        let mut g = subscribed_garnet(GarnetConfig::default());
        feed(&mut g, &workload(25, 5), SimTime::from_secs(1));
        g.telemetry(SimTime::from_secs(2)).to_prometheus()
    };
    let text = run();
    assert!(text.contains("# TYPE garnet_telemetry_seq counter"));
    assert!(text.contains("garnet_health_state 0"));
    assert!(text.contains("garnet_overload_offered 25"));
    assert!(text.contains("# TYPE garnet_pipeline_e2e_latency_us summary"));
    assert!(text.contains("garnet_pipeline_e2e_latency_us{quantile=\"0.99\"}"));
    assert!(text.contains("garnet_pipeline_e2e_latency_us_count 25"));
    assert!(text.contains("# TYPE garnet_overload_queue_depth gauge"));
    assert!(text.contains("garnet_overload_queue_depth_max 25"));
    assert_eq!(text, run(), "identical runs must render identical exposition bytes");
}
