//! Per-consumer QoS scheduling: priority classes, per-subscription
//! coalescing, adaptive capacity, and the per-class admission ledger.
//!
//! The scheduler's contract (ISSUE 10): Control > Actuation > Data with
//! strict-priority release and no shedding above the data tier; the
//! exact `offered == shed + delivered` ledger holds **per class**; a
//! slow consumer's backlog never perturbs a fast co-subscriber; and the
//! whole layer is bit-identical across execution engines.

use std::sync::{Arc, Mutex};

use garnet::core::consumer::{Consumer, ConsumerCtx};
use garnet::core::filtering::Delivery;
use garnet::core::middleware::{Garnet, GarnetConfig};
use garnet::core::router::{OverloadConfig, OverloadPolicy};
use garnet::core::{DriverKind, PriorityClass, QosConfig, QosMode};
use garnet::net::{SubscriberId, TopicFilter};
use garnet::radio::ReceiverId;
use garnet::simkit::SimTime;
use garnet::wire::{DataMessage, SensorId, SequenceNumber, StreamId, StreamIndex};

const CAPACITY: usize = 32;
const STREAMS: u32 = 6;

/// The byte-exact delivery log one consumer observed.
type Log = Arc<Mutex<Vec<(u32, u16, Vec<u8>)>>>;

struct Recorder {
    name: &'static str,
    log: Log,
}

impl Consumer for Recorder {
    fn name(&self) -> &str {
        self.name
    }
    fn on_data(&mut self, d: &Delivery, _ctx: &mut ConsumerCtx) {
        self.log.lock().unwrap().push((
            d.msg.stream().to_raw(),
            d.msg.seq().as_u16(),
            d.msg.payload().to_vec(),
        ));
    }
}

fn scheduled(policy: OverloadPolicy) -> GarnetConfig {
    GarnetConfig {
        overload: Some(OverloadConfig { capacity: CAPACITY, policy }),
        qos: QosConfig { mode: QosMode::Scheduled, ..QosConfig::default() },
        ..GarnetConfig::default()
    }
}

/// An interleaved burst of `multiplier * CAPACITY` frames over
/// [`STREAMS`] streams, with every third frame duplicated so coalescing
/// has work to do.
fn burst(multiplier: usize) -> Vec<(ReceiverId, f64, Vec<u8>)> {
    let mut frames = Vec::new();
    for i in 0..(multiplier * CAPACITY) as u64 {
        let sensor = (i % u64::from(STREAMS)) as u32 + 1;
        let seq = (i / u64::from(STREAMS)) as u16;
        let stream = StreamId::new(SensorId::new(sensor).unwrap(), StreamIndex::new(0));
        let bytes = DataMessage::builder(stream)
            .seq(SequenceNumber::new(seq))
            .payload(vec![sensor as u8, seq as u8])
            .build()
            .unwrap()
            .encode_to_vec();
        frames.push((ReceiverId::new(0), -50.0, bytes.clone()));
        if i % 3 == 0 {
            frames.push((ReceiverId::new(0), -50.0, bytes));
        }
    }
    frames
}

/// Registers a recording consumer subscribed to every stream.
fn register(g: &mut Garnet, name: &'static str) -> (SubscriberId, Log) {
    let token = g.issue_default_token(name);
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    let id = g
        .register_consumer(Box::new(Recorder { name, log: Arc::clone(&log) }), &token, 0)
        .expect("fresh facade accepts a consumer");
    g.subscribe(id, TopicFilter::All, &token).expect("subscribe with a fresh token");
    (id, log)
}

#[test]
fn per_class_ledger_holds_on_both_engines() {
    for driver in [DriverKind::Fifo, DriverKind::Threaded] {
        for policy in [OverloadPolicy::Shed, OverloadPolicy::CoalesceFrames, OverloadPolicy::Block]
        {
            let mut g = Garnet::new(GarnetConfig { driver, ..scheduled(policy) });
            let (_, _log) = register(&mut g, "sink");
            assert!(g.qos_active(), "Scheduled mode + overload config must arm the scheduler");
            // Data through admission; control (flush) and actuation
            // (ticks) through the event tiers.
            g.on_frames(burst(8), SimTime::from_millis(1));
            g.on_tick(SimTime::from_secs(1));
            g.on_frames(burst(4), SimTime::from_secs(2));
            g.on_tick(SimTime::from_secs(3));
            let ledgers = g.qos_ledgers().expect("scheduler is active");
            for class in PriorityClass::ALL {
                let l = ledgers.class(class);
                assert!(
                    l.balanced(),
                    "{driver:?} {policy:?} {}: offered {} != shed {} + delivered {}",
                    class.name(),
                    l.offered,
                    l.shed,
                    l.delivered
                );
                assert!(l.coalesced <= l.shed, "coalesced is a subset of shed");
            }
            assert!(ledgers.class(PriorityClass::Data).offered > 0, "burst reached the data tier");
            g.shutdown(SimTime::from_secs(4)).expect("clean shutdown");
        }
    }
}

#[test]
fn control_and_actuation_are_never_shed_under_data_overload() {
    for driver in [DriverKind::Fifo, DriverKind::Threaded] {
        let mut g = Garnet::new(GarnetConfig { driver, ..scheduled(OverloadPolicy::Shed) });
        let (_, _log) = register(&mut g, "sink");
        // 16x the data tier's capacity, with flush/actuation ticks
        // interleaved between bursts.
        for round in 0..4u64 {
            g.on_frames(burst(4), SimTime::from_millis(1 + round * 1_000));
            g.on_tick(SimTime::from_secs(1 + round));
        }
        let ledgers = g.qos_ledgers().expect("scheduler is active");
        for class in [PriorityClass::Control, PriorityClass::Actuation] {
            let l = ledgers.class(class);
            assert!(l.offered > 0, "{driver:?}: ticks must exercise the {} tier", class.name());
            assert_eq!(l.shed, 0, "{driver:?}: {} events must never shed", class.name());
            assert_eq!(l.delivered, l.offered, "{driver:?}: {} tier drains fully", class.name());
        }
        let data = ledgers.class(PriorityClass::Data);
        assert!(data.shed > 0, "{driver:?}: a 16x burst must shed data frames");
        assert!(data.balanced(), "{driver:?}: data ledger must balance");
    }
}

#[test]
fn slow_consumer_does_not_perturb_fast_consumer() {
    // Starvation regression: the run with a rate-limited co-subscriber
    // must hand the fast consumer the exact delivery log it gets alone.
    // Sub-capacity chunks keep deliveries flowing on every call, so the
    // slow consumer's staging queue (not the admission tier) is what
    // holds traffic back.
    let feed = |g: &mut Garnet| {
        for (i, chunk) in burst(16).chunks(24).enumerate() {
            g.on_frames(chunk.to_vec(), SimTime::from_millis(1 + i as u64));
        }
        g.on_tick(SimTime::from_secs(1));
    };
    let alone = {
        let mut g = Garnet::new(scheduled(OverloadPolicy::CoalesceFrames));
        let (_, fast_log) = register(&mut g, "fast");
        feed(&mut g);
        let log = fast_log.lock().unwrap().clone();
        log
    };

    let mut g = Garnet::new(scheduled(OverloadPolicy::CoalesceFrames));
    let (_, fast_log) = register(&mut g, "fast");
    let (slow_id, slow_log) = register(&mut g, "slow");
    g.set_consumer_drain_limit(slow_id, Some(2));
    feed(&mut g);

    let fast = fast_log.lock().unwrap().clone();
    assert_eq!(fast, alone, "a slow co-subscriber changed the fast consumer's deliveries");
    assert!(!fast.is_empty(), "the burst must reach the fast consumer");

    // The slow consumer trickles: at most its limit per facade call so
    // far, the rest staged or coalesced away, and the delivery-plane
    // ledger accounts for every staged offer.
    let slow_so_far = slow_log.lock().unwrap().len() as u64;
    assert!(slow_so_far < fast.len() as u64, "the drain limit must hold deliveries back");
    let l = g.delivery_ledger();
    assert_eq!(
        l.offered,
        l.shed + l.delivered + g.delivery_backlog(),
        "delivery ledger out of balance mid-flight"
    );
    assert!(l.coalesced > 0, "in-window duplicates for a slow consumer must coalesce");

    // Shutdown flushes any remaining backlog; nothing is stranded and
    // the ledger closes balanced.
    g.shutdown(SimTime::from_secs(2)).expect("clean shutdown");
    assert_eq!(g.delivery_backlog(), 0, "shutdown must flush the staged backlog");
    let l = g.delivery_ledger();
    assert_eq!(l.offered, l.shed + l.delivered, "delivery ledger must close balanced");
    // Coalescing is per subscription: what the slow consumer sees is a
    // subsequence of the fast consumer's log (newest-wins per stream).
    let slow = slow_log.lock().unwrap();
    for d in slow.iter() {
        assert!(fast.contains(d), "slow consumer saw a delivery the fast one never got: {d:?}");
    }
}

#[test]
fn coalesce_then_shed_counts_once() {
    // Regression for the CoalesceFrames double-count: a frame that is
    // coalesced and whose survivor is later shed must enter the ledger
    // exactly once. Pin `offered == shed + delivered` with duplicates
    // at every position, in both the scheduled and the legacy path.
    for mode in [QosMode::Scheduled, QosMode::Legacy] {
        // The legacy arm exercises the engine's own admission queue, so
        // pin the FIFO engine: threaded legacy admission is
        // timing-dependent and only owes the balance, not the counts.
        let mut g = Garnet::new(GarnetConfig {
            driver: DriverKind::Fifo,
            qos: QosConfig { mode, ..QosConfig::default() },
            ..scheduled(OverloadPolicy::CoalesceFrames)
        });
        let (_, _log) = register(&mut g, "sink");
        assert_eq!(g.qos_active(), mode == QosMode::Scheduled);
        let mut offered = 0u64;
        let mut shed = 0u64;
        let mut delivered = 0u64;
        for round in 0..3u64 {
            let out = g.on_frames(burst(8), SimTime::from_millis(1 + round));
            offered += out.overload.offered;
            shed += out.overload.shed;
            delivered += out.overload.delivered;
            assert!(out.overload.coalesced > 0, "{mode:?}: duplicates must coalesce");
        }
        assert_eq!(offered, shed + delivered, "{mode:?}: coalesce-then-shed double-counted");
        g.on_tick(SimTime::from_secs(1));
    }
}

#[test]
fn qos_is_bit_identical_across_engines_and_layouts() {
    // With the scheduler active, admission decisions move above the
    // engine: every {driver} x {shards} x {batch} layout must reproduce
    // the same delivery log, the same per-class ledgers, and the same
    // metrics report under overload.
    let fingerprint = |driver, ingest, dispatch, batch_ingest| {
        let mut g = Garnet::new(GarnetConfig {
            driver,
            ingest_shards: ingest,
            dispatch_shards: dispatch,
            batch_ingest,
            ..scheduled(OverloadPolicy::CoalesceFrames)
        });
        let (_, log) = register(&mut g, "sink");
        for (i, chunk) in burst(16).chunks(24).enumerate() {
            g.on_frames(chunk.to_vec(), SimTime::from_millis(1 + i as u64));
        }
        g.on_tick(SimTime::from_secs(1));
        let ledgers = *g.qos_ledgers().expect("scheduler is active");
        let report = g.metrics().report();
        let log = log.lock().unwrap().clone();
        (log, ledgers, report)
    };
    let baseline = fingerprint(DriverKind::Fifo, 1, 1, false);
    assert!(!baseline.0.is_empty());
    for driver in [DriverKind::Fifo, DriverKind::Threaded] {
        for ingest in [1usize, 4] {
            for dispatch in [1usize, 4] {
                for batch in [false, true] {
                    let f = fingerprint(driver, ingest, dispatch, batch);
                    let label = format!("{driver:?} {ingest}x{dispatch} batch={batch}");
                    assert_eq!(f.0, baseline.0, "delivery log diverged ({label})");
                    assert_eq!(f.1, baseline.1, "per-class ledgers diverged ({label})");
                    assert_eq!(f.2, baseline.2, "metrics report diverged ({label})");
                }
            }
        }
    }
}

#[test]
fn adaptive_capacity_retunes_within_its_band() {
    let mut g = Garnet::new(GarnetConfig {
        qos: QosConfig {
            mode: QosMode::Scheduled,
            data_floor: Some(8),
            data_ceiling: Some(CAPACITY),
            ..QosConfig::default()
        },
        ..scheduled(OverloadPolicy::Shed)
    });
    let (_, _log) = register(&mut g, "sink");
    assert_eq!(g.qos_capacity(), Some(CAPACITY), "starts at the configured capacity");
    // A light trickle: depth stays shallow, so the p99-driven bound
    // contracts toward the floor.
    for i in 0..40u64 {
        g.on_frames(burst(1).into_iter().take(2).collect(), SimTime::from_millis(1 + i));
    }
    let contracted = g.qos_capacity().expect("scheduler is active");
    assert!(g.qos_retune_count() > 0, "quiescent retuning must engage");
    assert!((8..=CAPACITY).contains(&contracted), "bound left its band: {contracted}");
    assert!(contracted < CAPACITY, "a shallow workload must contract the bound");
    // A sustained overload burst pushes the observed p99 back up and the
    // bound re-expands — still inside the band.
    for round in 0..30u64 {
        g.on_frames(burst(4), SimTime::from_secs(1 + round));
    }
    let expanded = g.qos_capacity().expect("scheduler is active");
    assert!((8..=CAPACITY).contains(&expanded), "bound left its band: {expanded}");
    assert!(expanded > contracted, "sustained overload must re-expand the bound");
    let ledgers = g.qos_ledgers().expect("scheduler is active");
    assert!(ledgers.class(PriorityClass::Data).balanced(), "retuning must not unbalance books");
}

#[test]
fn legacy_mode_reproduces_the_engine_overload_path() {
    // GARNET_TEST_QOS=legacy contract, pinned explicitly: Legacy mode
    // hands the overload config to the engine and the scheduler never
    // arms, so the pre-QoS books are reproduced exactly.
    let mut g = Garnet::new(GarnetConfig {
        driver: DriverKind::Fifo,
        qos: QosConfig { mode: QosMode::Legacy, ..QosConfig::default() },
        ..scheduled(OverloadPolicy::Shed)
    });
    let (slow_id, _log) = register(&mut g, "sink");
    assert!(!g.qos_active());
    assert!(g.qos_ledgers().is_none());
    // Drain limits are refused in legacy mode — the delivery plane
    // stays out of the path entirely.
    g.set_consumer_drain_limit(slow_id, Some(1));
    let out = g.on_frames(burst(8), SimTime::from_millis(1));
    assert_eq!(g.delivery_backlog(), 0, "legacy mode must not stage deliveries");
    assert_eq!(out.overload.offered, out.overload.shed + out.overload.delivered);
    assert!(out.overload.shed > 0, "the engine's own bounded queue still sheds");
}
