//! Flight-recorder contract tests (`--features trace`).
//!
//! The recorder's promise is that a trace is *evidence*: on a fixed
//! workload the single-threaded `Router` and the `ThreadedRouter`
//! produce the same JSONL dump (modulo shard ids), identical across
//! runs and across shard layouts — so a trace diff localises a real
//! behavioural difference, never scheduler noise. With the feature off,
//! the tracer must vanish entirely.

#[cfg(feature = "trace")]
mod traced {
    use garnet::core::actuation::{ActuationConfig, ActuationService};
    use garnet::core::coordinator::{CoordinationMode, SuperCoordinator};
    use garnet::core::filtering::FilterConfig;
    use garnet::core::location::{LocationConfig, LocationService};
    use garnet::core::orphanage::{Orphanage, OrphanageConfig};
    use garnet::core::replicator::MessageReplicator;
    use garnet::core::resource::{MediationPolicy, ResourceManager};
    use garnet::core::router::{
        ControlGraph, OverloadConfig, OverloadPolicy, Router, Services, ShardedDispatch,
        ShardedIngest, ThreadedRouter,
    };
    use garnet::core::service::ServiceEvent;
    use garnet::net::{SubscriberId, SubscriptionTable, TopicFilter};
    use garnet::radio::ReceiverId;
    use garnet::simkit::trace::{TraceConfig, TraceEventKind, TraceOutcome, TraceSnapshot};
    use garnet::simkit::SimTime;
    use garnet::wire::{DataMessage, SensorId, SequenceNumber, StreamId, StreamIndex};

    fn frame(sensor: u32, index: u8, seq: u16) -> garnet::wire::FrameBytes {
        let stream = StreamId::new(SensorId::new(sensor).unwrap(), StreamIndex::new(index));
        DataMessage::builder(stream)
            .seq(SequenceNumber::new(seq))
            .payload(vec![seq as u8, sensor as u8])
            .build()
            .unwrap()
            .encode_to_vec()
            .into()
    }

    /// One facade-boundary event, with its arrival time.
    enum Boundary {
        Frame(garnet::wire::FrameBytes, SimTime),
        Flush(SimTime),
        Tick(SimTime),
    }

    /// A messy multi-sensor schedule: drops (→ reorder gaps),
    /// duplicates, periodic flushes, and a terminal flush + actuation
    /// tick. Frame-at-a-time (each boundary pumped to quiescence), which
    /// is the regime the trace-parity contract covers.
    fn schedule() -> Vec<Boundary> {
        let mut sched = Vec::new();
        let mut t = 0u64;
        for seq in 0..25u16 {
            for sensor in 1..=6u32 {
                if (u32::from(seq) + sensor) % 7 == 0 {
                    continue; // dropped in flight
                }
                sched.push(Boundary::Frame(frame(sensor, 0, seq), SimTime::from_millis(t)));
                t += 3;
                if (u32::from(seq) + sensor) % 5 == 0 {
                    sched.push(Boundary::Frame(frame(sensor, 0, seq), SimTime::from_millis(t)));
                    t += 1;
                }
            }
            if seq % 10 == 9 {
                t += 700;
                sched.push(Boundary::Flush(SimTime::from_millis(t)));
            }
        }
        t += 60_000;
        sched.push(Boundary::Flush(SimTime::from_millis(t)));
        sched.push(Boundary::Tick(SimTime::from_millis(t)));
        sched
    }

    fn control_graph() -> ControlGraph {
        ControlGraph {
            orphanage: Orphanage::new(OrphanageConfig::default()),
            location: LocationService::new(LocationConfig::default(), &[]),
            resource: ResourceManager::new(MediationPolicy::MergeMax),
            actuation: ActuationService::new(ActuationConfig::default()),
            replicator: MessageReplicator::new(Vec::new()),
            coordinator: SuperCoordinator::new(CoordinationMode::Predictive {
                min_confidence: 0.6,
            }),
        }
    }

    /// Even sensors are claimed (sensor 6 by stream filter), odd orphan.
    fn filters() -> Vec<(u32, TopicFilter)> {
        vec![
            (0, TopicFilter::Sensor(SensorId::new(2).unwrap())),
            (1, TopicFilter::Sensor(SensorId::new(4).unwrap())),
            (1, TopicFilter::Stream(StreamId::new(SensorId::new(6).unwrap(), StreamIndex::new(0)))),
        ]
    }

    fn subscriptions() -> SubscriptionTable {
        let mut table = SubscriptionTable::default();
        for (id, filter) in filters() {
            table.subscribe(SubscriberId::new(id), filter);
        }
        table
    }

    fn single_threaded_router() -> Router {
        single_threaded_router_with_cache(garnet::net::DispatchCacheConfig::default())
    }

    fn single_threaded_router_with_cache(cache: garnet::net::DispatchCacheConfig) -> Router {
        let mut dispatch = ShardedDispatch::with_cache(1, cache);
        dispatch.register_subscriber();
        dispatch.register_subscriber();
        for (id, filter) in filters() {
            dispatch.subscribe(SubscriberId::new(id), filter);
        }
        Router::new(Services {
            ingest: ShardedIngest::new(FilterConfig::default(), 1),
            dispatch,
            control: control_graph(),
        })
    }

    /// Pumps the schedule through the single-threaded FIFO router, one
    /// boundary event to quiescence at a time, and returns the trace.
    fn reference_trace(sched: &[Boundary], capacity: usize) -> TraceSnapshot {
        let mut router = single_threaded_router();
        router.configure_trace(TraceConfig { capacity });
        for b in sched {
            let (ev, now) = match b {
                Boundary::Frame(bytes, at) => (
                    ServiceEvent::Frame {
                        receiver: ReceiverId::new(0),
                        rssi_dbm: -40.0,
                        frame: bytes.clone(),
                    },
                    *at,
                ),
                Boundary::Flush(at) => (ServiceEvent::FlushReorder, *at),
                Boundary::Tick(at) => (ServiceEvent::ActuationTick, *at),
            };
            router.enqueue(ev);
            while router.step(now).is_some() {}
        }
        router.trace_snapshot()
    }

    /// The same schedule through the threaded graph; the trace rides on
    /// the terminal report.
    fn threaded_trace(sched: &[Boundary], ingest: usize, dispatch: usize) -> TraceSnapshot {
        let table = subscriptions();
        let mut tr =
            ThreadedRouter::new(FilterConfig::default(), ingest, dispatch, &table, control_graph);
        for b in sched {
            match b {
                Boundary::Frame(bytes, at) => {
                    tr.push_frame(ReceiverId::new(0), -40.0, bytes.clone(), *at);
                }
                Boundary::Flush(at) => {
                    tr.push_flush(*at);
                }
                Boundary::Tick(at) => {
                    tr.push_tick(*at);
                }
            }
        }
        let report = tr.finish();
        assert!(report.failures.is_empty(), "no worker should fail: {:?}", report.failures);
        assert_eq!(report.shed_frames, 0, "Block admission never sheds");
        report.trace
    }

    #[test]
    fn threaded_trace_matches_single_threaded_modulo_shards() {
        let sched = schedule();
        let want = reference_trace(&sched, TraceConfig::default().capacity);
        assert_eq!(want.dropped, 0, "default ring must hold the whole workload");
        // The workload exercises every data-plane stage.
        for kind in ["\"kind\":\"frame\"", "\"kind\":\"filtered\"", "\"kind\":\"orphaned\""] {
            assert!(want.to_jsonl().contains(kind), "reference trace lacks {kind}");
        }
        let got = threaded_trace(&sched, 1, 1);
        assert_eq!(
            got.to_jsonl_modulo_shards(),
            want.to_jsonl_modulo_shards(),
            "threaded 1×1 trace diverged from the FIFO router's"
        );
    }

    #[test]
    fn threaded_trace_is_identical_across_runs_and_layouts() {
        let sched = schedule();
        let base = threaded_trace(&sched, 1, 1).to_jsonl_modulo_shards();
        for (ingest, dispatch) in [(1, 1), (1, 4), (4, 1), (4, 4)] {
            let a = threaded_trace(&sched, ingest, dispatch);
            let b = threaded_trace(&sched, ingest, dispatch);
            // Bit-identical across runs, including shard ids.
            assert_eq!(a.to_jsonl(), b.to_jsonl(), "{ingest}×{dispatch} differed across runs");
            // And layout-invariant once shard ids are dropped.
            assert_eq!(
                a.to_jsonl_modulo_shards(),
                base,
                "{ingest}×{dispatch} diverged from 1×1 modulo shards"
            );
        }
    }

    /// [`reference_trace`] with an explicit cache setting, so the test
    /// below keeps its meaning under the `GARNET_TEST_MATCH_CACHE=off`
    /// CI rerun (which flips what `default()` resolves to).
    fn reference_trace_with_cache(
        sched: &[Boundary],
        cache: garnet::net::DispatchCacheConfig,
    ) -> TraceSnapshot {
        let mut router = single_threaded_router_with_cache(cache);
        router.configure_trace(TraceConfig::default());
        for b in sched {
            let (ev, now) = match b {
                Boundary::Frame(bytes, at) => (
                    ServiceEvent::Frame {
                        receiver: ReceiverId::new(0),
                        rssi_dbm: -40.0,
                        frame: bytes.clone(),
                    },
                    *at,
                ),
                Boundary::Flush(at) => (ServiceEvent::FlushReorder, *at),
                Boundary::Tick(at) => (ServiceEvent::ActuationTick, *at),
            };
            router.enqueue(ev);
            while router.step(now).is_some() {}
        }
        router.trace_snapshot()
    }

    #[test]
    fn cache_rebuilds_are_traced_once_per_cold_stream_and_vanish_when_disabled() {
        use garnet::net::DispatchCacheConfig;
        let enabled = DispatchCacheConfig { enabled: true, ..DispatchCacheConfig::disabled() };
        let sched = schedule();
        let want = reference_trace_with_cache(&sched, enabled);
        let rebuilds: Vec<usize> = want
            .records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.kind == TraceEventKind::CacheRebuild)
            .map(|(i, _)| i)
            .collect();
        // Subscriptions are static, so every stream builds its match set
        // exactly once (cold) and hits thereafter: one rebuild per
        // distinct stream the schedule routes.
        assert_eq!(rebuilds.len(), 6, "one cold build per sensor: {}", want.to_jsonl());
        for &i in &rebuilds {
            let prev = &want.records[i - 1];
            let rec = &want.records[i];
            assert_eq!(prev.kind, TraceEventKind::Filtered, "rebuild must follow its hop");
            assert_eq!((prev.stream, prev.root), (rec.stream, rec.root));
        }
        // The threaded graph traces the same rebuild hops (the
        // modulo-shards equality above covers this too; asserted
        // directly so a regression localises here).
        let table = subscriptions();
        let mut tr = ThreadedRouter::with_options(
            FilterConfig::default(),
            4,
            4,
            &table,
            control_graph,
            garnet::core::router::OverloadPolicy::Block,
            4,
            None,
            enabled,
        );
        for b in &sched {
            match b {
                Boundary::Frame(bytes, at) => {
                    tr.push_frame(ReceiverId::new(0), -40.0, bytes.clone(), *at);
                }
                Boundary::Flush(at) => {
                    tr.push_flush(*at);
                }
                Boundary::Tick(at) => {
                    tr.push_tick(*at);
                }
            }
        }
        let got = tr.finish().trace;
        assert_eq!(
            got.records.iter().filter(|r| r.kind == TraceEventKind::CacheRebuild).count(),
            rebuilds.len(),
            "threaded rebuild count diverged"
        );
        // With the cache disabled every route builds fresh and nothing
        // is a "rebuild": the records vanish and the rest of the trace
        // is unchanged.
        let uncached = reference_trace_with_cache(&sched, DispatchCacheConfig::disabled());
        assert!(
            uncached.records.iter().all(|r| r.kind != TraceEventKind::CacheRebuild),
            "disabled cache must trace no rebuilds"
        );
        let strip = |snap: &TraceSnapshot| {
            snap.records
                .iter()
                .filter(|r| r.kind != TraceEventKind::CacheRebuild)
                .cloned()
                .collect::<Vec<_>>()
        };
        assert_eq!(strip(&want), strip(&uncached), "cache toggle must only add rebuild hops");
    }

    #[test]
    fn ring_wraps_with_exact_drop_accounting_end_to_end() {
        let sched = schedule();
        let full = reference_trace(&sched, TraceConfig::default().capacity);
        let total = full.records.len();
        let capacity = 32usize;
        assert!(total > capacity, "workload must overflow the small ring");
        let small = reference_trace(&sched, capacity);
        assert_eq!(small.records.len(), capacity);
        assert_eq!(small.dropped, (total - capacity) as u64, "dropped count must be exact");
        // The ring keeps the newest records, in order.
        assert_eq!(small.records, full.records[total - capacity..].to_vec());
        // Stage statistics survive eviction: hops count every record.
        let full_hops: u64 = full.stages.iter().map(|s| s.hops).sum();
        let small_hops: u64 = small.stages.iter().map(|s| s.hops).sum();
        assert_eq!(small_hops, full_hops);
    }

    #[test]
    fn shed_frames_are_traced_with_shed_outcome() {
        let mut router = single_threaded_router();
        let mut shed_router = {
            let mut dispatch = ShardedDispatch::new(1);
            dispatch.register_subscriber();
            for (id, filter) in filters() {
                dispatch.subscribe(SubscriberId::new(id), filter);
            }
            Router::with_overload(
                Services {
                    ingest: ShardedIngest::new(FilterConfig::default(), 1),
                    dispatch,
                    control: control_graph(),
                },
                Some(OverloadConfig { capacity: 2, policy: OverloadPolicy::Shed }),
            )
        };
        // Queue three frames without draining: the third admission
        // sheds the oldest (root 0).
        for seq in 0..3u16 {
            shed_router.admit_frame(ReceiverId::new(0), -40.0, frame(1, 0, seq), SimTime::ZERO);
        }
        let snap = shed_router.trace_snapshot();
        let shed: Vec<_> =
            snap.records.iter().filter(|r| r.outcome == TraceOutcome::Shed).collect();
        assert_eq!(shed.len(), 1, "exactly one frame was shed: {}", snap.to_jsonl());
        assert_eq!(shed[0].kind, TraceEventKind::Frame);
        assert_eq!(shed[0].root, Some(0), "the oldest admitted frame is the victim");
        // The unbounded router never sheds.
        router.admit_frame(ReceiverId::new(0), -40.0, frame(1, 0, 0), SimTime::ZERO);
        assert!(router
            .trace_snapshot()
            .records
            .iter()
            .all(|r| r.outcome == TraceOutcome::Delivered));
    }

    #[test]
    fn coalesced_frames_are_traced_with_coalesced_outcome() {
        let mut dispatch = ShardedDispatch::new(1);
        dispatch.register_subscriber();
        let mut router = Router::with_overload(
            Services {
                ingest: ShardedIngest::new(FilterConfig::default(), 1),
                dispatch,
                control: control_graph(),
            },
            Some(OverloadConfig { capacity: 1, policy: OverloadPolicy::CoalesceFrames }),
        );
        // seq 0 queued; seq 1 arrives at capacity and wins → the queued
        // copy (root 0) is traced as coalesced away.
        router.admit_frame(ReceiverId::new(0), -40.0, frame(1, 0, 0), SimTime::ZERO);
        router.admit_frame(ReceiverId::new(0), -40.0, frame(1, 0, 1), SimTime::ZERO);
        // seq 0 arrives again and loses to the queued seq 1 → the
        // arriving copy is traced as coalesced.
        router.admit_frame(ReceiverId::new(0), -40.0, frame(1, 0, 0), SimTime::ZERO);
        let snap = router.trace_snapshot();
        let coalesced: Vec<_> =
            snap.records.iter().filter(|r| r.outcome == TraceOutcome::Coalesced).collect();
        assert_eq!(coalesced.len(), 2, "one loser per coalescing event: {}", snap.to_jsonl());
        assert!(coalesced.iter().all(|r| r.kind == TraceEventKind::Frame));
        assert_eq!(coalesced[0].root, Some(0), "first loser: the queued seq-0 copy");
        assert_eq!(coalesced[1].root, Some(2), "second loser: the arriving seq-0 copy");
        // Draining delivers the surviving seq-1 frame, traced normally.
        while router.step(SimTime::ZERO).is_some() {}
        let totals = router.overload_totals();
        assert_eq!((totals.delivered, totals.coalesced), (1, 2));
    }

    #[test]
    fn facade_exposes_trace_snapshots_and_jsonl() {
        use garnet::core::middleware::{Garnet, GarnetConfig};
        let mut g = Garnet::new(GarnetConfig::default());
        g.on_frame(ReceiverId::new(0), -50.0, &frame(1, 0, 0), SimTime::ZERO);
        let snap = g.trace_snapshot();
        assert!(!snap.records.is_empty(), "facade pumping must be traced");
        let jsonl = g.trace_jsonl();
        assert_eq!(jsonl.lines().count(), snap.records.len());
        assert!(jsonl.lines().all(|l| l.starts_with("{\"at_us\":") && l.ends_with('}')));
    }

    /// Runs the boundary schedule through the facade under `driver` and
    /// returns the trace dump with shard ids stripped.
    fn facade_trace(driver: garnet::core::DriverKind, shards: usize) -> String {
        use garnet::core::middleware::{Garnet, GarnetConfig};
        let mut g = Garnet::new(GarnetConfig {
            driver,
            ingest_shards: shards,
            dispatch_shards: shards,
            ..GarnetConfig::default()
        });
        let token = g.issue_default_token("app");
        let (consumer, _) = garnet::core::pipeline::SharedCountConsumer::new("app");
        let id = g.register_consumer(Box::new(consumer), &token, 0).unwrap();
        for (_, filter) in filters() {
            g.subscribe(id, filter, &token).unwrap();
        }
        for b in schedule() {
            match b {
                Boundary::Frame(bytes, at) => {
                    g.on_frame(ReceiverId::new(0), -40.0, &bytes, at);
                }
                Boundary::Flush(at) | Boundary::Tick(at) => {
                    g.on_tick(at);
                }
            }
        }
        g.trace_snapshot().to_jsonl_modulo_shards()
    }

    #[test]
    fn facade_trace_is_driver_invariant_modulo_shards() {
        use garnet::core::DriverKind;
        let want = facade_trace(DriverKind::Fifo, 1);
        assert!(want.contains("\"kind\":\"filtered\""), "workload must reach dispatch");
        for shards in [1usize, 4] {
            assert_eq!(
                facade_trace(DriverKind::Fifo, shards),
                want,
                "FIFO {shards}×{shards} diverged"
            );
            assert_eq!(
                facade_trace(DriverKind::Threaded, shards),
                want,
                "threaded {shards}×{shards} diverged"
            );
        }
    }

    mod properties {
        use super::*;
        use garnet::core::middleware::{Garnet, GarnetConfig};
        use proptest::prelude::*;

        proptest! {
            /// The trace is causally complete on the data plane: every
            /// `Filtered` hop either went to a subscriber (deliveries
            /// escape the router untraced) or shows up again as an
            /// `Orphaned` hop for the same root and stream — exactly one
            /// of the two, never both, never neither.
            #[test]
            fn every_filtered_hop_is_claimed_or_orphaned(
                subscribed_raw in proptest::collection::vec(1u32..=6, 0..=6),
                frames in proptest::collection::vec((1u32..=6, 0u16..12), 1..40),
            ) {
                let subscribed: std::collections::BTreeSet<u32> =
                    subscribed_raw.into_iter().collect();
                let mut g = Garnet::new(GarnetConfig::default());
                let token = g.issue_default_token("app");
                let (consumer, _) =
                    garnet::core::pipeline::SharedCountConsumer::new("app");
                let id = g.register_consumer(Box::new(consumer), &token, 0).unwrap();
                for s in &subscribed {
                    g.subscribe(id, TopicFilter::Sensor(SensorId::new(*s).unwrap()), &token)
                        .unwrap();
                }
                let mut t = 0u64;
                for (sensor, seq) in &frames {
                    g.on_frame(
                        ReceiverId::new(0),
                        -45.0,
                        &frame(*sensor, 0, *seq),
                        SimTime::from_millis(t),
                    );
                    t += 2;
                }
                // A far-future tick flushes every stalled reorder buffer
                // so gapped messages also make their Filtered hop.
                g.on_tick(SimTime::from_millis(t + 120_000));
                let records = g.trace_snapshot().records;
                for (i, r) in records.iter().enumerate() {
                    if r.kind != TraceEventKind::Filtered
                        || r.outcome != TraceOutcome::Delivered
                    {
                        continue;
                    }
                    let sensor = r.sensor.expect("filtered hops carry a sensor id");
                    let claimed = subscribed.contains(&sensor);
                    let orphaned_later = records[i + 1..].iter().any(|o| {
                        o.kind == TraceEventKind::Orphaned
                            && o.root == r.root
                            && o.stream == r.stream
                    });
                    prop_assert!(
                        claimed != orphaned_later,
                        "filtered hop (root {:?}, stream {:?}): claimed={} orphaned={}",
                        r.root,
                        r.stream,
                        claimed,
                        orphaned_later,
                    );
                }
            }
        }
    }
}

#[cfg(not(feature = "trace"))]
mod disabled {
    use garnet::core::middleware::{Garnet, GarnetConfig};
    use garnet::radio::ReceiverId;
    use garnet::simkit::{SimTime, Tracer};
    use garnet::wire::{DataMessage, SensorId, SequenceNumber, StreamId, StreamIndex};

    #[test]
    fn tracer_is_a_no_op_and_snapshots_are_empty() {
        assert_eq!(std::mem::size_of::<Tracer>(), 0, "disabled tracer must be zero-sized");
        let mut g = Garnet::new(GarnetConfig::default());
        let stream = StreamId::new(SensorId::new(1).unwrap(), StreamIndex::new(0));
        let frame = DataMessage::builder(stream)
            .seq(SequenceNumber::new(0))
            .payload(vec![1])
            .build()
            .unwrap()
            .encode_to_vec();
        g.on_frame(ReceiverId::new(0), -50.0, &frame, SimTime::ZERO);
        assert!(g.trace_snapshot().records.is_empty());
        assert!(g.trace_jsonl().is_empty());
    }
}
