//! Sharded ingest ≡ unsharded ingest: partitioning the filtering hot
//! path by sensor id must never change what is delivered, in what
//! per-stream order, or what the counters say. The simulation driver
//! relies on this equivalence to keep every experiment bit-reproducible
//! regardless of `ingest_shards`.

use garnet::core::filtering::FilterConfig;
use garnet::core::router::ShardedIngest;
use garnet::core::stream::{ShardedStreamRegistry, StreamInfo};
use garnet::radio::ReceiverId;
use garnet::simkit::SimTime;
use garnet::wire::{DataMessage, SensorId, SequenceNumber, StreamId, StreamIndex};

use proptest::prelude::*;

fn frame(sensor: u32, index: u8, seq: u16) -> Vec<u8> {
    let stream = StreamId::new(SensorId::new(sensor).unwrap(), StreamIndex::new(index));
    DataMessage::builder(stream)
        .seq(SequenceNumber::new(seq))
        .payload(vec![seq as u8, index])
        .build()
        .unwrap()
        .encode_to_vec()
}

/// A delivery log: (raw stream id, sequence number) in delivery order.
type DeliveryLog = Vec<(u32, u16)>;
/// The aggregate counter tuple: (delivered, duplicates, reordered,
/// gaps, restarts, streams).
type Counters = (u64, u64, u64, u64, u64, usize);

/// Replays `schedule` (frame bytes + arrival time) through an ingest
/// stage with `shards` partitions, flushing reorder buffers at the end,
/// and returns the (stream, seq) delivery log plus the counter tuple.
fn replay(schedule: &[(Vec<u8>, SimTime)], shards: usize) -> (DeliveryLog, Counters) {
    let mut ingest = ShardedIngest::new(FilterConfig::default(), shards);
    let mut log: Vec<(u32, u16)> = Vec::new();
    let mut last = SimTime::ZERO;
    for (bytes, at) in schedule {
        let fr: garnet::wire::FrameBytes = bytes.clone().into();
        let result = ingest.on_frame(ReceiverId::new(0), -40.0, &fr, *at);
        log.extend(
            result.deliveries.iter().map(|d| (d.msg.stream().to_raw(), d.msg.seq().as_u16())),
        );
        last = *at;
    }
    let flushed = ingest.on_tick(last.saturating_add(garnet::simkit::SimDuration::from_secs(60)));
    log.extend(flushed.iter().map(|d| (d.msg.stream().to_raw(), d.msg.seq().as_u16())));
    let counters = (
        ingest.delivered_count(),
        ingest.duplicate_count(),
        ingest.reordered_count(),
        ingest.gap_count(),
        ingest.restart_count(),
        ingest.stream_count(),
    );
    (log, counters)
}

/// Projects a delivery log onto one stream's sequence-number order.
fn per_stream(log: &[(u32, u16)], raw: u32) -> Vec<u16> {
    log.iter().filter(|(r, _)| *r == raw).map(|(_, s)| *s).collect()
}

proptest! {
    // A messy multi-sensor arrival schedule — duplicates, adjacent
    // swaps, drops — delivers the same per-stream sequences and the
    // same aggregate counters at every shard count.
    #[test]
    fn shard_count_invariant_under_noise(
        sensors in 2u32..7,
        n in 1u16..60,
        dup_mask in proptest::collection::vec(0u8..4, 60),
        swap_mask in proptest::collection::vec(proptest::bool::ANY, 60),
        drop_mask in proptest::collection::vec(0u8..8, 60),
    ) {
        // Build one interleaved schedule over all sensors.
        let mut schedule: Vec<(Vec<u8>, SimTime)> = Vec::new();
        let mut t = 0u64;
        for seq in 0..n {
            for sensor in 1..=sensors {
                let i = (seq as usize + sensor as usize) % dup_mask.len();
                if drop_mask[i] == 0 {
                    continue; // dropped in flight
                }
                let copies = 1 + usize::from(dup_mask[i] % 2);
                for _ in 0..copies {
                    schedule.push((frame(sensor, 0, seq), SimTime::from_millis(t)));
                    t += 1;
                }
            }
        }
        // Adjacent swaps to simulate receiver-path reordering.
        let mut k = 0;
        while k + 1 < schedule.len() {
            if swap_mask[k % swap_mask.len()] {
                schedule.swap(k, k + 1);
            }
            k += 2;
        }

        let (base_log, base_counters) = replay(&schedule, 1);
        for shards in [2usize, 4, 8] {
            let (log, counters) = replay(&schedule, shards);
            prop_assert_eq!(counters, base_counters, "counters diverged at {} shards", shards);
            for sensor in 1..=sensors {
                let raw = StreamId::new(
                    SensorId::new(sensor).unwrap(),
                    StreamIndex::new(0),
                ).to_raw();
                prop_assert_eq!(
                    per_stream(&log, raw),
                    per_stream(&base_log, raw),
                    "sensor {} diverged at {} shards", sensor, shards
                );
            }
        }
    }
}

/// The observable projection of a registry entry.
fn fingerprint(info: &StreamInfo) -> (u32, u64, u64, bool, bool) {
    (info.stream.to_raw(), info.messages, info.payload_bytes, info.claimed, info.derived)
}

proptest! {
    // The sharded stream registry's merged discovery view is identical
    // to the unsharded one — same entries, same ascending stream-id
    // order, same per-entry statistics — whatever interleaving of
    // messages and claim flips it absorbed.
    #[test]
    fn sharded_registry_discovery_is_shard_count_invariant(
        ops in proptest::collection::vec((1u32..20, 0u8..2, 1usize..64, proptest::bool::ANY), 1..80),
    ) {
        let mut registries: Vec<ShardedStreamRegistry> =
            [1usize, 4].iter().map(|&n| ShardedStreamRegistry::new(n)).collect();
        for (i, &(sensor, index, payload_len, claim)) in ops.iter().enumerate() {
            let stream = StreamId::new(SensorId::new(sensor).unwrap(), StreamIndex::new(index));
            let at = SimTime::from_millis(i as u64);
            for reg in &mut registries {
                reg.note_message(stream, payload_len, at, false);
                if claim {
                    reg.set_claimed(stream, true);
                }
            }
        }
        let project = |reg: &ShardedStreamRegistry| -> Vec<(u32, u64, u64, bool, bool)> {
            reg.discover_unclaimed().into_iter().map(fingerprint).collect()
        };
        let base = project(&registries[0]);
        prop_assert_eq!(&project(&registries[1]), &base, "discover_unclaimed diverged at 4 shards");
        prop_assert_eq!(registries[1].len(), registries[0].len());
        // The unclaimed view must be sorted by raw stream id (the
        // deterministic-merge contract the quiesce sweep relies on).
        let mut sorted = base.clone();
        sorted.sort_by_key(|f| f.0);
        prop_assert_eq!(base, sorted);
    }
}

#[test]
fn corrupt_frames_shard_deterministically() {
    // A frame with a valid header prefix but corrupt body must charge
    // its CRC failure to the same shard every time, so aggregate
    // counters stay shard-invariant.
    let mut good = frame(3, 0, 0);
    let idx = good.len() - 3;
    good[idx] ^= 0xFF; // corrupt payload, leave stream id intact
    let good: garnet::wire::FrameBytes = good.into();
    let mut base = None;
    for shards in [1usize, 2, 4, 8] {
        let mut ingest = ShardedIngest::new(FilterConfig::default(), shards);
        ingest.on_frame(ReceiverId::new(0), -40.0, &good, SimTime::ZERO);
        let counters = (ingest.crc_failure_count(), ingest.delivered_count());
        match &base {
            None => base = Some(counters),
            Some(b) => assert_eq!(&counters, b, "shards={shards}"),
        }
    }
    assert_eq!(base, Some((1, 0)));
}
