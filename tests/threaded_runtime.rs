//! The live (threaded) deployment mode: middleware on its own thread,
//! fed over the crossbeam bus — the paper's "asynchronous message
//! exchange" (§3) with real threads instead of the simulation driver.
//!
//! Since the facade hosts the threaded graph behind
//! [`garnet::core::DriverKind::Threaded`], the deployment collapses to
//! ordinary [`Garnet`] calls: the worker pools live *inside* the
//! middleware, and the only hand-rolled thread left is the bus drain.

use std::sync::atomic::Ordering;
use std::thread;
use std::time::Duration;

use garnet::core::middleware::{Garnet, GarnetConfig};
use garnet::core::pipeline::SharedCountConsumer;
use garnet::core::router::ThreadedIngest;
use garnet::core::DriverKind;
use garnet::net::{ShardPool, SubscriptionTable, ThreadedBus, TopicFilter};
use garnet::radio::ReceiverId;
use garnet::simkit::SimTime;
use garnet::wire::{DataMessage, SensorId, SequenceNumber, StreamId, StreamIndex};

fn threaded_config(shards: usize) -> GarnetConfig {
    GarnetConfig {
        driver: DriverKind::Threaded,
        ingest_shards: shards,
        dispatch_shards: shards,
        ..GarnetConfig::default()
    }
}

/// What flows over the bus to the middleware thread.
enum ToMiddleware {
    Frame { receiver: u32, rssi: f64, bytes: Vec<u8>, at_us: u64 },
    Shutdown,
}

#[test]
fn middleware_runs_behind_the_threaded_bus() {
    let bus: ThreadedBus<ToMiddleware> = ThreadedBus::new();
    let inbox = bus.register("garnet", 1024).unwrap();

    // The middleware thread: owns Garnet, drains its endpoint.
    let (consumer, delivered) = SharedCountConsumer::new("app");
    let handle = thread::spawn(move || {
        let mut garnet = Garnet::new(threaded_config(2));
        let token = garnet.issue_default_token("app");
        let id = garnet.register_consumer(Box::new(consumer), &token, 0).unwrap();
        garnet.subscribe(id, TopicFilter::All, &token).unwrap();
        let mut frames = 0u64;
        let mut last = SimTime::ZERO;
        while let Ok(msg) = inbox.recv() {
            match msg {
                ToMiddleware::Frame { receiver, rssi, bytes, at_us } => {
                    last = SimTime::from_micros(at_us);
                    garnet.on_frame(ReceiverId::new(receiver), rssi, &bytes, last);
                    frames += 1;
                }
                ToMiddleware::Shutdown => break,
            }
        }
        garnet.shutdown(last).expect("no archive configured, shutdown cannot time out");
        (frames, garnet.filtering().duplicate_count())
    });

    // Two "receiver array" threads feeding overlapping copies of the
    // same sensor stream.
    let stream = StreamId::new(SensorId::new(7).unwrap(), StreamIndex::new(0));
    let feeders: Vec<_> = (0..2u32)
        .map(|rx| {
            let bus = bus.clone();
            thread::spawn(move || {
                for seq in 0..500u16 {
                    let bytes = DataMessage::builder(stream)
                        .seq(SequenceNumber::new(seq))
                        .payload(vec![seq as u8])
                        .build()
                        .unwrap()
                        .encode_to_vec();
                    bus.send_blocking(
                        "garnet",
                        ToMiddleware::Frame {
                            receiver: rx,
                            rssi: -50.0,
                            bytes,
                            at_us: u64::from(seq) * 1_000,
                        },
                    )
                    .expect("middleware endpoint lives for the run");
                }
            })
        })
        .collect();

    for f in feeders {
        f.join().unwrap();
    }
    // Give the drain a moment, then stop.
    thread::sleep(Duration::from_millis(50));
    bus.send("garnet", ToMiddleware::Shutdown).unwrap();
    let (frames, duplicates) = handle.join().unwrap();

    assert_eq!(frames, 1_000, "both feeders' frames processed");
    // Exactly one copy of each message delivered; the rest were
    // duplicates (arrival interleaving varies, the *sum* must not).
    assert_eq!(delivered.load(Ordering::Relaxed) + duplicates, 1_000);
    assert_eq!(delivered.load(Ordering::Relaxed), 500);
}

/// Runs `f` with the default panic hook silenced, so an *injected*
/// worker panic doesn't spray a backtrace into the test output.
fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(hook);
    out
}

#[test]
fn shard_pool_worker_panic_is_supervised_not_hung() {
    let (out, failures) = with_quiet_panics(|| {
        let mut pool: ShardPool<u32, u32> = ShardPool::new(3, 64, |_shard| {
            Box::new(|x: u32| {
                if x == 13 {
                    panic!("injected fault");
                }
                x * 2
            })
        });
        // Shard 1 gets the poison pill mid-stream; shards 0 and 2 keep
        // working before and after the crash.
        for x in [1u32, 2, 13, 3, 5] {
            pool.submit((x % 3) as usize, x);
        }
        pool.finish()
    });
    // Jobs on healthy shards are delivered in submission order; the
    // panicked job's slot is skipped, not waited on forever.
    assert_eq!(out, vec![2, 4, 6, 10]);
    assert_eq!(failures.len(), 1, "exactly the injected fault surfaces");
    assert_eq!(failures[0].shard, 1);
    assert_eq!(failures[0].reason, "injected fault");
}

#[test]
fn threaded_ingest_ledger_balances_end_to_end() {
    let mut subs = SubscriptionTable::new();
    subs.subscribe(garnet::net::SubscriberId::new(1), TopicFilter::All);
    let mut ingest = ThreadedIngest::new(garnet::core::FilterConfig::default(), 2, 4, &subs);
    let frame = |sensor: u32, seq: u16| {
        DataMessage::builder(StreamId::new(SensorId::new(sensor).unwrap(), StreamIndex::new(0)))
            .seq(SequenceNumber::new(seq))
            .payload(vec![seq as u8])
            .build()
            .unwrap()
            .encode_to_vec()
    };
    let mut batches = Vec::new();
    for seq in 0..10u16 {
        for sensor in 1..=2u32 {
            batches.extend(ingest.push(
                ReceiverId::new(0),
                -40.0,
                frame(sensor, seq).into(),
                SimTime::ZERO,
            ));
        }
    }
    let report = ingest.finish();
    batches.extend(report.batches);
    let delivered: u64 = batches.iter().map(|b| b.deliveries.len() as u64).sum();
    // offered == processed + shed + lost — and on a healthy pool the
    // last two are zero, so every offered frame comes out the far end.
    assert_eq!(report.offered_frames, 20);
    assert_eq!(report.shed_frames, 0);
    assert_eq!(report.lost_frames, 0);
    assert_eq!(delivered, 20);
    assert!(report.failures.is_empty());
}

#[test]
fn threaded_shutdown_joins_without_losing_in_flight_roots() {
    let mut garnet = Garnet::new(threaded_config(4));
    let token = garnet.issue_default_token("app");
    let (consumer, delivered) = SharedCountConsumer::new("app");
    let id = garnet.register_consumer(Box::new(consumer), &token, 0).unwrap();
    garnet.subscribe(id, TopicFilter::All, &token).unwrap();

    let stream = |sensor: u32| StreamId::new(SensorId::new(sensor).unwrap(), StreamIndex::new(0));
    let mut frames = Vec::new();
    for seq in 0..100u16 {
        for sensor in 1..=4u32 {
            frames.push((
                ReceiverId::new(0),
                -45.0,
                DataMessage::builder(stream(sensor))
                    .seq(SequenceNumber::new(seq))
                    .payload(vec![seq as u8])
                    .build()
                    .unwrap()
                    .encode_to_vec(),
            ));
        }
    }
    let now = SimTime::from_micros(1_000);
    garnet.on_frames(frames, now);
    garnet.shutdown(now).expect("no archive configured, shutdown cannot time out");

    // Every offered frame made it through filtering and dispatch before
    // the pools retired: nothing in flight was dropped on the floor.
    assert_eq!(garnet.filtering().delivered_count(), 400);
    assert_eq!(garnet.dispatching().delivery_count(), 400);
    assert_eq!(delivered.load(Ordering::Relaxed), 400);

    // The facade still answers reads after shutdown.
    let report = garnet.metrics().report();
    assert!(report.contains("filtering.delivered"));
    assert_eq!(garnet.streams().len(), 4);
    assert_eq!(garnet.queue_depth_p99(), 0, "unbounded queue records no samples");
}

#[test]
fn dropping_a_threaded_garnet_joins_its_pools() {
    // No explicit shutdown: Drop must join the worker pools without
    // deadlocking (the test hanging is the failure mode).
    let mut garnet = Garnet::new(threaded_config(2));
    let token = garnet.issue_default_token("app");
    let (consumer, delivered) = SharedCountConsumer::new("app");
    let id = garnet.register_consumer(Box::new(consumer), &token, 0).unwrap();
    garnet.subscribe(id, TopicFilter::All, &token).unwrap();
    let stream = StreamId::new(SensorId::new(3).unwrap(), StreamIndex::new(0));
    for seq in 0..50u16 {
        let bytes = DataMessage::builder(stream)
            .seq(SequenceNumber::new(seq))
            .payload(vec![seq as u8])
            .build()
            .unwrap()
            .encode_to_vec();
        garnet.on_frame(ReceiverId::new(0), -50.0, &bytes, SimTime::from_micros(seq.into()));
    }
    assert_eq!(delivered.load(Ordering::Relaxed), 50);
    drop(garnet);
}

#[test]
fn bus_endpoints_are_isolated() {
    let bus: ThreadedBus<u32> = ThreadedBus::new();
    let a = bus.register("a", 8).unwrap();
    let b = bus.register("b", 8).unwrap();
    bus.send("a", 1).unwrap();
    bus.send("b", 2).unwrap();
    assert_eq!(a.try_recv().unwrap(), 1);
    assert_eq!(b.try_recv().unwrap(), 2);
    assert!(a.try_recv().is_err());
}
