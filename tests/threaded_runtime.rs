//! The live (threaded) deployment mode: middleware on its own thread,
//! fed over the crossbeam bus — the paper's "asynchronous message
//! exchange" (§3) with real threads instead of the simulation driver.

use std::sync::atomic::Ordering;
use std::thread;
use std::time::Duration;

use garnet::core::middleware::{Garnet, GarnetConfig};
use garnet::core::pipeline::SharedCountConsumer;
use garnet::net::{ThreadedBus, TopicFilter};
use garnet::radio::ReceiverId;
use garnet::simkit::SimTime;
use garnet::wire::{DataMessage, SensorId, SequenceNumber, StreamId, StreamIndex};

/// What flows over the bus to the middleware thread.
enum ToMiddleware {
    Frame { receiver: u32, rssi: f64, bytes: Vec<u8>, at_us: u64 },
    Shutdown,
}

#[test]
fn middleware_runs_behind_the_threaded_bus() {
    let bus: ThreadedBus<ToMiddleware> = ThreadedBus::new();
    let inbox = bus.register("garnet", 1024).unwrap();

    // The middleware thread: owns Garnet, drains its endpoint.
    let (consumer, delivered) = SharedCountConsumer::new("app");
    let handle = thread::spawn(move || {
        let mut garnet = Garnet::new(GarnetConfig::default());
        let token = garnet.issue_default_token("app");
        let id = garnet.register_consumer(Box::new(consumer), &token, 0).unwrap();
        garnet.subscribe(id, TopicFilter::All, &token).unwrap();
        let mut frames = 0u64;
        while let Ok(msg) = inbox.recv() {
            match msg {
                ToMiddleware::Frame { receiver, rssi, bytes, at_us } => {
                    garnet.on_frame(
                        ReceiverId::new(receiver),
                        rssi,
                        &bytes,
                        SimTime::from_micros(at_us),
                    );
                    frames += 1;
                }
                ToMiddleware::Shutdown => break,
            }
        }
        (frames, garnet.filtering().duplicate_count())
    });

    // Two "receiver array" threads feeding overlapping copies of the
    // same sensor stream.
    let stream = StreamId::new(SensorId::new(7).unwrap(), StreamIndex::new(0));
    let feeders: Vec<_> = (0..2u32)
        .map(|rx| {
            let bus = bus.clone();
            thread::spawn(move || {
                for seq in 0..500u16 {
                    let bytes = DataMessage::builder(stream)
                        .seq(SequenceNumber::new(seq))
                        .payload(vec![seq as u8])
                        .build()
                        .unwrap()
                        .encode_to_vec();
                    bus.send_blocking(
                        "garnet",
                        ToMiddleware::Frame {
                            receiver: rx,
                            rssi: -50.0,
                            bytes,
                            at_us: u64::from(seq) * 1_000,
                        },
                    )
                    .expect("middleware endpoint lives for the run");
                }
            })
        })
        .collect();

    for f in feeders {
        f.join().unwrap();
    }
    // Give the drain a moment, then stop.
    thread::sleep(Duration::from_millis(50));
    bus.send("garnet", ToMiddleware::Shutdown).unwrap();
    let (frames, duplicates) = handle.join().unwrap();

    assert_eq!(frames, 1_000, "both feeders' frames processed");
    // Exactly one copy of each message delivered; the rest were
    // duplicates (arrival interleaving varies, the *sum* must not).
    assert_eq!(delivered.load(Ordering::Relaxed) + duplicates, 1_000);
    assert_eq!(delivered.load(Ordering::Relaxed), 500);
}

#[test]
fn bus_endpoints_are_isolated() {
    let bus: ThreadedBus<u32> = ThreadedBus::new();
    let a = bus.register("a", 8).unwrap();
    let b = bus.register("b", 8).unwrap();
    bus.send("a", 1).unwrap();
    bus.send("b", 2).unwrap();
    assert_eq!(a.try_recv().unwrap(), 1);
    assert_eq!(b.try_recv().unwrap(), 2);
    assert!(a.try_recv().is_err());
}
