//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to a crate registry, so
//! the workspace vendors the *exact* API surface it uses: the
//! [`RngCore`] trait (implemented by `garnet-simkit`'s deterministic
//! generator) and the [`Rng::gen_range`] convenience over it. Nothing
//! here generates entropy by itself — every generator in the workspace
//! is explicitly seeded.

use std::fmt;
use std::ops::Range;

/// Error type carried by [`RngCore::try_fill_bytes`].
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core random-number-generator interface (mirrors `rand::RngCore`).
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest`, reporting failure as an error (never fails here).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(v) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                let v = (rng.next_u64() as u128) % span;
                (start as u128).wrapping_add(v) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        self.start + (self.end - self.start) * unit
    }
}

/// Convenience sampling over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniform boolean with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 step: decent spread for range tests.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Counter(1);
        for _ in 0..1000 {
            let v: u32 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = r.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i: i64 = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }
}
