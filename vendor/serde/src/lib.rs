//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on wire types to
//! declare intent (external tooling serializes them), but contains no
//! runtime serialization call sites. With no crate registry available,
//! this stand-in keeps the annotations compiling: the traits are
//! markers and the derives (see `serde_derive`) emit empty impls.
//! Swapping back to real serde is a one-line change in the workspace
//! manifest.

/// Marker for types declared serializable.
pub trait Serialize {}

/// Marker for types declared deserializable.
pub trait Deserialize<'de>: Sized {}

/// Marker for types deserializable without borrowing (mirrors
/// `serde::de::DeserializeOwned`).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// `serde::de` module shim.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// `serde::ser` module shim.
pub mod ser {
    pub use crate::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
