//! Offline stand-in for `criterion`.
//!
//! Keeps the workspace's `[[bench]]` targets compiling and producing
//! useful numbers without a crate registry: each benchmark runs a short
//! warm-up then `sample_size` timed iterations and reports the median
//! per-iteration wall time (plus derived throughput when declared).
//! No statistical analysis, outlier rejection, or HTML reports.

use std::fmt;
use std::time::{Duration, Instant};

/// Wall-clock budget per benchmark function.
const TIME_BUDGET: Duration = Duration::from_secs(5);

/// Opaque value sink (re-export of the std hint).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared work per iteration, for throughput reporting.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id from a name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, once per sample, after one warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let started = Instant::now();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.results.push(t0.elapsed());
            if started.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the target measurement time (accepted for API parity; the
    /// stand-in uses its fixed per-bench budget).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: self.sample_size, results: Vec::new() };
        f(&mut b);
        self.report(&id.to_string(), &mut b.results);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: self.sample_size, results: Vec::new() };
        f(&mut b, input);
        self.report(&id.to_string(), &mut b.results);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}

    fn report(&mut self, id: &str, samples: &mut [Duration]) {
        if samples.is_empty() {
            println!("{}/{id:<40} (no samples)", self.name);
            return;
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if median.as_nanos() > 0 => {
                let bps = n as f64 / median.as_secs_f64();
                format!("  {:>12.1} MiB/s", bps / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) if median.as_nanos() > 0 => {
                let eps = n as f64 / median.as_secs_f64();
                format!("  {eps:>12.0} elem/s")
            }
            _ => String::new(),
        };
        println!(
            "{}/{id:<40} median {:>12} over {} samples{rate}",
            self.name,
            human(median),
            samples.len(),
        );
        self.criterion.reported += 1;
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    reported: u64,
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self, sample_size: 10, throughput: None }
    }

    /// Benchmarks reported so far (used by the harness macros).
    pub fn reported(&self) -> u64 {
        self.reported
    }
}

/// Bundles benchmark functions into one runner (criterion API parity).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// The bench-target entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn times_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3).throughput(Throughput::Elements(10));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &k| {
            b.iter(|| black_box(k * 2))
        });
        g.finish();
        assert_eq!(c.reported(), 2);
    }
}
