//! Offline stand-in for `crossbeam`: the bounded MPMC channel surface
//! the bus layer uses, built on `Mutex` + `Condvar`. Semantics mirror
//! `crossbeam-channel`: cloneable senders and receivers, disconnect on
//! last-drop of either side, non-blocking `try_*` variants. A capacity
//! of 0 (rendezvous) is approximated as capacity 1 — nothing in this
//! workspace creates rendezvous channels.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        capacity: usize,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Creates a bounded channel of the given capacity.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        bounded(usize::MAX)
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`].
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "Full(..)"),
                TrySendError::Disconnected(_) => write!(f, "Disconnected(..)"),
            }
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// Empty and all senders are gone.
        Disconnected,
    }

    /// The sending half. Cloneable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Sender<T> {
        /// Blocks until the value is queued or all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.chan.queue.lock().unwrap();
            loop {
                if self.chan.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(value));
                }
                if q.len() < self.chan.capacity {
                    q.push_back(value);
                    self.chan.not_empty.notify_one();
                    return Ok(());
                }
                q = self.chan.not_full.wait(q).unwrap();
            }
        }

        /// Queues without blocking, or reports why it could not.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut q = self.chan.queue.lock().unwrap();
            if self.chan.receivers.load(Ordering::SeqCst) == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if q.len() >= self.chan.capacity {
                return Err(TrySendError::Full(value));
            }
            q.push_back(value);
            self.chan.not_empty.notify_one();
            Ok(())
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.queue.lock().unwrap().len()
        }

        /// True when nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::SeqCst);
            Sender { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Wake receivers blocked on an empty queue so they can
                // observe the disconnect.
                self.chan.not_empty.notify_all();
            }
        }
    }

    /// The receiving half. Cloneable (MPMC).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.chan.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if self.chan.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.chan.not_empty.wait(q).unwrap();
            }
        }

        /// Takes a queued value without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.chan.queue.lock().unwrap();
            match q.pop_front() {
                Some(v) => {
                    self.chan.not_full.notify_one();
                    Ok(v)
                }
                None if self.chan.senders.load(Ordering::SeqCst) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.chan.queue.lock().unwrap().len()
        }

        /// True when nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Draining iterator that blocks like [`Receiver::recv`] and
        /// ends on disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.chan.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.chan.not_full.notify_all();
            }
        }
    }

    /// Blocking iterator over received values.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn bounded_backpressure_and_order() {
            let (tx, rx) = bounded::<u32>(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_is_observed() {
            let (tx, rx) = bounded::<u32>(4);
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx, rx) = bounded::<u32>(4);
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = bounded::<u32>(8);
            let h = thread::spawn(move || {
                (0..100).map(|i| tx.send(i).map(|_| 1).unwrap_or(0)).sum::<u32>()
            });
            let mut got = 0;
            while rx.recv().is_ok() {
                got += 1;
            }
            assert_eq!(h.join().unwrap(), 100);
            assert_eq!(got, 100);
        }
    }
}
