//! No-op `Serialize`/`Deserialize` derives for the in-tree serde
//! stand-in. Each derive emits an empty impl of the corresponding
//! marker trait. Written against `proc_macro` alone — no `syn`/`quote`
//! available offline — so parsing is a minimal scan for the type name.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the deriving type and rejects shapes the
/// stand-in cannot handle (generic types would need bound plumbing).
fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                for tt2 in iter.by_ref() {
                    match tt2 {
                        TokenTree::Ident(name) => {
                            let name = name.to_string();
                            if let Some(TokenTree::Punct(p)) = iter.peek() {
                                if p.as_char() == '<' {
                                    panic!(
                                        "serde_derive stand-in: generic type `{name}` is \
                                         not supported (add explicit marker impls instead)"
                                    );
                                }
                            }
                            return name;
                        }
                        _ => continue,
                    }
                }
            }
        }
    }
    panic!("serde_derive stand-in: could not find a struct/enum name in the input");
}

/// Derives the `Serialize` marker.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}").parse().unwrap()
}

/// Derives the `Deserialize` marker.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}").parse().unwrap()
}
