//! Offline stand-in for the `bytes` crate.
//!
//! Provides the slices of the `bytes` API this workspace uses, with the
//! one property the wire layer depends on: **clones of a [`Bytes`] share
//! the same backing allocation** (fan-out of a payload to N consumers
//! must not copy it N times — `garnet-wire` asserts pointer equality).
//! Backing storage is an `Arc<[u8]>` plus an offset/length view.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    len: usize,
}

impl Bytes {
    /// An empty `Bytes`.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]), start: 0, len: 0 }
    }

    /// Copies `data` into a new shared allocation.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        let len = data.len();
        Bytes { data: Arc::from(data), start: 0, len }
    }

    /// Wraps static data (copied once; clones still share).
    pub fn from_static(data: &'static [u8]) -> Self {
        Self::copy_from_slice(data)
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-view sharing the same allocation.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            len: range.end - range.start,
        }
    }

    /// Copies the view out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.start + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes { data: Arc::from(v.into_boxed_slice()), start: 0, len }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for Bytes {}

#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for Bytes {}

/// A growable byte buffer with an O(1) consuming front cursor.
#[derive(Default)]
pub struct BytesMut {
    buf: Vec<u8>,
    start: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new(), start: 0 }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(cap), start: 0 }
    }

    /// Readable length.
    pub fn len(&self) -> usize {
        self.buf.len() - self.start
    }

    /// True when nothing is readable.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reserves space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.compact();
        self.buf.reserve(additional);
    }

    /// Appends `src`.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Removes and returns the first `at` readable bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.buf[self.start..self.start + at].to_vec();
        self.start += at;
        BytesMut { buf: head, start: 0 }
    }

    /// Removes and returns all readable bytes, leaving `self` empty.
    pub fn split(&mut self) -> BytesMut {
        let all = self.buf[self.start..].to_vec();
        self.buf.clear();
        self.start = 0;
        BytesMut { buf: all, start: 0 }
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.start = 0;
    }

    /// Freezes the readable bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        if self.start == 0 {
            Bytes::from(self.buf)
        } else {
            Bytes::copy_from_slice(&self.buf[self.start..])
        }
    }

    fn compact(&mut self) {
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[self.start..]
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let start = self.start;
        &mut self.buf[start..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(self), f)
    }
}

/// Read-cursor operations (mirrors `bytes::Buf` where used).
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// The readable slice.
    fn chunk(&self) -> &[u8];
    /// Advances the read cursor by `cnt`.
    fn advance(&mut self, cnt: usize);

    /// Reads a big-endian u16 and advances.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian u32 and advances.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(b)
    }

    /// Reads one byte and advances.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

/// Write operations (mirrors `bytes::BufMut` where used).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_allocation() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(a, b);
    }

    #[test]
    fn split_advance_freeze_roundtrip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u32(0xDEAD_BEEF);
        m.extend_from_slice(b"xyz");
        assert_eq!(m.len(), 7);
        let head = m.split_to(4).freeze();
        assert_eq!(&head[..], &0xDEAD_BEEFu32.to_be_bytes());
        m.advance(1);
        assert_eq!(&m[..], b"yz");
        assert_eq!(&m.split().freeze()[..], b"yz");
        assert!(m.is_empty());
    }

    #[test]
    fn slice_shares_and_bounds() {
        let a = Bytes::copy_from_slice(b"hello world");
        let w = a.slice(6..11);
        assert_eq!(&w[..], b"world");
        assert_eq!(unsafe { a.as_ptr().add(6) }, w.as_ptr());
    }
}
