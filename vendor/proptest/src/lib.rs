//! Offline stand-in for `proptest`.
//!
//! Implements the strategy surface the workspace's property tests use —
//! `proptest!`, `prop_oneof!`, `any`, `Just`, `prop_map`, `boxed`,
//! `collection::vec`, `option::of`, `bool::ANY`, `sample::Index`, range
//! strategies — over a deterministic SplitMix64 generator seeded from
//! the test name. Differences from real proptest: no shrinking (a
//! failing case panics with its case number so it can be replayed by
//! rerunning the test) and a fixed case count per test.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// Cases run per `proptest!` test.
pub const CASES: u32 = 96;

/// The deterministic generator behind every strategy draw.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// The next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value below `bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// A uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a over a test name: the per-test base seed.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Runs `f` for [`CASES`] deterministic cases. Used by the `proptest!`
/// macro; the per-case seed mixes the test name and case index.
pub fn run_cases(name: &str, mut f: impl FnMut(&mut TestRng)) {
    let base = fnv1a(name);
    for case in 0..CASES {
        let mut rng = TestRng::new(base ^ (u64::from(case).wrapping_mul(0xA076_1D64_78BD_642F)));
        f(&mut rng);
    }
}

/// A source of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy behind a cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BoxedStrategy(..)")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = u128::from(rng.next_u64()) % span;
                (self.start as u128).wrapping_add(v) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                let v = u128::from(rng.next_u64()) % span;
                (start as u128).wrapping_add(v) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

/// A string pattern used as a strategy (`"\\PC{0,64}"` style). The
/// stand-in does not interpret the regex: it generates short strings of
/// printable characters, which satisfies the "arbitrary text input"
/// role these patterns play in the workspace's tests.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let len = rng.below(65) as usize;
        (0..len)
            .map(|_| {
                let roll = rng.below(96);
                if roll < 90 {
                    char::from(b' ' + rng.below(95) as u8)
                } else {
                    // Occasional non-ASCII printable.
                    ['é', 'λ', '→', '日', '√', 'ß'][rng.below(6) as usize]
                }
            })
            .collect()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (S0/0);
    (S0/0, S1/1);
    (S0/0, S1/1, S2/2);
    (S0/0, S1/1, S2/2, S3/3);
    (S0/0, S1/1, S2/2, S3/3, S4/4);
    (S0/0, S1/1, S2/2, S3/3, S4/4, S5/5);
    (S0/0, S1/1, S2/2, S3/3, S4/4, S5/5, S6/6);
    (S0/0, S1/1, S2/2, S3/3, S4/4, S5/5, S6/6, S7/7);
}

/// Types with a canonical "arbitrary" distribution, for [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn sample(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn sample(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn sample(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn sample(rng: &mut TestRng) -> f64 {
        rng.unit_f64() * 2e6 - 1e6
    }
}

impl Arbitrary for f32 {
    fn sample(rng: &mut TestRng) -> f32 {
        (rng.unit_f64() * 2e6 - 1e6) as f32
    }
}

impl Arbitrary for char {
    fn sample(rng: &mut TestRng) -> char {
        char::from(b' ' + rng.below(95) as u8)
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn sample(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::sample(rng))
    }
}

/// The [`any`] strategy for an [`Arbitrary`] type.
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T> fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "any::<{}>()", std::any::type_name::<T>())
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample(rng)
    }
}

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size range for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// A strategy for `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// A strategy for `Option<S::Value>` (3-in-4 `Some`).
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S>(S);

    /// Generates `Option`s of values from `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// The uniform boolean strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;

    /// Uniform `true`/`false`.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Sampling helpers.
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection whose length is not known at
    /// generation time; resolved with [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Resolves against a concrete length (`len > 0`).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn sample(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// Everything a property test module needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, Strategy,
    };

    /// The `prop::` path alias real proptest's prelude exposes.
    pub mod prop {
        pub use crate::{bool, collection, option, sample};
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running [`CASES`][crate::CASES] deterministic
/// cases.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                $body
            });
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Uniform choice between strategy arms producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Property-test assertion (panics like `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_small() -> BoxedStrategy<u32> {
        prop_oneof![Just(1u32), (10u32..20).prop_map(|v| v * 2), 100u32..110].boxed()
    }

    proptest! {
        #[test]
        fn ranges_and_tuples_in_bounds(
            a in 0u8..10,
            (x, y) in (0u32..5, 10i64..=20),
            v in prop::collection::vec(any::<u16>(), 0..8),
            idx in any::<prop::sample::Index>(),
            flag in prop::bool::ANY,
            opt in prop::option::of(any::<u8>()),
            small in arb_small(),
        ) {
            prop_assert!(a < 10);
            prop_assert!(x < 5 && (10..=20).contains(&y));
            prop_assert!(v.len() < 8);
            prop_assert!(idx.index(3) < 3);
            prop_assert!(usize::from(flag) <= 1);
            prop_assert!(opt.is_none() || opt.is_some());
            prop_assert!(small == 1 || (20..40).contains(&small) || (100..110).contains(&small));
        }

        #[test]
        fn fixed_size_vec_is_exact(v in prop::collection::vec(any::<u8>(), 16)) {
            prop_assert_eq!(v.len(), 16);
        }
    }

    #[test]
    fn determinism_same_name_same_draws() {
        let mut first = Vec::new();
        crate::run_cases("stable", |rng| first.push(rng.next_u64()));
        let mut second = Vec::new();
        crate::run_cases("stable", |rng| second.push(rng.next_u64()));
        assert_eq!(first, second);
    }
}
