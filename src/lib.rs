//! # Garnet
//!
//! A data-stream-centric middleware for distributing data originating in
//! wireless sensor networks — a from-scratch Rust reproduction of
//! *St Ville & Dickman, "Garnet: A Middleware Architecture for
//! Distributing Data Streams Originating in Wireless Sensor Networks"*,
//! ICDCS Workshops 2003.
//!
//! This crate is the facade: it re-exports the whole workspace under one
//! name. The layering (bottom-up):
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`simkit`] | `garnet-simkit` | deterministic discrete-event kernel |
//! | [`wire`] | `garnet-wire` | Fig. 2 message format, control messages, CRC, crypto |
//! | [`radio`] | `garnet-radio` | simulated wireless field: mobility, propagation, energy |
//! | [`net`] | `garnet-net` | fixed-network substrate: bus, registry, auth, pub/sub |
//! | [`store`] | `garnet-store` | durable frame archive: segmented CRC-checked log, crash recovery, fault injection |
//! | [`core`] | `garnet-core` | **the middleware**: filtering, dispatching, orphanage, location, resource manager, actuation, replication, coordination |
//! | [`baselines`] | `garnet-baselines` | §7 comparators: RETRI, Fjords, CORIE |
//! | [`workloads`] | `garnet-workloads` | habitat / water-course / recon scenarios |
//!
//! # Quickstart
//!
//! ```
//! use garnet::core::pipeline::SharedCountConsumer;
//! use garnet::net::TopicFilter;
//! use garnet::simkit::SimTime;
//! use garnet::workloads::HabitatScenario;
//! use std::sync::atomic::Ordering;
//!
//! // A 3×3 study plot reporting every 5 s.
//! let scenario = HabitatScenario {
//!     grid_side: 3,
//!     report_interval: garnet::simkit::SimDuration::from_secs(5),
//!     ..HabitatScenario::default()
//! };
//! let mut sim = scenario.build();
//!
//! // Register a consumer and subscribe to everything.
//! let token = sim.garnet_mut().issue_default_token("app");
//! let (consumer, count) = SharedCountConsumer::new("app");
//! let id = sim.garnet_mut().register_consumer(Box::new(consumer), &token, 0).unwrap();
//! sim.garnet_mut().subscribe(id, TopicFilter::All, &token).unwrap();
//!
//! sim.run_until(SimTime::from_secs(30));
//! assert!(count.load(Ordering::Relaxed) > 0);
//! ```
//!
//! See `examples/` for the runnable scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology.

pub use garnet_baselines as baselines;
pub use garnet_core as core;
pub use garnet_net as net;
pub use garnet_radio as radio;
pub use garnet_simkit as simkit;
pub use garnet_store as store;
pub use garnet_wire as wire;
pub use garnet_workloads as workloads;
